//! Lemma B.3, live: counting independent sets with a Shapley oracle.
//!
//! ```sh
//! cargo run --example counting_via_shapley
//! ```
//!
//! The hardness proof for `q_RS¬T` is constructive: from `N + 2` Shapley
//! values on carefully shaped databases, an exact linear system recovers
//! the number of independent sets of a bipartite graph. This example
//! runs the reduction end-to-end against the direct counter.

use cqshap::gadgets::reduction_rst::{
    brute_force_oracle, build_instance, qrsnt_query, recover_is_count,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("query: {}\n", qrsnt_query());
    println!(
        "{:<28} {:>10} {:>12} {:>8}",
        "graph", "|IS| true", "recovered", "match"
    );
    for (left, right, prob, seed) in [
        (2usize, 2usize, 0.5, 1u64),
        (3, 2, 0.4, 2),
        (2, 3, 0.6, 3),
        (3, 3, 0.5, 4),
    ] {
        let g = cqshap::workloads::graphs::random_bipartite(left, right, prob, seed);
        let truth = g.independent_set_count();
        let (recovered, s_counts) = recover_is_count(&g, &brute_force_oracle)?;
        println!(
            "{:<28} {:>10} {:>12} {:>8}",
            format!("{}x{} ({} edges)", left, right, g.edges().len()),
            truth.to_string(),
            recovered.to_string(),
            if truth == recovered { "✓" } else { "✗" }
        );
        assert_eq!(truth, recovered);
        // The per-size closed-subset counts are recovered too.
        assert_eq!(s_counts, g.closed_subset_counts());
    }

    // Peek inside: the Shapley values that drive the system.
    let g = cqshap::workloads::graphs::random_bipartite(2, 2, 0.5, 1);
    println!("\nShapley values feeding the linear system for the first graph:");
    for r in 0..=g.vertex_count() + 1 {
        let (db, f) = build_instance(&g, r);
        let v = brute_force_oracle(&db, f)?;
        println!("  D^{r}: Shapley(D, q, T(z)) = {v}");
        assert!(
            !v.is_positive(),
            "T(z) can only flip the answer true → false"
        );
    }
    println!("\nindependent-set counts recovered exactly from Shapley values ✓");
    Ok(())
}
