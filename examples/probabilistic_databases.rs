//! Probabilistic query evaluation (Section 4.3, Theorem 4.10).
//!
//! ```sh
//! cargo run --example probabilistic_databases
//! ```
//!
//! Tuple-independent probabilistic databases: lifted inference evaluates
//! hierarchical CQ¬s in polynomial time, and deterministic relations
//! extend the tractable class to every query without a
//! non-hierarchical path — by the very same `ExoShap` rewriting used
//! for Shapley values.

use cqshap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example with registration/TA facts made uncertain.
    let db = cqshap::workloads::figure_1_database();
    let mut pdb = ProbDatabase::new(db, 0.5);
    let reg = pdb
        .database()
        .find_fact("Reg", &["Caroline", "DB"])
        .expect("fact exists");
    pdb.set_prob(reg, 0.9)?;
    let ta = pdb
        .database()
        .find_fact("TA", &["Adam"])
        .expect("fact exists");
    pdb.set_prob(ta, 0.8)?;

    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)")?;
    let lifted = pdb.query_probability(&q1)?;
    let enumerated = pdb.query_probability_enumerated(&q1, 20)?;
    println!("== Hierarchical lifted inference ==");
    println!("  Pr[D ⊨ q1] = {lifted:.6} (lifted) vs {enumerated:.6} (2^|Dn| enumeration)");
    assert!((lifted - enumerated).abs() < 1e-9);

    // Example 4.1's non-hierarchical query with deterministic Pub and
    // Citations (Theorem 4.10).
    let adb = cqshap::workloads::academic::AcademicConfig {
        authors: 8,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let q = cqshap::workloads::academic::citations_query();
    let pdb2 = ProbDatabase::new(adb, 0.4);
    println!("\n== Theorem 4.10: deterministic relations ==");
    println!("  query: {q}");
    match pdb2.query_probability(&q) {
        Err(e) => println!("  plain lifted inference refuses: {e}"),
        Ok(_) => unreachable!("the query is not hierarchical"),
    }
    let rewritten = pdb2.query_probability_with_rewriting(&q, 1_000_000)?;
    let truth = pdb2.query_probability_enumerated(&q, 20)?;
    println!("  after ExoShap rewriting: Pr = {rewritten:.6}, enumeration: {truth:.6}");
    assert!((rewritten - truth).abs() < 1e-9);

    // Scaling: lifted inference stays fast as authors grow; enumeration
    // would need 2^|authors| worlds.
    println!("\n== Scaling (lifted inference, deterministic Pub/Citations) ==");
    for authors in [10usize, 100, 1000] {
        let big = cqshap::workloads::academic::AcademicConfig {
            authors,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let p = ProbDatabase::new(big, 0.4);
        let t0 = cqshap::prelude::Stopwatch::start();
        let pr = p.query_probability_with_rewriting(&q, 10_000_000)?;
        println!("  {authors:>5} authors: Pr = {pr:.6}  ({:?})", t0.elapsed());
    }
    println!("\nlifted inference matches world enumeration everywhere ✓");
    Ok(())
}
