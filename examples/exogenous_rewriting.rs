//! Exogenous relations make hard queries tractable (Section 4).
//!
//! ```sh
//! cargo run --example exogenous_rewriting
//! ```
//!
//! Example 4.1's citation query is FP#P-complete in general, but becomes
//! polynomial once `Pub` and `Citations` are declared exogenous: the
//! `ExoShap` rewriting (Algorithm 1) turns it into a hierarchical query.
//! The same applies to q2 of the running example. This example prints
//! the rewriting trace (mirroring Figure 3) and cross-checks the values
//! against brute force.

use cqshap::prelude::*;
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Example 4.1: researcher contribution to citations ----
    let db = cqshap::workloads::academic::AcademicConfig {
        authors: 6,
        pubs_per_author: 2,
        cited_fraction: 0.7,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let q = cqshap::workloads::academic::citations_query();

    let exo: HashSet<String> = db.exogenous_relation_names().into_iter().collect();
    println!("query: {q}");
    println!("  without exogenous knowledge: {}", classify(&q));
    println!("  with X = {exo:?}: {}", classify_with_exo(&q, &exo));

    let outcome = rewrite(&db, &q, 1_000_000)?;
    println!("\n== ExoShap rewriting trace (cf. Figure 3) ==");
    for stage in &outcome.stages {
        println!("  {stage}");
    }
    assert!(is_hierarchical(&outcome.query));

    let opts = ShapleyOptions::with_strategy(Strategy::ExoShap);
    let report = shapley_report(&db, &q, &opts)?;
    println!("\n== Shapley values via ExoShap ==");
    for entry in &report.entries {
        println!("  {:<28} {}", entry.rendered, entry.value);
    }
    assert!(report.efficiency_holds());

    // Cross-check against brute force (small |Dn| makes this feasible).
    let bf = ShapleyOptions::with_strategy(Strategy::BruteForceSubsets);
    for entry in &report.entries {
        let v = shapley_value(&db, &q, entry.fact, &bf)?;
        assert_eq!(v, entry.value, "{}", entry.rendered);
    }
    println!("\nall values match the brute-force oracle ✓");

    // ---- q2 of the running example, with Stud/Course exogenous ----
    let mut uni = cqshap::workloads::figure_1_database();
    for name in ["Stud", "Course", "Adv"] {
        let rel = uni.schema().id(name).expect("relation exists");
        uni.declare_exogenous_relation(rel)?;
    }
    let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')")?;
    let exo2: HashSet<String> = uni.exogenous_relation_names().into_iter().collect();
    println!("\nquery: {q2}");
    println!("  Thm 3.1 verdict: {}", classify(&q2));
    println!(
        "  Thm 4.3 verdict with X = {{Stud, Course, Adv}}: {}",
        classify_with_exo(&q2, &exo2)
    );
    let report2 = shapley_report(&uni, &q2, &opts)?;
    println!("\n== Shapley values for q2 (polynomial, via ExoShap) ==");
    for entry in &report2.entries {
        println!("  {:<24} {}", entry.rendered, entry.value);
    }
    assert!(report2.efficiency_holds());
    Ok(())
}
