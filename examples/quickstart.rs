//! Quickstart: exact Shapley values on the paper's running example.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds Figure 1's university database, classifies the queries of
//! Example 2.2 under the dichotomy of Theorem 3.1, and reproduces the
//! exact Shapley values of Example 2.3.

use cqshap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The database of Figure 1: Stud/Course/Adv are context (exogenous),
    // TA and Reg memberships are the facts whose contribution we probe.
    let db = cqshap::workloads::figure_1_database();
    println!(
        "Database ({} facts, |Dn| = {}):",
        db.fact_count(),
        db.endo_count()
    );
    print!("{db}");

    // Classify the four queries of Example 2.2.
    println!("\n== Dichotomy classification (Theorem 3.1) ==");
    for text in [
        "q1() :- Stud(x), !TA(x), Reg(x, y)",
        "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')",
        "q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, 'IC'), Reg(z, 'DB')",
        "q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)",
    ] {
        let q = parse_cq(text)?;
        println!("  {:<72} → {}", q.to_string(), classify(&q));
    }

    // q1 is hierarchical: exact values in polynomial time (Example 2.3).
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)")?;
    let report = shapley_report(&db, &q1, &ShapleyOptions::default())?;
    println!("\n== Exact Shapley values for {q1} ==");
    for entry in &report.entries {
        println!("  Shapley(D, q1, {:<20}) = {}", entry.rendered, entry.value);
    }
    println!(
        "  Σ = {} (efficiency: q(D) − q(Dx) = {})",
        report.total, report.expected_total
    );
    assert!(report.efficiency_holds());

    // TA facts can only hurt (negative values), Reg facts only help —
    // and Adam's TA-ship hurts more than Ben's, as the paper observes.
    let ta_adam = db.find_fact("TA", &["Adam"]).expect("fact exists");
    let ta_ben = db.find_fact("TA", &["Ben"]).expect("fact exists");
    let va = &report.entry(ta_adam).expect("endogenous").value;
    let vb = &report.entry(ta_ben).expect("endogenous").value;
    assert!(va.abs() > vb.abs());
    println!(
        "\n|Shapley(TA(Adam))| = {} > |Shapley(TA(Ben))| = {} ✓",
        va.abs(),
        vb.abs()
    );
    Ok(())
}
