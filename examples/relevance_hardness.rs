//! Relevance: the tractable and the NP-complete sides (Section 5.2).
//!
//! ```sh
//! cargo run --example relevance_hardness
//! ```
//!
//! For polarity-consistent queries, deciding whether a fact is relevant
//! (equivalently, whether its Shapley value is nonzero) is polynomial
//! (Proposition 5.7 / Algorithms 2–3). One mixed-polarity relation is
//! enough to make it NP-complete (Proposition 5.5), and so is a union of
//! individually-consistent CQ¬s (Proposition 5.8). This example runs all
//! three, including the executable SAT reductions.

use cqshap::gadgets::{prop55, prop58};
use cqshap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Tractable side: q1 on the running example ----
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)")?;
    println!("== Polynomial relevance for the polarity-consistent {q1} ==");
    for &f in db.endo_facts() {
        let pos = is_positively_relevant(&db, AnyQuery::Cq(&q1), f)?;
        let neg = is_negatively_relevant(&db, AnyQuery::Cq(&q1), f)?;
        let zero = shapley_is_zero(&db, AnyQuery::Cq(&q1), f)?;
        println!(
            "  {:<22} positively: {:<5} negatively: {:<5} Shapley = 0: {}",
            db.render_fact(f),
            pos,
            neg,
            zero
        );
    }

    // ---- Example 5.3: relevant yet zero Shapley (mixed polarity) ----
    let db2 = Database::parse("endo R(1, 2)\nendo R(2, 1)\n")?;
    let q53 = parse_cq("q() :- R(x, y), !R(y, x)")?;
    let f = db2.find_fact("R", &["1", "2"]).expect("fact exists");
    let (pos, neg) = brute_force_relevance(&db2, AnyQuery::Cq(&q53), f, 24)?;
    let v = shapley_by_permutations(&db2, AnyQuery::Cq(&q53), f, 9)?;
    println!("\n== Example 5.3: {q53} ==");
    println!("  R(1,2): positively relevant: {pos}, negatively relevant: {neg}, Shapley = {v}");
    assert!(pos && neg && v.is_zero());

    // ---- Proposition 5.5: SAT lives inside relevance for q_RST¬R ----
    println!("\n== Proposition 5.5: (2+,2−,4+−)-SAT ⟺ relevance to q_RST¬R ==");
    let q = prop55::qrst_nr_query();
    println!("  query: {q}");
    for seed in [1u64, 2, 3, 4] {
        let formula = cqshap::workloads::formulas::random_224(4, 6, seed);
        let (dbf, tf) = prop55::build_relevance_instance(&formula)?;
        let (rel_pos, _) = brute_force_relevance(&dbf, AnyQuery::Cq(&q), tf, 24)?;
        let sat = formula.is_satisfiable();
        println!("  {formula}");
        println!("    satisfiable: {sat:<5}  T(c) relevant: {rel_pos}");
        assert_eq!(sat, rel_pos);
    }

    // The Lemma D.1 chain: 3-colorability → SAT → relevance.
    println!("\n== Lemma D.1 chain: 3-colorability → (2+,2−,4+−)-SAT ==");
    use cqshap::gadgets::coloring::{coloring_to_3p2n, to_224, Graph};
    let triangle = Graph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
    let k4 = Graph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    for (name, g) in [("triangle", &triangle), ("K4", &k4)] {
        let f224 = to_224(&coloring_to_3p2n(g));
        println!(
            "  {name}: 3-colorable: {:<5} reduced formula satisfiable: {}",
            g.is_three_colorable(),
            f224.is_satisfiable()
        );
        assert_eq!(g.is_three_colorable(), f224.is_satisfiable());
    }

    // ---- Proposition 5.8: unions of consistent CQ¬s are hard too ----
    println!("\n== Proposition 5.8: 3SAT ⟺ relevance of R(0) to q_SAT ==");
    let u = prop58::qsat_query();
    for d in u.disjuncts() {
        println!(
            "  {d}   (polarity consistent: {})",
            is_polarity_consistent(d)
        );
    }
    println!(
        "  whole union polarity consistent: {}",
        cqshap::query::analysis::is_polarity_consistent_union(&u)
    );
    for seed in [10u64, 20] {
        let f3 = cqshap::workloads::formulas::random_3sat(3, 9, seed);
        let (dbf, r0) = prop58::build_relevance_instance(&f3)?;
        let (rel_pos, _) = brute_force_relevance(&dbf, AnyQuery::Union(&u), r0, 24)?;
        println!("  {f3}");
        println!(
            "    satisfiable: {:<5}  R(0) relevant: {rel_pos}",
            f3.is_satisfiable()
        );
        assert_eq!(f3.is_satisfiable(), rel_pos);
    }
    println!("\nall reductions agree with the DPLL ground truth ✓");
    Ok(())
}
