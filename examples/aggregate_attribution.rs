//! Aggregate attribution: the introduction's export scenario.
//!
//! ```sh
//! cargo run --example aggregate_attribution
//! ```
//!
//! The paper motivates Shapley values with
//! `Count{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}` — how much does
//! each fact contribute to the number of countries importing products
//! they do not grow? Aggregates decompose over answers by linearity
//! (the "Remarks" of Section 3).

use cqshap::core::aggregates::{aggregate_shapley, aggregate_value, AggregateFunction};
use cqshap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = cqshap::workloads::exports::ExportsConfig {
        farmers: 4,
        products: 3,
        countries: 3,
        exports: 7,
        grows_density: 0.35,
        seed: 11,
    }
    .generate();
    println!("Database:");
    print!("{db}");

    // The Boolean query of equation (1) is FP#P-complete...
    let q_bool = cqshap::workloads::exports::exports_query();
    println!("\nBoolean query {q_bool}: {}", classify(&q_bool));

    // ...but |Dn| is small here, so the brute-force oracle applies; the
    // aggregate decomposes over candidate country answers.
    let q_count = cqshap::workloads::exports::exports_count_query();
    let agg = AggregateFunction::Count;
    let opts = ShapleyOptions::default();

    let full = aggregate_value(&db, &World::full(&db), &q_count, &agg)?;
    let empty = aggregate_value(&db, &World::empty(&db), &q_count, &agg)?;
    println!("\ncount over D = {full}, count over Dx = {empty}");

    println!("\n== Aggregate Shapley attribution ==");
    let mut total = BigRational::zero();
    for &f in db.endo_facts() {
        let v = aggregate_shapley(&db, &q_count, &agg, f, &opts)?;
        total += &v;
        println!("  {:<24} {}", db.render_fact(f), v);
    }
    println!("  {:<24} {}", "Σ", total);

    // Efficiency by linearity: the attributions sum to the change the
    // endogenous facts make to the aggregate.
    assert_eq!(total, &full - &empty);
    println!("\nefficiency Σ = count(D) − count(Dx) ✓");

    // Farmer facts only help (≥ 0); Grows facts only hurt (≤ 0).
    for &f in db.endo_facts() {
        let v = aggregate_shapley(&db, &q_count, &agg, f, &opts)?;
        match db.schema().name(db.fact(f).rel) {
            "Farmer" => assert!(!v.is_negative()),
            "Grows" => assert!(!v.is_positive()),
            other => panic!("unexpected endogenous relation {other}"),
        }
    }
    println!("sign pattern (Farmer ≥ 0, Grows ≤ 0) ✓");
    Ok(())
}
