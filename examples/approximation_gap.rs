//! The gap property and its violation (Section 5).
//!
//! ```sh
//! cargo run --example approximation_gap
//! ```
//!
//! For positive CQs, nonzero Shapley values are polynomially large, so
//! the additive Monte-Carlo FPRAS doubles as a multiplicative one. With
//! negation, Theorem 5.1 builds databases where the value is
//! `n!·n!/(2n+1)! ≤ 2^-n`: the additive sampler stays additively
//! accurate but its *relative* error explodes — the estimate is
//! typically exactly 0 for a provably nonzero value.

use cqshap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Theorem 5.1's family for q() :- R(x), S(x,y), ¬R(y).
    println!("== Exponentially small Shapley values (Theorem 5.1) ==");
    println!(
        "{:>3}  {:<28} {:<12}",
        "n", "Shapley(D_n, q, f0) exactly", "≈ float"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let (_q, inst) = section_5_1_example(n);
        let v = inst.expected_abs.clone();
        println!("{n:>3}  {:<28} {:.3e}", v.to_string(), v.to_f64());
    }

    // Verify the closed form against the real computation for small n.
    let (q, inst) = section_5_1_example(2);
    let exact = shapley_by_permutations(&inst.db, AnyQuery::Cq(&q), inst.f0, 9)?;
    assert_eq!(exact.abs(), inst.expected_abs);
    println!(
        "\nexact value for n = 2 matches the closed form {} ✓",
        inst.expected_abs
    );

    // The additive FPRAS with the Hoeffding budget: fine additively,
    // useless multiplicatively on the gap family.
    let eps = 0.05;
    let delta = 0.01;
    let samples = required_samples(eps, delta)?;
    println!("\n== Additive sampler: ε = {eps}, δ = {delta} → {samples} samples ==");
    let (q8, inst8) = section_5_1_example(8);
    let est = shapley_sampled(&inst8.db, AnyQuery::Cq(&q8), inst8.f0, samples, 7, 0)?;
    let truth = inst8.expected_abs.to_f64();
    println!("n = 8: true value {truth:.3e}, estimate {}", est.estimate);
    println!(
        "additive error {:.3e} (within ε) ",
        (est.estimate - truth).abs()
    );
    assert!((est.estimate - truth).abs() <= eps);
    println!(
        "flips observed: {} positive, {} negative out of {} samples",
        est.positive_flips, est.negative_flips, est.samples
    );
    println!("→ a multiplicative guarantee would require ≥ 2^n samples\n");

    // Contrast: on the running example the same sampler nails the values.
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)")?;
    println!("== Same sampler on the running example (values are large) ==");
    for (rel, args, expect) in [
        ("TA", vec!["Adam"], -3.0 / 28.0),
        ("Reg", vec!["Caroline", "DB"], 13.0 / 42.0),
    ] {
        let refs: Vec<&str> = args.to_vec();
        let f = db.find_fact(rel, &refs).expect("fact exists");
        let est = shapley_sampled(&db, AnyQuery::Cq(&q1), f, samples, 99, 0)?;
        println!(
            "  {:<20} exact {:+.4}  estimate {:+.4}",
            db.render_fact(f),
            expect,
            est.estimate
        );
        assert!((est.estimate - expect).abs() <= eps);
    }
    println!("\nadditive guarantees hold everywhere; only the *relative* story breaks ✓");

    // The generic construction also works for other queries.
    let other = parse_cq("q() :- A(x), S(x, y), !B(y)")?;
    let inst = build_gap_family(&other, 2)?;
    let v = shapley_by_permutations(&inst.db, AnyQuery::Cq(&other), inst.f0, 9)?;
    assert_eq!(v.abs(), inst.expected_abs);
    println!("generic Theorem 5.1 construction validated for {other} ✓");
    Ok(())
}
