//! Offline stand-in for the subset of the `criterion` API used by the
//! benches in `crates/bench/benches/`.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! `cargo bench` working end to end: every bench target compiles with
//! `harness = false`, and running one executes each benchmark with a
//! warm-up pass followed by `sample_size` timed samples, printing the
//! per-iteration minimum / mean / maximum. No statistical analysis, HTML
//! reports, or baseline comparisons — swap in real criterion for those.

// Vendored third-party stand-in: a benchmarking library is timing by
// definition, so the workspace wall-clock discipline does not apply.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; also the per-run configuration builder.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), &self.clone(), f);
        self
    }
}

/// A named set of related benchmarks sharing one configuration.
pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), &self.config, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), &self.config, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, e.g. `threads4/1000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units of work per iteration; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: &Criterion, mut f: F) {
    // Warm-up doubles the iteration count until `warm_up_time` is spent,
    // which also calibrates how many iterations fit into one sample.
    let mut iterations = 1u64;
    let warm_up_start = Instant::now();
    let per_iter = loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / iterations.max(1) as u32;
        if warm_up_start.elapsed() >= config.warm_up_time || iterations >= 1 << 30 {
            break per_iter;
        }
        iterations = iterations.saturating_mul(2);
    };

    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        iterations
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64
    };

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<56} [{} {} {}]  ({} samples × {} iters)",
        format_time(samples[0]),
        format_time(mean),
        format_time(*samples.last().unwrap()),
        config.sample_size,
        iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_chains() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.benchmark_group("test")
            .sample_size(2)
            .throughput(Throughput::Elements(1))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("test2");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(format!("{}", BenchmarkId::new("f", 10)), "f/10");
        assert_eq!(format!("{}", BenchmarkId::from_parameter(7)), "7");
    }
}
