//! The deterministic case runner behind the `proptest!` macro.

use crate::Strategy;

/// Runner configuration; the only knob the workspace uses is `cases`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Abort after this many rejected candidates (filter misses plus
    /// `prop_assume!` failures), mirroring proptest's global reject cap.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The input did not meet a `prop_assume!` precondition; the runner
    /// retries with a fresh input.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64 — deterministic by construction; every test run sees the
/// same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5DEECE66D_u64,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Drives `config.cases` passing cases of `test` over values drawn from
/// `strategy`, panicking on the first failure.
pub fn run_cases<S, F>(config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    fn reject(config: &ProptestConfig, rejected: &mut u32, passed: u32, why: &str) {
        *rejected += 1;
        if *rejected > config.max_global_rejects {
            panic!(
                "proptest stub: too many rejected inputs ({rejected} rejects, {passed} passes); last: {why}"
            );
        }
    }

    let mut rng = TestRng::deterministic();
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let Some(value) = strategy.generate(&mut rng) else {
            reject(config, &mut rejected, passed, "strategy filter");
            continue;
        };
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => reject(config, &mut rejected, passed, &why),
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (after {passed} passing cases): {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn runner_counts_passes() {
        let mut n = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_cases(&ProptestConfig::with_cases(10), 0u64..100, |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        n += counter.get();
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(10), 0u64..100, |v| {
            if v < 1000 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
    }
}
