//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the pieces the test suites rely on: the [`Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_filter_map`, strategies
//! for integer ranges, tuples, `any::<T>()`, and `prop::collection::vec`,
//! plus the `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, and `prop_assume!` macros backed by a deterministic
//! runner.
//!
//! Differences from real proptest, by design: no shrinking (a failing
//! case reports the assertion message only, so tests should format the
//! offending input into it — ours do), and generation is seeded with a
//! fixed constant, making every run reproducible.

pub mod test_runner;

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use test_runner::TestRng;

/// A generator of values of type `Value`.
///
/// `generate` returns `None` when the underlying filter rejected the
/// candidate; the runner then retries with fresh randomness.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F, R>(self, _whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn prop_filter_map<O, F, R>(self, _whence: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                Some((start as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias 1-in-8 draws toward boundary values: the algebraic
                // laws under test are most fragile at 0 / ±1 / MIN / MAX
                // (empty limbs, sign flips, overflow into a new limb).
                if rng.next_u64() % 8 == 0 {
                    const SPECIAL: [$t; 5] =
                        [0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN, <$t>::MAX ^ 1];
                    SPECIAL[(rng.next_u64() % 5) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
pub struct Any<A> {
    _marker: PhantomData<A>,
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prelude::prop` module alias.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&$cfg, ($($strat,)+), |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
