//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `SliceRandom::shuffle`.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! the workspace self-contained. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic per seed, which is all the seeded workload
//! generators and the Monte-Carlo sampler tests rely on.

/// A source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled to produce a single value.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        // 53 random bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 (the standard seeding
    /// procedure recommended by the xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Fisher–Yates shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
