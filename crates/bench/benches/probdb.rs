//! E12 timing: lifted probabilistic inference (Section 4.3 /
//! Theorem 4.10).

use std::time::Duration;

use cqshap_probdb::ProbDatabase;
use cqshap_workloads::academic::{citations_query, AcademicConfig};
use cqshap_workloads::queries;
use cqshap_workloads::university::UniversityConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lifted_hierarchical(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("probdb/lifted_hierarchical");
    for students in [16usize, 64, 256] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let pdb = ProbDatabase::new(db, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(students), &pdb, |b, pdb| {
            b.iter(|| pdb.query_probability(&q1).unwrap())
        });
    }
    group.finish();
}

fn bench_theorem_4_10(c: &mut Criterion) {
    let q = citations_query();
    let mut group = c.benchmark_group("probdb/rewrite_then_lift");
    for authors in [8usize, 32, 64] {
        let db = AcademicConfig {
            authors,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let pdb = ProbDatabase::new(db, 0.35);
        group.bench_with_input(BenchmarkId::from_parameter(authors), &pdb, |b, pdb| {
            b.iter(|| {
                pdb.query_probability_with_rewriting(&q, 10_000_000)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lifted_hierarchical, bench_theorem_4_10
}
criterion_main!(benches);
