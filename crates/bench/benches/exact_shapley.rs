//! E3 timing: exact Shapley values for the hierarchical q1 (Theorem 3.1
//! positive side) vs the brute-force oracle (the only exact option on
//! the hardness side).

use std::time::Duration;

use cqshap_core::{
    shapley_report, shapley_report_per_fact, shapley_via_counts, AnyQuery, BruteForceCounter,
    ShapleyOptions,
};
use cqshap_workloads::queries;
use cqshap_workloads::university::UniversityConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hierarchical_scaling(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("exact/hierarchical_report");
    for students in [8usize, 32, 128] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 42,
            ..Default::default()
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(students), &db, |b, db| {
            b.iter(|| {
                let report = shapley_report(db, &q1, &ShapleyOptions::default()).unwrap();
                assert!(report.efficiency_holds());
            })
        });
    }
    group.finish();
}

fn bench_brute_force_wall(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("exact/brute_force_single_fact");
    for students in [4usize, 6, 8] {
        let db = UniversityConfig {
            students,
            courses: 3,
            regs_per_student: 1,
            declare_exogenous: false,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let f = db.endo_facts()[0];
        group.bench_with_input(BenchmarkId::new("endo", db.endo_count()), &db, |b, db| {
            b.iter(|| {
                shapley_via_counts(db, AnyQuery::Cq(&q1), f, &BruteForceCounter::new()).unwrap()
            })
        });
    }
    group.finish();
}

/// Batched compile-once engine vs the seed per-fact path on the
/// deterministic report workload — the `bench-report` harness emits the
/// same comparison as JSON for CI.
fn bench_batched_vs_per_fact(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("exact/report_engine");
    for m in [64usize, 256] {
        let db = cqshap_workloads::report_benchmark_db(m);
        group.bench_with_input(BenchmarkId::new("batched", m), &db, |b, db| {
            b.iter(|| shapley_report(db, &q1, &ShapleyOptions::default()).unwrap())
        });
        if m <= 64 {
            group.bench_with_input(BenchmarkId::new("per_fact", m), &db, |b, db| {
                b.iter(|| shapley_report_per_fact(db, &q1, &ShapleyOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hierarchical_scaling, bench_brute_force_wall, bench_batched_vs_per_fact
}
criterion_main!(benches);
