//! Substrate timing: the exact arithmetic under every Shapley value.

use std::time::Duration;

use cqshap_numeric::{factorial, BigRational, BigUint, FactorialTable, RationalMatrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_factorials(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric/factorial_table");
    for n in [100usize, 400, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| FactorialTable::new(n))
        });
    }
    group.finish();
}

fn bench_bigint_ops(c: &mut Criterion) {
    let a = factorial(300); // ≈ 2500 bits
    let b_ = factorial(200);
    let mut group = c.benchmark_group("numeric/bigint");
    group.bench_function("mul_300!_200!", |b| b.iter(|| &a * &b_));
    group.bench_function("div_rem_300!_200!", |b| b.iter(|| a.div_rem(&b_)));
    group.bench_function("gcd_300!_200!", |b| b.iter(|| a.gcd(&b_)));
    group.bench_function("to_string_300!", |b| b.iter(|| a.to_string()));
    group.finish();
}

fn bench_rational_sum(c: &mut Criterion) {
    // The Shapley reduction sums m weighted terms; model that shape.
    let table = FactorialTable::new(120);
    c.benchmark_group("numeric/rational")
        .bench_function("shapley_weight_sum_m120", |b| {
            b.iter(|| {
                let mut acc = BigRational::zero();
                for k in 0..120 {
                    acc += &table.shapley_weight(120, k);
                }
                acc
            })
        });
}

fn bench_linear_solve(c: &mut Criterion) {
    // A Lemma B.3-shaped system (factorial coefficients), N = 8.
    let n = 8usize;
    let a = RationalMatrix::from_fn(n + 1, n + 1, |r, k| {
        BigRational::from(factorial(k) * factorial(n - k + r + 1))
    });
    let rhs: Vec<BigRational> = (0..=n)
        .map(|i| BigRational::from(BigUint::from_u64(i as u64 + 1)))
        .collect();
    c.benchmark_group("numeric/linalg")
        .bench_function("solve_9x9_factorial", |b| b.iter(|| a.solve(&rhs).unwrap()));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_factorials, bench_bigint_ops, bench_rational_sum, bench_linear_solve
}
criterion_main!(benches);
