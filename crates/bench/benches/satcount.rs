//! Lemma 3.2 timing: the `CntSat` counting algorithm itself.

use std::time::Duration;

use cqshap_core::count_sat_hierarchical;
use cqshap_query::parse_cq;
use cqshap_workloads::university::UniversityConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cntsat(c: &mut Criterion) {
    let queries = [
        ("q1", "q1() :- Stud(x), !TA(x), Reg(x, y)"),
        ("pos", "q() :- Stud(x), TA(x), Reg(x, y)"),
        ("adv", "q() :- Adv(z, x), !TA(x), Reg(x, y)"),
    ];
    let mut group = c.benchmark_group("satcount/cntsat");
    for students in [16usize, 64, 256] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 7,
            ..Default::default()
        }
        .generate();
        for (name, text) in queries {
            let q = parse_cq(text).unwrap();
            group.bench_with_input(BenchmarkId::new(name, students), &db, |b, db| {
                b.iter(|| count_sat_hierarchical(db, &q).unwrap())
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cntsat
}
criterion_main!(benches);
