//! E5 timing: the Theorem 5.1 construction and its closed-form value.

use std::time::Duration;

use cqshap_core::gap::{build_gap_family, expected_gap_value, section_5_1_example};
use cqshap_query::parse_cq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_expected_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap/expected_value");
    for n in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| expected_gap_value(n))
        });
    }
    group.finish();
}

fn bench_section_5_1_database(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap/section_5_1_database");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| section_5_1_example(n))
        });
    }
    group.finish();
}

fn bench_generic_construction(c: &mut Criterion) {
    let q = parse_cq("q() :- R(x), S(x, y), !R(y)").unwrap();
    let mut group = c.benchmark_group("gap/generic_family");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| build_gap_family(&q, n).unwrap())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_expected_value, bench_section_5_1_database, bench_generic_construction
}
criterion_main!(benches);
