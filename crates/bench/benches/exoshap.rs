//! E4 timing: the `ExoShap` rewriting (Algorithm 1) and the full
//! Theorem 4.3 pipeline on the Example 4.1 scenario.

use std::time::Duration;

use cqshap_core::{rewrite, shapley_report, ShapleyOptions, Strategy};
use cqshap_workloads::academic::{citations_query, AcademicConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_rewrite(c: &mut Criterion) {
    let q = citations_query();
    let mut group = c.benchmark_group("exoshap/rewrite");
    for authors in [8usize, 32, 128] {
        let db = AcademicConfig {
            authors,
            seed: 9,
            ..Default::default()
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(authors), &db, |b, db| {
            b.iter(|| rewrite(db, &q, 10_000_000).unwrap())
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let q = citations_query();
    let opts = ShapleyOptions::with_strategy(Strategy::ExoShap);
    let mut group = c.benchmark_group("exoshap/report");
    for authors in [8usize, 16, 32] {
        let db = AcademicConfig {
            authors,
            seed: 9,
            ..Default::default()
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(authors), &db, |b, db| {
            b.iter(|| {
                let report = shapley_report(db, &q, &opts).unwrap();
                assert!(report.efficiency_holds());
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rewrite, bench_full_pipeline
}
criterion_main!(benches);
