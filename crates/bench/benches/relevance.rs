//! E8 timing: the polynomial relevance algorithms (Proposition 5.7).

use std::time::Duration;

use cqshap_core::relevance::{is_negatively_relevant, is_positively_relevant};
use cqshap_core::AnyQuery;
use cqshap_workloads::queries;
use cqshap_workloads::university::UniversityConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_relevance(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("relevance/is_relevant_all_facts");
    for students in [8usize, 32, 128] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 13,
            ..Default::default()
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(students), &db, |b, db| {
            b.iter(|| {
                let mut relevant = 0usize;
                for &f in db.endo_facts() {
                    if is_positively_relevant(db, AnyQuery::Cq(&q1), f).unwrap()
                        || is_negatively_relevant(db, AnyQuery::Cq(&q1), f).unwrap()
                    {
                        relevant += 1;
                    }
                }
                relevant
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_relevance
}
criterion_main!(benches);
