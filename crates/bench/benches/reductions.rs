//! E7/E9/E10 timing: the executable hardness reductions.

use std::time::Duration;

use cqshap_gadgets::reduction_rst::{brute_force_oracle, recover_is_count};
use cqshap_gadgets::{prop55, prop58};
use cqshap_workloads::{formulas, graphs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lemma_b3(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/lemma_b3_recover_is");
    group.sample_size(10);
    for (l, r) in [(2usize, 2usize), (3, 2), (3, 3)] {
        let g = graphs::random_bipartite(l, r, 0.5, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{l}x{r}")),
            &g,
            |b, g| b.iter(|| recover_is_count(g, &brute_force_oracle).unwrap()),
        );
    }
    group.finish();
}

fn bench_instance_construction(c: &mut Criterion) {
    let f224 = formulas::random_224(8, 16, 3);
    let f3 = formulas::random_3sat(8, 24, 3);
    let mut group = c.benchmark_group("reductions/instance_build");
    group.bench_function("prop55", |b| {
        b.iter(|| prop55::build_relevance_instance(&f224).unwrap())
    });
    group.bench_function("prop58", |b| {
        b.iter(|| prop58::build_relevance_instance(&f3).unwrap())
    });
    group.finish();
}

fn bench_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/dpll");
    for vars in [8usize, 12, 16] {
        let f = formulas::random_3sat(vars, vars * 4, 5);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &f, |b, f| {
            b.iter(|| f.is_satisfiable())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lemma_b3, bench_instance_construction, bench_dpll
}
criterion_main!(benches);
