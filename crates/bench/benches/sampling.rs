//! E6 timing: the additive Monte-Carlo sampler (Section 5.1).

use std::time::Duration;

use cqshap_core::approx::shapley_sampled;
use cqshap_core::AnyQuery;
use cqshap_workloads::{figure_1_database, queries};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sampler(c: &mut Criterion) {
    let db = figure_1_database();
    let q1 = queries::q1();
    let f = db.find_fact("TA", &["Adam"]).unwrap();
    let mut group = c.benchmark_group("sampling/permutations");
    group.throughput(criterion::Throughput::Elements(1));
    for samples in [1_000u64, 10_000] {
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), samples),
                &samples,
                |b, &samples| {
                    b.iter(|| {
                        shapley_sampled(&db, AnyQuery::Cq(&q1), f, samples, 99, threads).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sampler_large_db(c: &mut Criterion) {
    let db = cqshap_workloads::university::UniversityConfig {
        students: 100,
        courses: 40,
        declare_exogenous: false,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let q1 = queries::q1();
    let f = db.endo_facts()[0];
    c.benchmark_group("sampling/large_db")
        .sample_size(10)
        .bench_function("1000_samples_300_facts", |b| {
            b.iter(|| shapley_sampled(&db, AnyQuery::Cq(&q1), f, 1_000, 7, 0).unwrap())
        });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sampler, bench_sampler_large_db
}
criterion_main!(benches);
