//! Substrate timing: CQ¬ satisfaction over worlds (the inner loop of
//! brute force and sampling).

use std::time::Duration;

use cqshap_db::World;
use cqshap_engine::{satisfies_compiled, CompiledQuery};
use cqshap_workloads::queries;
use cqshap_workloads::university::UniversityConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_satisfaction(c: &mut Criterion) {
    let q1 = queries::q1();
    let mut group = c.benchmark_group("engine/satisfies");
    for students in [16usize, 64, 256] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 21,
            ..Default::default()
        }
        .generate();
        let compiled = CompiledQuery::compile(&db, &q1);
        let full = World::full(&db);
        let empty = World::empty(&db);
        group.bench_with_input(BenchmarkId::new("full_world", students), &db, |b, db| {
            b.iter(|| satisfies_compiled(db, &full, &compiled))
        });
        group.bench_with_input(BenchmarkId::new("empty_world", students), &db, |b, db| {
            b.iter(|| satisfies_compiled(db, &empty, &compiled))
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let db = UniversityConfig {
        students: 64,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let q2 = queries::q2();
    c.benchmark_group("engine/compile")
        .bench_function("q2", |b| b.iter(|| CompiledQuery::compile(&db, &q2)));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_satisfaction, bench_compile
}
criterion_main!(benches);
