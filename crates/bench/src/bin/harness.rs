//! The experiment harness: regenerates every experiment table of
//! `DESIGN.md` (E1–E14), printing Markdown to stdout.
//!
//! ```sh
//! cargo run -p cqshap-bench --release --bin harness            # all
//! cargo run -p cqshap-bench --release --bin harness -- e5 e6   # subset
//! ```
//!
//! The `bench-report` subcommand instead times the batched all-facts
//! Shapley report against the seed per-fact path on generated
//! hierarchical workloads (`m ∈ {64, 256, 1024}` endogenous facts) and
//! writes criterion-style medians to `BENCH_report.json`, so CI tracks
//! the perf trajectory of the hot path:
//!
//! ```sh
//! cargo run -p cqshap-bench --release --bin harness -- bench-report [--quick] [--out FILE]
//! ```
//!
//! `bench-report --session` measures the `ShapleySession` incremental
//! maintenance path (in-place update + re-report) against the full
//! recompile path (fresh prepare + report after the same update) and
//! writes `BENCH_session.json`.
//!
//! `bench-report --poly` measures the `cqshap-numeric::poly` subsystem
//! directly: the compile-stage leave-one-out product tree over
//! root-group-shaped polynomials at `m ∈ {256, 1024, 4096}`, schoolbook
//! vs Karatsuba vs NTT sequentially plus thread-scaling rows for the
//! parallel tree, written to `BENCH_poly.json`.
//!
//! `bench-report --probdb` measures the unified probability path — the
//! compiled engine instantiated at the tuple-independent probability
//! domain, maintained incrementally across updates — against the seed
//! lifted-inference traversal re-run from scratch per answer, and
//! writes `BENCH_probdb.json`.
//!
//! `bench-report --anytime` measures the anytime tier and the
//! degradation ladder: time-to-±ε of the stratified sampler at
//! `m ∈ {256, 1024}`, the deadline-hit rate of the exact report under
//! tight wall-clock budgets, and the tier `report_tiered` settles on
//! per query class, written to `BENCH_anytime.json`.
//!
//! `bench-report --trace` installs the `cqshap-obs` trace recorder and
//! runs an instrumented pass per `m ∈ {64, 256, 1024}` — the batched
//! report, one incremental update + re-report, and the degradation
//! ladder on a non-hierarchical instance — writing one
//! `cqshap-trace/v1` window per size into `TRACE_report.json`.
//!
//! Every emitted JSON header carries `host_cores` (the parallelism the
//! host exposes) and `thread_cap` (the effective cap this run used), so
//! perf artifacts from different machines stay comparable.

// Experiment harness binary: its whole job is timing, so the
// `no-wall-clock` discipline does not apply (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::collections::HashSet;
use std::time::Instant;

use cqshap_bench::Table;
use cqshap_core::aggregates::{
    aggregate_report, aggregate_shapley, aggregate_value, AggregateFunction,
};
use cqshap_core::approx::{required_samples, shapley_sampled, AnytimeParams};
use cqshap_core::budget::Budget;
use cqshap_core::gap::section_5_1_example;
use cqshap_core::relevance::{
    brute_force_relevance, is_negatively_relevant, is_positively_relevant,
};
use cqshap_core::{
    rewrite, shapley_by_permutations, shapley_report, shapley_report_per_fact,
    shapley_report_union, shapley_report_union_per_fact, shapley_value, shapley_via_counts,
    AnyQuery, BruteForceCounter, CoreError, ShapleyOptions, ShapleySession, Strategy, TierPolicy,
    TieredAnswer,
};
use cqshap_db::{Database, World};
use cqshap_gadgets::coloring::{coloring_to_3p2n, to_224};
use cqshap_gadgets::{embed, prop55, prop58, reduction_rst};
use cqshap_numeric::BigRational;
use cqshap_probdb::ProbDatabase;
use cqshap_query::{classify_with_exo, parse_cq};
use cqshap_workloads::academic::AcademicConfig;
use cqshap_workloads::exports::ExportsConfig;
use cqshap_workloads::university::UniversityConfig;
use cqshap_workloads::{figure_1_database, formulas, graphs, queries};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-report") {
        bench_report(&args[1..]);
        return;
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let experiments: &[(&str, &str, fn())] = &[
        (
            "e1",
            "Example 2.3: exact Shapley values on the running example",
            e1,
        ),
        (
            "e2",
            "Theorems 3.1/4.3: dichotomy classification catalog",
            e2,
        ),
        (
            "e3",
            "Theorem 3.1 (positive side): polynomial vs exponential scaling",
            e3,
        ),
        (
            "e4",
            "Theorem 4.3 / Algorithm 1: ExoShap correctness and scaling",
            e4,
        ),
        (
            "e5",
            "Theorem 5.1: the gap property fails under negation",
            e5,
        ),
        (
            "e6",
            "Section 5.1: additive FPRAS vs multiplicative failure",
            e6,
        ),
        (
            "e7",
            "Proposition 5.5 + Lemma D.1: SAT ⟺ relevance for q_RST¬R",
            e7,
        ),
        ("e8", "Proposition 5.7: polynomial relevance scaling", e8),
        (
            "e9",
            "Proposition 5.8: SAT ⟺ relevance for the union q_SAT",
            e9,
        ),
        (
            "e10",
            "Lemma B.3: counting independent sets via a Shapley oracle",
            e10,
        ),
        (
            "e11",
            "Lemma B.4 / Appendix C: Shapley-preserving embeddings",
            e11,
        ),
        (
            "e12",
            "Theorem 4.10: probabilistic evaluation with deterministic relations",
            e12,
        ),
        ("e13", "Section 3 remarks: aggregate attribution", e13),
        (
            "e14",
            "Example 5.3: relevant facts with zero Shapley value",
            e14,
        ),
    ];
    for (name, title, run) in experiments {
        if want(name) {
            println!("\n## {} — {}\n", name.to_uppercase(), title);
            let t0 = Instant::now();
            run();
            println!("\n[{} completed in {:?}]", name, t0.elapsed());
        }
    }
}

fn opts() -> ShapleyOptions {
    ShapleyOptions::default()
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------
// bench-report: the all-facts report perf tracker
// ---------------------------------------------------------------------

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn time_ms(mut run: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    run();
    t0.elapsed().as_secs_f64() * 1e3
}

/// The hardware-context fragment every `BENCH_*.json` header carries:
/// `host_cores` is the parallelism the host exposes, `thread_cap` the
/// effective cap this run used (the harness always runs with the
/// automatic cap — benches take no `--threads` flag).
fn host_meta_json() -> String {
    let host_cores = cqshap_numeric::poly::resolve_threads(0);
    format!("\"host_cores\": {host_cores},\n  \"thread_cap\": {host_cores}")
}

/// Times the batched [`shapley_report`] against the seed per-fact path
/// ([`shapley_report_per_fact`]) on the deterministic university
/// workload at `m ∈ {64, 256, 1024, 4096}` endogenous facts, and
/// writes the medians as JSON. `--quick` lowers the sample count and
/// skips the (slow) per-fact baseline at `m = 1024`; the baseline at
/// `m = 4096` is always skipped (it would run for the better part of a
/// day). `--out FILE` overrides the default `BENCH_report.json`.
fn bench_report(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let ucq = args.iter().any(|a| a == "--ucq");
    let aggregate = args.iter().any(|a| a == "--aggregate");
    let poly = args.iter().any(|a| a == "--poly");
    let probdb = args.iter().any(|a| a == "--probdb");
    let anytime = args.iter().any(|a| a == "--anytime");
    let traced = args.iter().any(|a| a == "--trace");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if args.iter().any(|a| a == "--session") {
                "BENCH_session.json".to_string()
            } else if poly {
                "BENCH_poly.json".to_string()
            } else if probdb {
                "BENCH_probdb.json".to_string()
            } else if anytime {
                "BENCH_anytime.json".to_string()
            } else if traced {
                "TRACE_report.json".to_string()
            } else if ucq || aggregate {
                "BENCH_ucq.json".to_string()
            } else {
                "BENCH_report.json".to_string()
            }
        });
    let session = args.iter().any(|a| a == "--session");
    let samples = if quick { 3 } else { 5 };
    if traced {
        bench_trace(&out_path);
        return;
    }
    if poly {
        bench_poly(quick, &out_path);
        return;
    }
    if probdb {
        bench_probdb(quick, &out_path);
        return;
    }
    if anytime {
        bench_anytime(quick, &out_path);
        return;
    }
    if session {
        bench_session(quick, &out_path);
        return;
    }
    if ucq || aggregate {
        bench_union_aggregate(ucq, aggregate, quick, samples, &out_path);
        return;
    }
    let q1 = queries::q1();
    let options = opts();

    // Correctness guard before timing anything: the batched engine must
    // be bit-identical to the seed path.
    {
        let db = cqshap_workloads::report_benchmark_db(64);
        let batched = shapley_report(&db, &q1, &options).expect("hierarchical");
        let per_fact = shapley_report_per_fact(&db, &q1, &options).expect("hierarchical");
        assert!(batched.efficiency_holds(), "efficiency axiom violated");
        for (a, b) in batched.entries.iter().zip(&per_fact.entries) {
            assert_eq!(a.value, b.value, "batched vs per-fact at {}", a.rendered);
        }
    }

    let mut rows = Vec::new();
    for &m in &[64usize, 256, 1024, 4096] {
        let db = cqshap_workloads::report_benchmark_db(m);
        assert_eq!(db.endo_count(), m);
        let batched = median(
            (0..samples)
                .map(|_| {
                    time_ms(|| {
                        let r = shapley_report(&db, &q1, &options).expect("hierarchical");
                        assert!(r.efficiency_holds());
                    })
                })
                .collect(),
        );
        // The seed path at m = 1024 costs minutes of CPU; quick mode
        // (CI) skips it, full mode measures a single sample. At
        // m = 4096 it is out of reach outright.
        let per_fact = if m >= 4096 || (quick && m >= 1024) {
            None
        } else {
            let n = if m >= 1024 { 1 } else { samples };
            Some(median(
                (0..n)
                    .map(|_| {
                        time_ms(|| {
                            let r =
                                shapley_report_per_fact(&db, &q1, &options).expect("hierarchical");
                            assert!(r.efficiency_holds());
                        })
                    })
                    .collect(),
            ))
        };
        let speedup = per_fact.map(|p| p / batched);
        eprintln!(
            "m = {m:>5}: batched {batched:>10.3} ms | per-fact {} | speedup {}",
            per_fact.map_or("skipped".to_string(), |p| format!("{p:.3} ms")),
            speedup.map_or("—".to_string(), |s| format!("{s:.1}×")),
        );
        rows.push((m, batched, per_fact, speedup));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(m, batched, per_fact, speedup)| {
            format!(
                "    {{\"m\": {m}, \"batched_median_ms\": {batched:.3}, \
                 \"per_fact_median_ms\": {}, \"speedup\": {}}}",
                per_fact.map_or("null".to_string(), |p| format!("{p:.3}")),
                speedup.map_or("null".to_string(), |s| format!("{s:.2}")),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-report/v1\",\n  \"query\": \"{}\",\n  \
         \"workload\": \"report_benchmark_db\",\n  \"mode\": \"{}\",\n  \
         \"samples\": {},\n  {},\n  \"results\": [\n{}\n  ]\n}}\n",
        q1,
        if quick { "quick" } else { "full" },
        samples,
        host_meta_json(),
        json_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}

/// A non-hierarchical instance (path `x–y` between `R(x)` and `T(y)`)
/// with `m` endogenous facts: every exact tier rejects it, so only the
/// degraded tiers of the ladder answer.
fn hard_benchmark_db(m: usize) -> Database {
    assert!(m >= 3 && m % 2 == 1, "needs an odd m ≥ 3, got {m}");
    let mut db = Database::new();
    for i in 0..m / 2 {
        db.add_endo("R", &[&format!("a{i}")]).expect("distinct");
        db.add_endo("S", &[&format!("a{i}"), "u"])
            .expect("distinct");
    }
    db.add_endo("T", &["u"]).expect("distinct");
    db
}

/// The `--trace` mode of `bench-report`: one instrumented pass per
/// `m ∈ {64, 256, 1024}`, each collected into its own `cqshap-trace/v1`
/// window. Every pass exercises the full vocabulary the trace schema
/// documents: the batched report on the hierarchical workload (prepare
/// sub-phases, per-root-group compile/recount spans, poly backend
/// dispatch, cache hit/miss counters), one provenance flip plus
/// re-report (update spans, recount-cache reuse), and the degradation
/// ladder on a non-hierarchical instance under a wall-clock budget
/// (anytime sampler strata histograms, tier answer/demote events).
fn bench_trace(out_path: &str) {
    let trace = cqshap_obs::install_trace().expect("no recorder installed before bench_trace");
    let host_cores = cqshap_numeric::poly::resolve_threads(0);
    let meta = cqshap_obs::TraceMeta {
        host_cores,
        thread_cap: host_cores,
    };
    let q1 = queries::q1();
    let hard_q = parse_cq("q() :- R(x), S(x, y), T(y)").expect("parses");
    let mut runs: Vec<String> = Vec::new();
    for &m in &[64usize, 256, 1024] {
        trace.clear();
        let db = cqshap_workloads::report_benchmark_db(m);
        let options = opts();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &options).expect("hierarchical");
        let r = session.report().expect("hierarchical");
        assert!(r.efficiency_holds());
        // One provenance flip + re-report, so incremental update spans
        // and recount-cache reuse land in the window too.
        let f = db.endo_facts()[0];
        session.set_exogenous(f, true).expect("live fact");
        let r = session.report().expect("hierarchical");
        assert!(r.efficiency_holds());
        // The degradation ladder on a non-hierarchical instance: the
        // exact tier demotes, the sampler records its strata, and the
        // answering tier emits its event.
        let hard_db = hard_benchmark_db(m + 1);
        let budget = opts().budget(Budget::wall_ms(2_000));
        let mut hard =
            ShapleySession::prepare_with_fallback(&hard_db, AnyQuery::Cq(&hard_q), &budget)
                .expect("fallback prepare always yields a session here");
        let policy = TierPolicy {
            epsilon: 0.2,
            ..TierPolicy::default()
        };
        hard.report_tiered(&policy).expect("ladder answers");
        let window = trace.to_json(&meta);
        eprintln!("trace m = {m:>5}: {} bytes of trace window", window.len());
        runs.push(format!("    {{\"m\": {m}, \"trace\": {window}}}"));
    }
    let json = format!(
        "{{\n  \"schema\": \"cqshap-trace-report/v1\",\n  \"query\": \"{}\",\n  \
         \"workloads\": [\"report_benchmark_db\", \"hard_benchmark_db\"],\n  \
         {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        q1,
        host_meta_json(),
        runs.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write trace report");
    println!("wrote {out_path}");
}

/// The `--anytime` mode of `bench-report`: the anytime tier and the
/// degradation ladder. Three measurements per `m ∈ {256, 1024}`:
///
/// 1. time-to-±ε of the anytime sampler (per-fact CLT intervals) on a
///    hierarchical and a non-hierarchical workload, with draw counts,
///    convergence, and the widest interval actually achieved;
/// 2. deadline-hit rate of the *exact* report under wall-clock budgets
///    of 5 ms and 50 ms (how often `DeadlineExceeded` surfaces instead
///    of a hang);
/// 3. the tier `report_tiered` settles on per query class — exact for
///    the hierarchical query, sampled for the intractable one, WSMS
///    when the budget is too tight for sampling to converge.
fn bench_anytime(quick: bool, out_path: &str) {
    let q1 = queries::q1();
    let hard_q = parse_cq("q() :- R(x), S(x, y), T(y)").expect("parses");
    let epsilon = if quick { 0.15 } else { 0.05 };
    let delta = 0.05;
    let budget_ms: u64 = if quick { 2_000 } else { 10_000 };

    // 1. The anytime sampler: wall-clock to ±ε (or to the budget).
    let mut anytime_rows: Vec<String> = Vec::new();
    for &m in &[256usize, 1024] {
        let classes: [(&str, Database, &cqshap_query::ConjunctiveQuery); 2] = [
            (
                "hierarchical",
                cqshap_workloads::report_benchmark_db(m),
                &q1,
            ),
            ("non-hierarchical", hard_benchmark_db(m + 1), &hard_q),
        ];
        for (class, db, q) in classes {
            let options = opts().budget(Budget::wall_ms(budget_ms));
            let mut session = ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(q), &options)
                .expect("fallback prepare always yields a session here");
            let params = AnytimeParams {
                epsilon,
                delta,
                ..AnytimeParams::default()
            };
            let report = session.anytime(&params).expect("anytime runs");
            let widest = report
                .entries
                .iter()
                .map(|e| e.half_width)
                .fold(0.0f64, f64::max);
            eprintln!(
                "anytime m = {m:>5} {class:<17}: {:>9.1} ms, {:>8} draws, converged {}, \
                 deadline_hit {}, widest ±{widest:.4}",
                report.elapsed.as_secs_f64() * 1e3,
                report.spent_samples,
                report.converged,
                report.deadline_hit,
            );
            anytime_rows.push(format!(
                "    {{\"m\": {m}, \"class\": \"{class}\", \"facts\": {}, \
                 \"time_to_eps_ms\": {:.3}, \"draws\": {}, \"converged\": {}, \
                 \"deadline_hit\": {}, \"widest_half_width\": {widest:.5}}}",
                db.endo_count(),
                report.elapsed.as_secs_f64() * 1e3,
                report.spent_samples,
                report.converged,
                report.deadline_hit,
            ));
        }
    }

    // 2. Deadline-hit rate of the exact report under tight budgets.
    let mut deadline_rows: Vec<String> = Vec::new();
    let trials = if quick { 3 } else { 5 };
    for &m in &[256usize, 1024] {
        let db = cqshap_workloads::report_benchmark_db(m);
        for &deadline in &[5u64, 50] {
            let options = opts().budget(Budget::wall_ms(deadline));
            let mut hits = 0usize;
            let mut elapsed = Vec::new();
            for _ in 0..trials {
                let session =
                    ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(&q1), &options)
                        .expect("fallback prepare always yields a session here");
                elapsed.push(time_ms(|| match session.report() {
                    Ok(_) => {}
                    Err(CoreError::DeadlineExceeded { .. }) | Err(CoreError::Unsupported(_)) => {
                        hits += 1;
                    }
                    Err(e) => panic!("unexpected exact-report error: {e}"),
                }));
            }
            let rate = hits as f64 / trials as f64;
            eprintln!(
                "deadline m = {m:>5}, {deadline:>3} ms: hit rate {rate:.2} \
                 (median return {:.3} ms)",
                median(elapsed.clone()),
            );
            deadline_rows.push(format!(
                "    {{\"m\": {m}, \"deadline_ms\": {deadline}, \"trials\": {trials}, \
                 \"hit_rate\": {rate:.2}, \"median_return_ms\": {:.3}}}",
                median(elapsed),
            ));
        }
    }

    // 3. The ladder: which tier answers each query class.
    let mut ladder_rows: Vec<String> = Vec::new();
    let m = 256usize;
    let ladder_cases: [(
        &str,
        Database,
        &cqshap_query::ConjunctiveQuery,
        TierPolicy,
        u64,
    ); 3] = [
        (
            "hierarchical",
            cqshap_workloads::report_benchmark_db(m),
            &q1,
            TierPolicy {
                epsilon,
                ..TierPolicy::default()
            },
            budget_ms,
        ),
        (
            "non-hierarchical",
            hard_benchmark_db(m + 1),
            &hard_q,
            TierPolicy {
                epsilon,
                ..TierPolicy::default()
            },
            budget_ms,
        ),
        // ε far below what the budget can refine to: the sampled tier
        // returns unconverged and the ladder lands on WSMS.
        (
            "non-hierarchical, starved",
            hard_benchmark_db(m + 1),
            &hard_q,
            TierPolicy {
                epsilon: 0.001,
                ..TierPolicy::default()
            },
            250,
        ),
    ];
    for (class, db, q, policy, ms) in ladder_cases {
        let options = opts().budget(Budget::wall_ms(ms));
        let mut session = ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(q), &options)
            .expect("fallback prepare always yields a session here");
        let t = Instant::now();
        let answer = session.report_tiered(&policy).expect("ladder answers");
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        let tier = match &answer {
            TieredAnswer::Exact(_) => "exact",
            TieredAnswer::Sampled(_) => "sampled",
            TieredAnswer::Wsms(_) => "wsms",
        };
        eprintln!("ladder m = {m:>5} {class:<26}: {tier} in {elapsed:.1} ms");
        ladder_rows.push(format!(
            "    {{\"m\": {m}, \"class\": \"{class}\", \"budget_ms\": {ms}, \
             \"tier\": \"{tier}\", \"elapsed_ms\": {elapsed:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-anytime/v1\",\n  \"mode\": \"{}\",\n  \
         \"epsilon\": {epsilon},\n  \"delta\": {delta},\n  \"budget_ms\": {budget_ms},\n  {},\n  \
         \"anytime\": [\n{}\n  ],\n  \"deadline\": [\n{}\n  ],\n  \"ladder\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        host_meta_json(),
        anytime_rows.join(",\n"),
        deadline_rows.join(",\n"),
        ladder_rows.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write anytime bench");
    println!("wrote {out_path}");
}

/// The `--session` mode of `bench-report`: amortized per-update cost
/// of the `ShapleySession` incremental maintenance path (in-place
/// exogenous flips on the report workload, each followed by a full
/// re-report) against the recompile path (the same flip applied to a
/// plain database, followed by a fresh `prepare` + report) at
/// `m ∈ {64, 256, 1024}`. Quick mode (CI) skips the recompile baseline
/// at `m = 1024` (it costs several seconds per update).
fn bench_session(quick: bool, out_path: &str) {
    use cqshap_db::Provenance;
    let q1 = queries::q1();
    let options = opts();
    let mut rows: Vec<String> = Vec::new();
    for &m in &[64usize, 256, 1024] {
        let db = cqshap_workloads::report_benchmark_db(m);
        assert_eq!(db.endo_count(), m);
        let updates: usize = if m >= 1024 {
            if quick {
                2
            } else {
                4
            }
        } else {
            8
        };
        let targets: Vec<cqshap_db::FactId> = db
            .endo_facts()
            .iter()
            .copied()
            .take(updates.div_ceil(2))
            .collect();

        // Incremental path: prepare once, then update + re-report.
        let t0 = Instant::now();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &options).expect("hierarchical");
        let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for u in 0..updates {
            // Flip one grouped fact out of Dn, then back in: every op
            // is a real provenance change touching one root group.
            let f = targets[u / 2];
            session.set_exogenous(f, u % 2 == 0).expect("live fact");
            let r = session.report().expect("hierarchical");
            assert!(r.efficiency_holds(), "efficiency after update {u}");
        }
        let incremental = t1.elapsed().as_secs_f64() * 1e3 / updates as f64;
        assert_eq!(
            session.stats().incremental_updates,
            updates,
            "every flip must be maintained incrementally"
        );

        // Correctness guard: the maintained session is bit-identical to
        // a fresh prepare on the updated database.
        {
            let fresh = ShapleySession::prepare(session.database(), AnyQuery::Cq(&q1), &options)
                .expect("hierarchical");
            let (a, b) = (
                session.report().expect("hierarchical"),
                fresh.report().expect("hierarchical"),
            );
            for (x, y) in a.entries.iter().zip(&b.entries) {
                assert_eq!(x.value, y.value, "maintained vs fresh at {}", x.rendered);
            }
        }

        // Recompile path: the same updates against a plain database,
        // paying a fresh prepare + report each time.
        let recompile = if quick && m >= 1024 {
            None
        } else {
            let mut plain = db.clone();
            let t2 = Instant::now();
            for u in 0..updates {
                let f = targets[u / 2];
                let p = if u % 2 == 0 {
                    Provenance::Exogenous
                } else {
                    Provenance::Endogenous
                };
                plain.set_fact_provenance(f, p).expect("live fact");
                let fresh = ShapleySession::prepare(&plain, AnyQuery::Cq(&q1), &options)
                    .expect("hierarchical");
                let r = fresh.report().expect("hierarchical");
                assert!(r.efficiency_holds());
            }
            Some(t2.elapsed().as_secs_f64() * 1e3 / updates as f64)
        };
        let speedup = recompile.map(|r| r / incremental);
        eprintln!(
            "session m = {m:>5}: prepare {prepare_ms:>10.3} ms | update+report {incremental:>10.3} ms \
             | recompile+report {} | speedup {}",
            recompile.map_or("skipped".to_string(), |r| format!("{r:.3} ms")),
            speedup.map_or("—".to_string(), |x| format!("{x:.1}×")),
        );
        rows.push(format!(
            "    {{\"m\": {m}, \"updates\": {updates}, \"prepare_ms\": {prepare_ms:.3}, \
             \"incremental_ms_per_update\": {incremental:.3}, \
             \"recompile_ms_per_update\": {}, \"speedup\": {}}}",
            recompile.map_or("null".to_string(), |r| format!("{r:.3}")),
            speedup.map_or("null".to_string(), |x| format!("{x:.2}")),
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-session/v1\",\n  \"query\": \"{}\",\n  \
         \"workload\": \"report_benchmark_db\",\n  \
         \"update\": \"set_exogenous flip on one grouped fact\",\n  \
         \"mode\": \"{}\",\n  {},\n  \"results\": [\n{}\n  ]\n}}\n",
        q1,
        if quick { "quick" } else { "full" },
        host_meta_json(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write session bench");
    println!("wrote {out_path}");
}

/// The `--probdb` mode of `bench-report`: the unified probability path
/// against the seed lifted-inference traversal, on the probabilistic
/// analogue of the all-facts report — `Pr[D ⊨ q]` plus the expected
/// marginal `Pr[q | f present] − Pr[q | f absent]` of every endogenous
/// fact. The unified sample compiles one
/// [`cqshap_core::CompiledProbability`] engine
/// and serves all `m` marginals from its cached leave-one-out
/// environments (compile included in the timed total); the seed sample
/// answers the same report by re-running the `oracle_probability`
/// traversal from scratch per conditioning — `2m + 1` full traversals,
/// forcing a fact by pinning its probability to 1 or 0. Probabilities
/// are exact dyadic rationals cycled over `Dn`, so every measured
/// answer doubles as a correctness check: wherever both paths run,
/// their `BigRational` results must be bit-identical.
///
/// The seed path is always skipped at `m = 4096` (2m + 1 traversals
/// cost minutes there — exactly the regime the unified path opens) and
/// in quick mode at `m = 1024`; quick mode (CI) drops the `m = 4096`
/// row entirely (its unified report alone costs ~40 s).
fn bench_probdb(quick: bool, out_path: &str) {
    use cqshap_core::{
        probability_by_enumeration, CompiledProbability, EngineUpdate, FactProbabilities,
    };
    use cqshap_db::Provenance;
    use cqshap_probdb::lifted::oracle_probability;

    const DYADIC: &[(i64, i64)] = &[(1, 2), (1, 4), (3, 4), (1, 8), (5, 8), (7, 8)];
    fn probs_for(db: &Database) -> FactProbabilities {
        let mut probs = FactProbabilities::uniform(BigRational::from_i64_ratio(1, 2));
        for (i, &f) in db.endo_facts().iter().enumerate() {
            let (n, d) = DYADIC[i % DYADIC.len()];
            probs.set(f, BigRational::from_i64_ratio(n, d));
        }
        probs
    }

    let q1 = queries::q1();

    // Correctness guard before timing anything: on the running example
    // (small enough to enumerate worlds), the unified engine, the seed
    // oracle, and brute-force enumeration agree bit for bit.
    {
        let db = figure_1_database();
        let probs = probs_for(&db);
        let engine = CompiledProbability::compile(&db, &q1, probs.clone()).expect("hierarchical");
        let oracle = oracle_probability(&db, &probs, &q1).expect("hierarchical");
        assert_eq!(engine.probability(), &oracle, "unified vs seed oracle");
        let enumerated = probability_by_enumeration(&db, AnyQuery::Cq(&q1), &probs, None, 20)
            .expect("small enough");
        assert_eq!(engine.probability(), &enumerated, "unified vs enumeration");
    }

    let mut rows: Vec<String> = Vec::new();
    let sizes: &[usize] = if quick {
        &[64, 256, 1024]
    } else {
        &[64, 256, 1024, 4096]
    };
    for &m in sizes {
        let db = cqshap_workloads::report_benchmark_db(m);
        assert_eq!(db.endo_count(), m);
        let probs = probs_for(&db);

        // Unified path: one compile, then every answer from the cached
        // environments. The incremental-maintenance contract is checked
        // with one provenance flip and its inverse before timing.
        {
            let mut engine =
                CompiledProbability::compile(&db, &q1, probs.clone()).expect("hierarchical");
            let mut mdb = db.clone();
            let f = db.endo_facts()[0];
            for p in [Provenance::Exogenous, Provenance::Endogenous] {
                mdb.set_fact_provenance(f, p).expect("live fact");
                let maintained = engine
                    .update(&mdb, EngineUpdate::ProvenanceFlipped(f))
                    .expect("hierarchical");
                assert!(maintained, "provenance flips must be maintained in place");
            }
            assert_eq!(
                engine.probability(),
                &oracle_probability(&db, &probs, &q1).expect("hierarchical"),
                "maintained engine vs seed oracle after flip round-trip"
            );
        }
        let mut total = BigRational::zero();
        let mut marginals: Vec<BigRational> = Vec::with_capacity(m);
        let t0 = Instant::now();
        let engine = CompiledProbability::compile(&db, &q1, probs.clone()).expect("hierarchical");
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        total += engine.probability();
        for &f in db.endo_facts() {
            marginals.push(engine.expected_marginal(&db, f).expect("endogenous"));
        }
        let answers_ms = t1.elapsed().as_secs_f64() * 1e3;
        let unified = compile_ms + answers_ms;

        // Seed path: the same report, every conditioning a fresh full
        // traversal (forced presence/absence = probability pinned 1/0).
        let seed = if m >= 4096 || (quick && m >= 1024) {
            None
        } else {
            let t2 = Instant::now();
            let pr = oracle_probability(&db, &probs, &q1).expect("hierarchical");
            assert_eq!(pr, total, "seed vs unified Pr[D ⊨ q]");
            for (i, &f) in db.endo_facts().iter().enumerate() {
                let mut forced = probs.clone();
                forced.set(f, BigRational::one());
                let present = oracle_probability(&db, &forced, &q1).expect("hierarchical");
                forced.set(f, BigRational::zero());
                let absent = oracle_probability(&db, &forced, &q1).expect("hierarchical");
                assert_eq!(
                    present - absent,
                    marginals[i],
                    "seed vs unified marginal of fact {i}"
                );
            }
            Some(t2.elapsed().as_secs_f64() * 1e3)
        };
        let speedup = seed.map(|s| s / unified);
        eprintln!(
            "probdb m = {m:>5}: compile {compile_ms:>10.3} ms | unified report {unified:>10.3} ms \
             | seed report {} | speedup {}",
            seed.map_or("skipped".to_string(), |s| format!("{s:.3} ms")),
            speedup.map_or("—".to_string(), |x| format!("{x:.1}×")),
        );
        rows.push(format!(
            "    {{\"m\": {m}, \"compile_ms\": {compile_ms:.3}, \
             \"unified_report_ms\": {unified:.3}, \"seed_report_ms\": {}, \
             \"speedup\": {}}}",
            seed.map_or("null".to_string(), |s| format!("{s:.3}")),
            speedup.map_or("null".to_string(), |x| format!("{x:.2}")),
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-probdb/v1\",\n  \"query\": \"{}\",\n  \
         \"workload\": \"report_benchmark_db\",\n  \
         \"probabilities\": \"dyadic cycle {:?} over Dn\",\n  \
         \"report\": \"Pr[D \\u22a8 q] plus expected marginal of every endogenous fact\",\n  \
         \"seed_path\": \"cqshap_probdb::lifted::oracle_probability, 2m + 1 traversals\",\n  \
         \"mode\": \"{}\",\n  {},\n  \"results\": [\n{}\n  ]\n}}\n",
        q1,
        DYADIC,
        if quick { "quick" } else { "full" },
        host_meta_json(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write probdb bench");
    println!("wrote {out_path}");
}

/// The `--poly` mode of `bench-report`: the `cqshap-numeric::poly`
/// convolution subsystem in isolation. The workload is the compile
/// stage's dominant kernel — the leave-one-out environments over one
/// unsatisfying-count polynomial per root group (degree 4, small
/// coefficients: the shape `report_benchmark_db` produces) — at
/// `m ∈ {256, 1024, 4096}` total endogenous facts. Rows compare:
///
/// * `schoolbook_descent` — an exact replica of the pre-subsystem
///   engine code (sequential fold products + prefix/suffix descent,
///   schoolbook convolution): the baseline;
/// * `karatsuba_descent` / `ntt_descent` — the same descent with the
///   forced backend (balanced subproduct trees), isolating what a
///   convolution backend alone buys on the old algorithm;
/// * `subsystem` — the shipped `poly::leave_one_out_products_shared`
///   (the form the compiled engines consume): one backend-dispatched
///   total-product tree plus one exact division per distinct factor,
///   duplicates `Arc`-shared.
///
/// The scaling rows run the shipped subsystem under explicit thread
/// caps (on a single-core host those rows are expectedly flat — the
/// JSON records `host_cores` so readers can tell). Quick mode (CI)
/// skips the multi-second descent rows at `m = 4096` and measures
/// single samples; the forced-NTT descent at `m = 4096` is always
/// skipped (the old algorithm's accumulator products make it pay full
/// big-coefficient transforms thousands of times — several minutes —
/// which is exactly why the subsystem replaced the descent).
fn bench_poly(quick: bool, out_path: &str) {
    use cqshap_numeric::poly::{self, Backend};
    use cqshap_numeric::BigUint;

    /// One degree-4 unsatisfying-count polynomial per 4-fact root
    /// group: `unsat[0] = 1` (the empty subset never satisfies) and
    /// `unsat[k] ≤ C(4, k)`, varied by a deterministic xorshift.
    fn group_polys(m: usize) -> Vec<Vec<BigUint>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ m as u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let binom4 = [1u64, 4, 6, 4, 1];
        (0..m / 4)
            .map(|_| {
                binom4
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| BigUint::from_u64(if k == 0 { 1 } else { next() % (c + 1) }))
                    .collect()
            })
            .collect()
    }

    /// The pre-subsystem engine algorithm: subproducts by `fold_products`
    /// (the seed's sequential `product()`) or a balanced tree for the
    /// forced fast backends, then the prefix/suffix descent.
    fn fold_products(polys: &[&[BigUint]], backend: Backend) -> Vec<BigUint> {
        polys.iter().fold(vec![BigUint::one()], |acc, p| {
            poly::mul_with(&acc, p, backend)
        })
    }

    fn descent(
        polys: &[&[BigUint]],
        acc: Vec<BigUint>,
        backend: Backend,
        fold: bool,
        out: &mut Vec<Vec<BigUint>>,
    ) {
        match polys {
            [] => {}
            [_] => out.push(acc),
            _ => {
                let (left, right) = polys.split_at(polys.len() / 2);
                let (lp, rp) = if fold {
                    (fold_products(left, backend), fold_products(right, backend))
                } else {
                    (
                        poly::product_tree_with(left, 1, backend),
                        poly::product_tree_with(right, 1, backend),
                    )
                };
                descent(left, poly::mul_with(&acc, &rp, backend), backend, fold, out);
                descent(
                    right,
                    poly::mul_with(&acc, &lp, backend),
                    backend,
                    fold,
                    out,
                );
            }
        }
    }

    fn descent_ms(polys: &[Vec<BigUint>], backend: Backend, fold: bool) -> f64 {
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();
        time_ms(|| {
            let mut out = Vec::with_capacity(refs.len());
            descent(&refs, vec![BigUint::one()], backend, fold, &mut out);
            assert_eq!(out.len(), refs.len());
        })
    }

    fn subsystem_ms(polys: &[Vec<BigUint>], threads: usize) -> f64 {
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();
        time_ms(|| {
            // The shared form is what the compiled engines consume:
            // equal factors hold one environment allocation.
            let envs = poly::leave_one_out_products_shared(&refs, &[BigUint::one()], threads);
            assert_eq!(envs.len(), refs.len());
        })
    }

    // Correctness guard before timing anything: the shipped subsystem
    // must be bit-identical to the pre-subsystem descent, across
    // backends and thread caps.
    {
        let polys = group_polys(256);
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();
        let mut want = Vec::new();
        descent(
            &refs,
            vec![BigUint::one()],
            Backend::Schoolbook,
            true,
            &mut want,
        );
        for backend in [Backend::Karatsuba, Backend::Ntt] {
            let mut got = Vec::new();
            descent(&refs, vec![BigUint::one()], backend, false, &mut got);
            assert_eq!(got, want, "{backend:?} descent");
        }
        for threads in [1usize, 4] {
            assert_eq!(
                poly::leave_one_out_products(&refs, &[BigUint::one()], threads),
                want,
                "subsystem with {threads} threads"
            );
        }
    }

    let samples = if quick { 1 } else { 3 };
    let mut rows: Vec<String> = Vec::new();
    for &m in &[256usize, 1024, 4096] {
        let polys = group_polys(m);
        let mut baseline = None;
        for algorithm in [
            "schoolbook_descent",
            "karatsuba_descent",
            "ntt_descent",
            "subsystem",
        ] {
            let skip = match algorithm {
                // The old algorithm's rows cost tens of seconds at
                // m = 4096 (forced NTT: minutes — always skipped).
                "schoolbook_descent" | "karatsuba_descent" => quick && m >= 4096,
                "ntt_descent" => m >= 4096,
                _ => false,
            };
            let med = if skip {
                None
            } else {
                let n = if m >= 4096 { 1 } else { samples };
                let run = || match algorithm {
                    "schoolbook_descent" => descent_ms(&polys, Backend::Schoolbook, true),
                    "karatsuba_descent" => descent_ms(&polys, Backend::Karatsuba, false),
                    "ntt_descent" => descent_ms(&polys, Backend::Ntt, false),
                    _ => subsystem_ms(&polys, 1),
                };
                Some(median((0..n).map(|_| run()).collect()))
            };
            if algorithm == "schoolbook_descent" {
                baseline = med;
            }
            let speedup = match (baseline, med) {
                (Some(b), Some(x)) => Some(b / x),
                _ => None,
            };
            eprintln!(
                "poly m = {m:>5} {algorithm:>20}: {} | vs baseline {}",
                med.map_or("skipped".to_string(), |x| format!("{x:>10.3} ms")),
                speedup.map_or("—".to_string(), |s| format!("{s:.1}×")),
            );
            rows.push(format!(
                "    {{\"m\": {m}, \"n_polys\": {}, \"algorithm\": \"{algorithm}\", \
                 \"sequential_median_ms\": {}, \"speedup_vs_schoolbook_descent\": {}}}",
                m / 4,
                med.map_or("null".to_string(), |x| format!("{x:.3}")),
                speedup.map_or("null".to_string(), |s| format!("{s:.2}")),
            ));
        }
    }

    let mut scaling_rows: Vec<String> = Vec::new();
    let scaling_ms: &[usize] = if quick { &[1024] } else { &[1024, 4096] };
    let thread_caps: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    for &m in scaling_ms {
        let polys = group_polys(m);
        let mut base = None;
        for &threads in thread_caps {
            let med = median(
                (0..samples)
                    .map(|_| subsystem_ms(&polys, threads))
                    .collect(),
            );
            let base_ms = *base.get_or_insert(med);
            eprintln!(
                "poly m = {m:>5} threads = {threads}: {med:>10.3} ms | speedup vs 1 thread {:.2}×",
                base_ms / med
            );
            scaling_rows.push(format!(
                "    {{\"m\": {m}, \"threads\": {threads}, \"median_ms\": {med:.3}, \
                 \"speedup_vs_one_thread\": {:.2}}}",
                base_ms / med
            ));
        }
    }

    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-poly/v1\",\n  \
         \"workload\": \"leave-one-out environments over m/4 degree-4 unsat polynomials\",\n  \
         \"baseline\": \"schoolbook_descent (pre-subsystem engine algorithm)\",\n  \
         \"mode\": \"{}\",\n  \"samples\": {samples},\n  {},\n  \
         \"results\": [\n{}\n  ],\n  \"thread_scaling\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        host_meta_json(),
        rows.join(",\n"),
        scaling_rows.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write poly bench");
    println!("wrote {out_path}");
}

/// The `--ucq` / `--aggregate` modes of `bench-report`: the batched
/// inclusion–exclusion union report and the shared-engine aggregate
/// report, each against its per-fact seed path (every fact re-running
/// the full counting pipeline with no compiled sharing), at
/// `m ∈ {64, 256}`. Results land in `BENCH_ucq.json`.
///
/// The per-fact baselines are measured with a single sample at `m = 256`
/// (they cost tens of seconds); quick mode (CI) additionally skips the
/// aggregate baseline there.
fn bench_union_aggregate(ucq: bool, aggregate: bool, quick: bool, samples: usize, out_path: &str) {
    let options = opts();
    let mut rows: Vec<String> = Vec::new();
    let row = |mode: &str, m: usize, batched: f64, per_fact: Option<f64>| {
        let speedup = per_fact.map(|p| p / batched);
        eprintln!(
            "{mode} m = {m:>4}: batched {batched:>10.3} ms | per-fact {} | speedup {}",
            per_fact.map_or("skipped".to_string(), |p| format!("{p:.3} ms")),
            speedup.map_or("—".to_string(), |s| format!("{s:.1}×")),
        );
        format!(
            "    {{\"mode\": \"{mode}\", \"m\": {m}, \"batched_median_ms\": {batched:.3}, \
             \"per_fact_median_ms\": {}, \"speedup\": {}}}",
            per_fact.map_or("null".to_string(), |p| format!("{p:.3}")),
            speedup.map_or("null".to_string(), |s| format!("{s:.2}")),
        )
    };

    if ucq {
        let u = queries::union_benchmark();
        // Correctness guard before timing anything: the batched union
        // engine must be bit-identical to the per-fact path.
        {
            let db = cqshap_workloads::union_benchmark_db(64);
            let batched = shapley_report_union(&db, &u, &options).expect("tractable union");
            let per_fact =
                shapley_report_union_per_fact(&db, &u, &options).expect("tractable union");
            assert!(batched.efficiency_holds(), "union efficiency violated");
            for (a, b) in batched.entries.iter().zip(&per_fact.entries) {
                assert_eq!(
                    a.value, b.value,
                    "union batched vs per-fact at {}",
                    a.rendered
                );
            }
        }
        for &m in &[64usize, 256] {
            let db = cqshap_workloads::union_benchmark_db(m);
            assert_eq!(db.endo_count(), m);
            let batched = median(
                (0..samples)
                    .map(|_| {
                        time_ms(|| {
                            let r = shapley_report_union(&db, &u, &options).expect("tractable");
                            assert!(r.efficiency_holds());
                        })
                    })
                    .collect(),
            );
            let n = if m >= 256 { 1 } else { samples };
            let per_fact = Some(median(
                (0..n)
                    .map(|_| {
                        time_ms(|| {
                            let r = shapley_report_union_per_fact(&db, &u, &options)
                                .expect("tractable");
                            assert!(r.efficiency_holds());
                        })
                    })
                    .collect(),
            ));
            rows.push(row("ucq", m, batched, per_fact));
        }
    }

    if aggregate {
        let q = queries::per_course_count();
        let agg = AggregateFunction::Count;
        // Correctness guard: the shared-engine report must agree with
        // the per-fact aggregate decomposition.
        {
            let db = cqshap_workloads::report_benchmark_db(64);
            let report = aggregate_report(&db, &q, &agg, &options).expect("tractable aggregate");
            assert!(report.efficiency_holds(), "aggregate efficiency violated");
            for entry in &report.entries {
                let v = aggregate_shapley(&db, &q, &agg, entry.fact, &options).expect("tractable");
                assert_eq!(
                    entry.value, v,
                    "aggregate report vs per-fact at {}",
                    entry.rendered
                );
            }
        }
        for &m in &[64usize, 256] {
            let db = cqshap_workloads::report_benchmark_db(m);
            let batched = median(
                (0..samples)
                    .map(|_| {
                        time_ms(|| {
                            let r = aggregate_report(&db, &q, &agg, &options).expect("tractable");
                            assert!(r.efficiency_holds());
                        })
                    })
                    .collect(),
            );
            // The per-fact seed loop at m = 256 costs minutes; quick
            // mode (CI) skips it, full mode measures a single sample.
            let per_fact = if quick && m >= 256 {
                None
            } else {
                let n = if m >= 256 { 1 } else { samples };
                Some(median(
                    (0..n)
                        .map(|_| {
                            time_ms(|| {
                                for &f in db.endo_facts() {
                                    aggregate_shapley(&db, &q, &agg, f, &options)
                                        .expect("tractable");
                                }
                            })
                        })
                        .collect(),
                ))
            };
            rows.push(row("aggregate", m, batched, per_fact));
        }
    }

    let json = format!(
        "{{\n  \"schema\": \"cqshap-bench-ucq/v1\",\n  \
         \"union_query\": \"{}\",\n  \"aggregate_query\": \"{}\",\n  \
         \"workloads\": [\"union_benchmark_db\", \"report_benchmark_db\"],\n  \
         \"mode\": \"{}\",\n  \"samples\": {},\n  {},\n  \"results\": [\n{}\n  ]\n}}\n",
        queries::union_benchmark().to_string().replace('\n', "; "),
        queries::per_course_count(),
        if quick { "quick" } else { "full" },
        samples,
        host_meta_json(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}

// ---------------------------------------------------------------------

fn e1() {
    let db = figure_1_database();
    let q1 = queries::q1();
    let report = shapley_report(&db, &q1, &opts()).expect("hierarchical");
    let paper = [
        ("TA(Adam)", "-3/28"),
        ("TA(Ben)", "-2/35"),
        ("TA(David)", "0"),
        ("Reg(Adam, OS)", "37/210"),
        ("Reg(Adam, AI)", "37/210"),
        ("Reg(Ben, OS)", "27/140"),
        ("Reg(Caroline, DB)", "13/42"),
        ("Reg(Caroline, IC)", "13/42"),
    ];
    let mut t = Table::new(&["fact", "paper (Ex. 2.3)", "computed", "match"]);
    for ((fact, want), entry) in paper.iter().zip(&report.entries) {
        assert_eq!(*fact, entry.rendered);
        let got = entry.value.to_string();
        let ok = if got == *want { "✓" } else { "✗" };
        t.row(&[fact.to_string(), want.to_string(), got, ok.to_string()]);
    }
    print!("{t}");
    println!(
        "\nefficiency: Σ = {} vs q(D) − q(Dx) = {} → {}",
        report.total,
        report.expected_total,
        if report.efficiency_holds() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "note: the appendix's expansion for f_r1 misses the subset {{f_t2, f_t3}}; \
         the main text's 37/210 is correct and reproduced here."
    );
}

fn e2() {
    let mut t = Table::new(&["query", "X", "verdict"]);
    let none: HashSet<String> = HashSet::new();
    let row = |t: &mut Table, q: &cqshap_query::ConjunctiveQuery, x: &HashSet<String>| {
        let mut names: Vec<&str> = x.iter().map(|s| s.as_str()).collect();
        names.sort();
        t.row(&[
            q.to_string(),
            format!("{{{}}}", names.join(",")),
            classify_with_exo(q, x).to_string(),
        ]);
    };
    row(&mut t, &queries::q1(), &none);
    row(&mut t, &queries::q2(), &none);
    let x2: HashSet<String> = ["Stud", "Course"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::q2(), &x2);
    row(&mut t, &queries::q3(), &none);
    row(&mut t, &queries::q4(), &none);
    for q in [
        queries::qrst(),
        queries::qnrsnt(),
        queries::qrnst(),
        queries::qrsnt(),
    ] {
        row(&mut t, &q, &none);
    }
    let xs: HashSet<String> = ["S"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::qrnst(), &xs);
    row(&mut t, &queries::citations(), &none);
    let xc: HashSet<String> = ["Pub", "Citations"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::citations(), &xc);
    let xcit: HashSet<String> = ["Citations"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::citations(), &xcit);
    let x41: HashSet<String> = ["S", "P"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::section_4_1_tractable(), &x41);
    row(&mut t, &queries::section_4_1_hard(), &x41);
    let x42: HashSet<String> = ["Q", "S", "U", "P"].iter().map(|s| s.to_string()).collect();
    row(&mut t, &queries::example_4_2_q(), &x42);
    let x42p: HashSet<String> = ["R", "S", "O", "P", "V"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    row(&mut t, &queries::example_4_2_qprime(), &x42p);
    row(&mut t, &queries::unemployed_couple(), &none);
    row(&mut t, &queries::non_citizen_couple(), &none);
    row(&mut t, &queries::farmer_exports(), &none);
    print!("{t}");
}

fn e3() {
    let q1 = queries::q1();
    let mut t = Table::new(&[
        "students",
        "|Dn|",
        "CntSat (all facts)",
        "brute force (one fact)",
    ]);
    for students in [4usize, 8, 16, 32, 64, 128] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let t0 = Instant::now();
        let report = shapley_report(&db, &q1, &opts()).expect("hierarchical");
        let fast = t0.elapsed();
        assert!(report.efficiency_holds());
        let brute = if db.endo_count() <= 22 {
            let f = db.endo_facts()[0];
            let t1 = Instant::now();
            let v = shapley_via_counts(&db, AnyQuery::Cq(&q1), f, &BruteForceCounter::new())
                .expect("small enough");
            assert_eq!(v, report.entries[0].value);
            ms(t1.elapsed())
        } else {
            format!("2^{} worlds — skipped", db.endo_count())
        };
        t.row(&[
            students.to_string(),
            db.endo_count().to_string(),
            ms(fast),
            brute,
        ]);
    }
    print!("{t}");
    println!("\n(CntSat grows polynomially; enumeration doubles per added fact.)");
}

fn e4() {
    // Correctness on the running example (vs brute force).
    let mut db = figure_1_database();
    for name in ["Stud", "Course", "Adv"] {
        let rel = db.schema().id(name).expect("exists");
        db.declare_exogenous_relation(rel).expect("exogenous-safe");
    }
    let q2 = queries::q2();
    let exo_opts = ShapleyOptions::with_strategy(Strategy::ExoShap);
    let bf_opts = ShapleyOptions::with_strategy(Strategy::BruteForceSubsets);
    let mut t = Table::new(&["fact", "ExoShap", "brute force", "match"]);
    for &f in db.endo_facts() {
        let a = shapley_value(&db, &q2, f, &exo_opts).expect("rewritable");
        let b = shapley_value(&db, &q2, f, &bf_opts).expect("small");
        let ok = if a == b { "✓" } else { "✗" };
        t.row(&[
            db.render_fact(f),
            a.to_string(),
            b.to_string(),
            ok.to_string(),
        ]);
    }
    print!("{t}");

    // Rewriting trace (Figure 3 analogue).
    let outcome = rewrite(&db, &q2, 10_000_000).expect("rewritable");
    println!("\nrewriting stages for q2:");
    for s in &outcome.stages {
        println!("  {s}");
    }

    // Scaling on the academic scenario.
    let q = queries::citations();
    let mut t2 = Table::new(&["authors", "|Dn|", "ExoShap report (all facts)"]);
    for authors in [8usize, 16, 32, 64] {
        let adb = AcademicConfig {
            authors,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let t0 = Instant::now();
        let report = shapley_report(&adb, &q, &exo_opts).expect("rewritable");
        assert!(report.efficiency_holds());
        t2.row(&[
            authors.to_string(),
            adb.endo_count().to_string(),
            ms(t0.elapsed()),
        ]);
    }
    println!();
    print!("{t2}");
}

fn e5() {
    let mut t = Table::new(&[
        "n",
        "|D_n| endo",
        "Shapley(D_n, q, f0)",
        "as float",
        "2^-n bound",
    ]);
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let (q, inst) = section_5_1_example(n);
        let value = if n <= 4 {
            // Verify the closed form against the actual computation.
            let v = shapley_via_counts(
                &inst.db,
                AnyQuery::Cq(&q),
                inst.f0,
                &BruteForceCounter::new(),
            )
            .expect("small");
            assert_eq!(v.abs(), inst.expected_abs);
            v.abs()
        } else {
            inst.expected_abs.clone()
        };
        t.row(&[
            n.to_string(),
            (2 * n + 1).to_string(),
            value.to_string(),
            format!("{:.3e}", value.to_f64()),
            format!("{:.3e}", 2f64.powi(-(n as i32))),
        ]);
    }
    print!("{t}");
    println!("\n(values ≤ 2^-n yet provably nonzero: the gap property fails — Theorem 5.1)");
}

fn e6() {
    let db = figure_1_database();
    let q1 = queries::q1();
    let exact = shapley_report(&db, &q1, &opts()).expect("hierarchical");
    let mut t = Table::new(&[
        "ε",
        "δ",
        "samples",
        "max additive error (8 facts)",
        "within ε",
    ]);
    for (eps, delta) in [(0.2, 0.05), (0.1, 0.05), (0.05, 0.01), (0.02, 0.01)] {
        let samples = required_samples(eps, delta).expect("ε, δ in range");
        let mut max_err = 0f64;
        for entry in &exact.entries {
            let est = shapley_sampled(&db, AnyQuery::Cq(&q1), entry.fact, samples, 31337, 0)
                .expect("endogenous");
            max_err = max_err.max((est.estimate - entry.value.to_f64()).abs());
        }
        t.row(&[
            eps.to_string(),
            delta.to_string(),
            samples.to_string(),
            format!("{max_err:.5}"),
            (max_err <= eps).to_string(),
        ]);
    }
    print!("{t}");

    // Multiplicative failure on the gap family.
    println!("\nmultiplicative failure on the Theorem 5.1 family (ε = 0.05, δ = 0.01):");
    let samples = required_samples(0.05, 0.01).expect("ε, δ in range");
    let mut t2 = Table::new(&["n", "true value", "estimate", "relative error"]);
    for n in [2usize, 6, 10, 14] {
        let (q, inst) = section_5_1_example(n);
        let est = shapley_sampled(&inst.db, AnyQuery::Cq(&q), inst.f0, samples, 7, 0)
            .expect("endogenous");
        let truth = inst.expected_abs.to_f64();
        let rel = if est.estimate == 0.0 {
            "∞ (estimate is 0)".to_string()
        } else {
            format!("{:.2}", (est.estimate - truth).abs() / truth)
        };
        t2.row(&[
            n.to_string(),
            format!("{truth:.3e}"),
            format!("{:.3e}", est.estimate),
            rel,
        ]);
    }
    print!("{t2}");
}

fn e7() {
    let q = prop55::qrst_nr_query();
    println!("query: {q}\n");
    let mut t = Table::new(&["formula", "DPLL sat", "T(c) relevant", "agree"]);
    for seed in 0..8u64 {
        let f = formulas::random_224(4, 6, seed);
        let (db, fact) = prop55::build_relevance_instance(&f).expect("in shape");
        let (pos, _) = brute_force_relevance(&db, AnyQuery::Cq(&q), fact, 24).expect("small");
        let sat = f.is_satisfiable();
        t.row(&[
            f.to_string(),
            sat.to_string(),
            pos.to_string(),
            if sat == pos { "✓" } else { "✗" }.to_string(),
        ]);
    }
    print!("{t}");
    println!("\nLemma D.1 chain (3-colorability → (3+,2−)-SAT → (2+,2−,4+−)-SAT):");
    let mut t2 = Table::new(&["graph", "3-colorable", "reduced formula sat", "agree"]);
    for (name, g) in [
        (
            "triangle",
            cqshap_gadgets::Graph::new(3, vec![(0, 1), (1, 2), (0, 2)]),
        ),
        (
            "K4",
            cqshap_gadgets::Graph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ),
        (
            "C5",
            cqshap_gadgets::Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
        ),
        ("random(5, .7)", graphs::random_graph(5, 0.7, 3)),
    ] {
        let sat = to_224(&coloring_to_3p2n(&g)).is_satisfiable();
        let col = g.is_three_colorable();
        t2.row(&[
            name.to_string(),
            col.to_string(),
            sat.to_string(),
            if sat == col { "✓" } else { "✗" }.to_string(),
        ]);
    }
    print!("{t2}");
}

fn e8() {
    let q1 = queries::q1();
    let mut t = Table::new(&[
        "students",
        "|Dn|",
        "IsPos+IsNeg (all facts)",
        "brute force (all facts)",
        "agreements",
    ]);
    for students in [4usize, 8, 12, 16, 32, 64] {
        let db = UniversityConfig {
            students,
            courses: (students / 2).max(2),
            declare_exogenous: false,
            seed: 13,
            ..Default::default()
        }
        .generate();
        let t0 = Instant::now();
        let mut fast: Vec<(bool, bool)> = Vec::new();
        for &f in db.endo_facts() {
            fast.push((
                is_positively_relevant(&db, AnyQuery::Cq(&q1), f).expect("consistent"),
                is_negatively_relevant(&db, AnyQuery::Cq(&q1), f).expect("consistent"),
            ));
        }
        let fast_time = t0.elapsed();
        let (brute_cell, agree_cell) = if db.endo_count() <= 16 {
            let t1 = Instant::now();
            let mut agree = 0usize;
            for (i, &f) in db.endo_facts().iter().enumerate() {
                let bf = brute_force_relevance(&db, AnyQuery::Cq(&q1), f, 24).expect("small");
                if bf == fast[i] {
                    agree += 1;
                }
            }
            (ms(t1.elapsed()), format!("{agree}/{}", db.endo_count()))
        } else {
            ("skipped".to_string(), "—".to_string())
        };
        t.row(&[
            students.to_string(),
            db.endo_count().to_string(),
            ms(fast_time),
            brute_cell,
            agree_cell,
        ]);
    }
    print!("{t}");
}

fn e9() {
    let u = prop58::qsat_query();
    println!("union:");
    for d in u.disjuncts() {
        println!("  {d}");
    }
    println!();
    let mut t = Table::new(&["3CNF formula", "DPLL sat", "R(0) relevant", "agree"]);
    let check = |t: &mut Table, f3: &cqshap_gadgets::CnfFormula| {
        let (db, r0) = prop58::build_relevance_instance(f3).expect("3CNF");
        let (pos, _) = brute_force_relevance(&db, AnyQuery::Union(&u), r0, 24).expect("small");
        let sat = f3.is_satisfiable();
        t.row(&[
            f3.to_string(),
            sat.to_string(),
            pos.to_string(),
            if sat == pos { "✓" } else { "✗" }.to_string(),
        ]);
    };
    for seed in 0..5u64 {
        check(&mut t, &formulas::random_3sat(3, 8, seed));
    }
    // Random short formulas over 3 variables are almost always
    // satisfiable; pin the UNSAT side with all eight sign patterns.
    use cqshap_gadgets::{Clause, CnfFormula, Literal};
    let unsat = CnfFormula::new(
        3,
        (0u8..8)
            .map(|mask| {
                Clause(
                    (0..3)
                        .map(|i| Literal {
                            var: i,
                            positive: mask & (1 << i) != 0,
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    check(&mut t, &unsat);
    print!("{t}");
}

fn e10() {
    println!("query: {}\n", reduction_rst::qrsnt_query());
    let mut t = Table::new(&[
        "bipartite graph",
        "|IS| direct",
        "|IS| via Shapley oracle",
        "match",
        "time",
    ]);
    for (l, r, p, seed) in [
        (2usize, 2usize, 0.5f64, 1u64),
        (3, 2, 0.4, 2),
        (2, 3, 0.6, 3),
        (3, 3, 0.5, 4),
    ] {
        let g = graphs::random_bipartite(l, r, p, seed);
        let truth = g.independent_set_count();
        let t0 = Instant::now();
        let (rec, _) = reduction_rst::recover_is_count(&g, &reduction_rst::brute_force_oracle)
            .expect("reduction");
        let dt = t0.elapsed();
        t.row(&[
            format!("{l}x{r}, {} edges", g.edges().len()),
            truth.to_string(),
            rec.to_string(),
            if truth == rec { "✓" } else { "✗" }.to_string(),
            ms(dt),
        ]);
    }
    print!("{t}");
}

fn e11() {
    let oracle = BruteForceCounter::new();
    let mut base = Database::new();
    base.add_relation("S", 2).expect("fresh");
    base.add_endo("R", &["a0"]).expect("fresh");
    base.add_endo("R", &["a1"]).expect("fresh");
    base.add_endo("T", &["b0"]).expect("fresh");
    base.add_endo("T", &["b1"]).expect("fresh");
    for (a, b) in [("a0", "b0"), ("a0", "b1"), ("a1", "b1")] {
        base.add_exo("S", &[a, b]).expect("fresh");
    }
    let targets = [
        "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')",
        "q() :- Farmer(m), Export(m, p, c), !Grows(c, p)",
        "q() :- A(x), B(x, y, z), C(y), D(z, w)",
        "q() :- !A(x), P(x), B(x, y), !C(y), Q(y)",
        "q() :- A(x), !B(x, y), C(y)",
    ];
    let mut t = Table::new(&["target query", "base", "facts checked", "Shapley preserved"]);
    for text in targets {
        let q = parse_cq(text).expect("parses");
        let emb = embed::embed_triplet(&q, &base).expect("embeds");
        let mut ok = true;
        for (&bf, &ef) in &emb.fact_map {
            let a = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).expect("ok");
            let b = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).expect("ok");
            ok &= a == b;
        }
        t.row(&[
            text.to_string(),
            emb.base.name().to_string(),
            emb.fact_map.len().to_string(),
            if ok { "✓" } else { "✗" }.to_string(),
        ]);
    }
    print!("{t}");

    // Path version (Theorem 4.3 hardness side).
    let q = queries::section_4_1_hard();
    let exo: HashSet<String> = ["S", "P"].iter().map(|s| s.to_string()).collect();
    let emb = embed::embed_path(&q, &exo, &base, 1_000_000).expect("embeds");
    let mut ok = true;
    for (&bf, &ef) in &emb.fact_map {
        let a = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).expect("ok");
        let b = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).expect("ok");
        ok &= a == b;
    }
    println!(
        "\npath embedding into {q} (X = {{S,P}}): base {}, {} facts, preserved: {}",
        emb.base.name(),
        emb.fact_map.len(),
        if ok { "✓" } else { "✗" }
    );
}

fn e12() {
    let q = queries::citations();
    println!("query: {q} with deterministic Pub, Citations\n");
    let mut t = Table::new(&[
        "authors",
        "Pr (lifted+rewrite)",
        "Pr (enumeration)",
        "time (lifted)",
    ]);
    for authors in [6usize, 10, 14] {
        let adb = AcademicConfig {
            authors,
            seed: 77,
            ..Default::default()
        }
        .generate();
        let pdb = ProbDatabase::new(adb, 0.35);
        let t0 = Instant::now();
        let fast = pdb
            .query_probability_with_rewriting(&q, 10_000_000)
            .expect("rewritable");
        let dt = t0.elapsed();
        let slow = pdb.query_probability_enumerated(&q, 20).expect("small");
        assert!((fast - slow).abs() < 1e-9);
        t.row(&[
            authors.to_string(),
            format!("{fast:.6}"),
            format!("{slow:.6}"),
            ms(dt),
        ]);
    }
    print!("{t}");
    let mut t2 = Table::new(&["authors", "Pr (lifted+rewrite)", "time"]);
    for authors in [50usize, 100, 200] {
        let adb = AcademicConfig {
            authors,
            cited_fraction: 0.2,
            seed: 77,
            ..Default::default()
        }
        .generate();
        let pdb = ProbDatabase::new(adb, 0.05);
        let t0 = Instant::now();
        let fast = pdb
            .query_probability_with_rewriting(&q, 10_000_000)
            .expect("rewritable");
        t2.row(&[authors.to_string(), format!("{fast:.6}"), ms(t0.elapsed())]);
    }
    println!("\nscaling beyond enumeration reach (2^|Dn| worlds):");
    print!("{t2}");
}

fn e13() {
    let db = ExportsConfig {
        farmers: 4,
        products: 3,
        countries: 3,
        exports: 7,
        seed: 11,
        ..Default::default()
    }
    .generate();
    let q = cqshap_workloads::exports::exports_count_query();
    let agg = AggregateFunction::Count;
    let full = aggregate_value(&db, &World::full(&db), &q, &agg).expect("evaluates");
    let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).expect("evaluates");
    println!("Count{{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}}: D → {full}, Dx → {empty}\n");
    let mut t = Table::new(&["fact", "aggregate Shapley value", "sign as predicted"]);
    let mut total = BigRational::zero();
    for &f in db.endo_facts() {
        let v = aggregate_shapley(&db, &q, &agg, f, &opts()).expect("small");
        let rel = db.schema().name(db.fact(f).rel).to_string();
        let sign_ok = match rel.as_str() {
            "Farmer" => !v.is_negative(),
            "Grows" => !v.is_positive(),
            _ => false,
        };
        total += &v;
        t.row(&[
            db.render_fact(f),
            v.to_string(),
            if sign_ok { "✓" } else { "✗" }.to_string(),
        ]);
    }
    print!("{t}");
    println!(
        "\nefficiency: Σ = {total} equals count(D) − count(Dx) = {} → {}",
        &full - &empty,
        if total == &full - &empty {
            "holds"
        } else {
            "VIOLATED"
        }
    );
}

fn e14() {
    let db = Database::parse("endo R(1, 2)\nendo R(2, 1)\n").expect("parses");
    let q = queries::example_5_3();
    println!("query: {q} over {{R(1,2), R(2,1)}} (both endogenous)\n");
    let mut t = Table::new(&["fact", "pos. relevant", "neg. relevant", "Shapley"]);
    for &f in db.endo_facts() {
        let (pos, neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).expect("small");
        let v = shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).expect("small");
        t.row(&[
            db.render_fact(f),
            pos.to_string(),
            neg.to_string(),
            v.to_string(),
        ]);
        assert!(pos && neg && v.is_zero());
    }
    print!("{t}");
    println!("\n(relevance does not imply a nonzero value once a relation is polarity-mixed)");
}
