//! Minimal Markdown table rendering for the experiment harness.

use std::fmt::Write as _;

/// A Markdown table with a fixed header.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width disagrees with the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of string-likes.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned Markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, " {}{} |", c, " ".repeat(pad));
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["fact", "value"]);
        t.row_strs(&["TA(Adam)", "-3/28"]);
        t.row_strs(&["Reg(Caroline, DB)", "13/42"]);
        let s = t.render();
        assert!(s.starts_with("| fact"));
        assert_eq!(s.lines().count(), 4);
        for line in s.lines() {
            assert!(line.starts_with('|') && line.ends_with('|'));
        }
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row_strs(&["only one"]);
    }
}
