//! Experiment harness and benchmarks for the `cqshap` reproduction.
//!
//! The `harness` binary regenerates every experiment table of
//! `DESIGN.md` / `EXPERIMENTS.md`; the `benches/` directory holds the
//! matching Criterion timing benchmarks.

pub mod table;

pub use table::Table;
