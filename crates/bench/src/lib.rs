//! Experiment harness and benchmarks for the `cqshap` reproduction.
//!
//! The `harness` binary regenerates every experiment table of
//! `DESIGN.md` / `EXPERIMENTS.md`; the `benches/` directory holds the
//! matching Criterion timing benchmarks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod table;

pub use table::Table;
