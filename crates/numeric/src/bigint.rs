//! Signed arbitrary-precision integers: a sign wrapped around [`BigUint`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::biguint::{BigUint, ParseBigUintError};

/// The sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// Flips the sign (`Zero` is its own negation).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    /// Sign of a product.
    pub fn product(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariant: `sign == Sign::Zero` iff `magnitude.is_zero()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            magnitude: BigUint::one(),
        }
    }

    /// Builds from sign and magnitude (normalizing zero).
    pub fn from_sign_magnitude(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, magnitude }
        }
    }

    /// Builds a non-negative value from a [`BigUint`].
    pub fn from_biguint(magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Plus,
                magnitude,
            }
        }
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Plus,
                magnitude: BigUint::from_u64(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Minus,
                magnitude: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        BigInt::from_biguint(BigUint::from_u64(v))
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|` as an unsigned integer.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.magnitude
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Is this strictly positive?
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_biguint(self.magnitude.clone())
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.magnitude.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(mag).ok(),
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i128).checked_neg()? as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Minus => -m,
            _ => m,
        }
    }

    fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_magnitude(a, &self.magnitude + &other.magnitude),
            _ => match self.magnitude.cmp(&other.magnitude) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_magnitude(self.sign, &self.magnitude - &other.magnitude)
                }
                Ordering::Less => {
                    BigInt::from_sign_magnitude(other.sign, &other.magnitude - &self.magnitude)
                }
            },
        }
    }

    fn mul_ref(&self, other: &BigInt) -> BigInt {
        let sign = self.sign.product(other.sign);
        if sign == Sign::Zero {
            BigInt::zero()
        } else {
            BigInt {
                sign,
                magnitude: &self.magnitude * &other.magnitude,
            }
        }
    }

    /// The signed difference `a - b` of two unsigned values, computed
    /// by reference — neither operand is cloned, only the (smaller)
    /// result magnitude is allocated.
    pub fn signed_diff(a: &BigUint, b: &BigUint) -> BigInt {
        match a.cmp(b) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => {
                // cqshap-lint: allow(no-panic) -- the comparison arm proves a > b, so the subtraction cannot underflow
                BigInt::from_sign_magnitude(Sign::Plus, a.checked_sub(b).expect("a > b"))
            }
            Ordering::Less => {
                // cqshap-lint: allow(no-panic) -- the comparison arm proves b > a, so the subtraction cannot underflow
                BigInt::from_sign_magnitude(Sign::Minus, b.checked_sub(a).expect("b > a"))
            }
        }
    }

    /// Truncated division: `(q, r)` with `self = q·d + r`, `|r| < |d|`,
    /// and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        assert!(!d.is_zero(), "division by zero");
        let (q_mag, r_mag) = self.magnitude.div_rem(&d.magnitude);
        let q_sign = self.sign.product(d.sign);
        let q = if q_mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_magnitude(q_sign, q_mag)
        };
        let r = if r_mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_magnitude(self.sign, r_mag)
        };
        (q, r)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Minus, Sign::Minus) => other.magnitude.cmp(&self.magnitude),
            (Sign::Minus, _) => Ordering::Less,
            (Sign::Zero, Sign::Minus) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.magnitude.cmp(&other.magnitude),
            (Sign::Plus, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.negate(),
            magnitude: self.magnitude.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.negate(),
            magnitude: self.magnitude,
        }
    }
}

macro_rules! forward_int_binop {
    ($trait:ident, $method:ident, $impl_expr:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $impl_expr;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_int_binop!(Add, add, |a, b| a.add_ref(b));
forward_int_binop!(Sub, sub, |a, b| a.add_ref(&-b));
forward_int_binop!(Mul, mul, |a, b| a.mul_ref(b));

/// `&BigInt + &BigUint` without converting (or cloning) the unsigned side.
impl Add<&BigUint> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigUint) -> BigInt {
        match self.sign {
            Sign::Zero => BigInt::from_biguint(rhs.clone()),
            Sign::Plus => BigInt::from_sign_magnitude(Sign::Plus, &self.magnitude + rhs),
            Sign::Minus => BigInt::signed_diff(rhs, &self.magnitude),
        }
    }
}

/// `&BigInt - &BigUint` without converting (or cloning) the unsigned side.
impl Sub<&BigUint> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigUint) -> BigInt {
        match self.sign {
            Sign::Zero => -BigInt::from_biguint(rhs.clone()),
            Sign::Minus => BigInt::from_sign_magnitude(Sign::Minus, &self.magnitude + rhs),
            Sign::Plus => BigInt::signed_diff(&self.magnitude, rhs),
        }
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(&-rhs);
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(v)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag: BigUint = rest.parse()?;
            Ok(BigInt::from_sign_magnitude(
                if mag.is_zero() {
                    Sign::Zero
                } else {
                    Sign::Minus
                },
                mag,
            ))
        } else {
            let stripped = s.strip_prefix('+').unwrap_or(s);
            Ok(BigInt::from_biguint(stripped.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn sign_invariant() {
        assert!(int(0).is_zero());
        assert_eq!(int(0), -int(0));
        assert!(int(-5).is_negative());
        assert!(int(5).is_positive());
    }

    #[test]
    fn arithmetic_matches_i64() {
        for a in [-7i64, -1, 0, 3, 100] {
            for b in [-13i64, -2, 0, 5, 42] {
                assert_eq!(int(a) + int(b), int(a + b), "{a}+{b}");
                assert_eq!(int(a) - int(b), int(a - b), "{a}-{b}");
                assert_eq!(int(a) * int(b), int(a * b), "{a}*{b}");
                if b != 0 {
                    let (q, r) = int(a).div_rem(&int(b));
                    assert_eq!(q, int(a / b), "{a}/{b}");
                    assert_eq!(r, int(a % b), "{a}%{b}");
                }
            }
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-2));
        assert!(int(-2) < int(0));
        assert!(int(0) < int(7));
        assert!(int(3) < int(7));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!("-42".parse::<BigInt>().unwrap(), int(-42));
        assert_eq!("+42".parse::<BigInt>().unwrap(), int(42));
        assert_eq!("-0".parse::<BigInt>().unwrap(), int(0));
        assert!("--1".parse::<BigInt>().is_err());
    }

    #[test]
    fn signed_diff_matches_subtraction() {
        for a in [0u64, 1, 5, 1000] {
            for b in [0u64, 1, 7, 999] {
                assert_eq!(
                    BigInt::signed_diff(&BigUint::from_u64(a), &BigUint::from_u64(b)),
                    int(a as i64 - b as i64),
                    "{a} - {b}"
                );
            }
        }
        let big = BigUint::from_u128(1u128 << 100);
        assert_eq!(BigInt::signed_diff(&big, &big), BigInt::zero());
    }

    #[test]
    fn mixed_biguint_ops() {
        let u = BigUint::from_u64(10);
        assert_eq!(&int(3) + &u, int(13));
        assert_eq!(&int(-3) + &u, int(7));
        assert_eq!(&int(-30) + &u, int(-20));
        assert_eq!(&int(0) + &u, int(10));
        assert_eq!(&int(3) - &u, int(-7));
        assert_eq!(&int(-3) - &u, int(-13));
        assert_eq!(&int(30) - &u, int(20));
        assert_eq!(&int(0) - &u, int(-10));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(int(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(int(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = BigInt::from_biguint(BigUint::from_u128(1u128 << 80));
        assert_eq!(too_big.to_i64(), None);
    }
}
