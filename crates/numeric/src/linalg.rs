//! Exact linear algebra over the rationals.
//!
//! The hardness proof of Lemma B.3 recovers the independent-set counts
//! `|S(g,k)|` of a bipartite graph from `n+1` Shapley values by solving a
//! linear system whose coefficients are products of factorials. The system
//! must be solved *exactly* — the unknowns are integers recovered from
//! rationals — so we implement fraction-free-enough Gaussian elimination
//! with full pivoting over [`BigRational`].
// cqshap-lint: allow-file(no-panic-index) -- elimination indexes within the matrix dimensions it validated

use crate::rational::BigRational;

/// A dense matrix of exact rationals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RationalMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BigRational>,
}

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (no unique solution).
    Singular,
    /// Dimension mismatch between operands.
    DimensionMismatch {
        /// The dimension the operation required.
        expected: usize,
        /// The dimension it was given.
        got: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl RationalMatrix {
    /// Builds a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RationalMatrix {
            rows,
            cols,
            data: vec![BigRational::zero(); rows * cols],
        }
    }

    /// Builds from a row-major closure.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> BigRational,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        RationalMatrix { rows, cols, data }
    }

    /// Builds from rows of rationals.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: Vec<Vec<BigRational>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == ncols), "ragged rows");
        RationalMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> &BigRational {
        &self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut BigRational {
        &mut self.data[r * self.cols + c]
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[BigRational]) -> Result<Vec<BigRational>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                got: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                (0..self.cols).fold(BigRational::zero(), |acc, c| acc + self.get(r, c) * &v[c])
            })
            .collect())
    }

    /// Solves `A·x = b` exactly by Gaussian elimination with partial
    /// pivoting (pivot = first nonzero in column, which is exact-safe).
    ///
    /// Returns [`LinalgError::Singular`] when `A` is not invertible.
    #[allow(clippy::needless_range_loop)] // pivoting bookkeeping is index-driven
    pub fn solve(&self, b: &[BigRational]) -> Result<Vec<BigRational>, LinalgError> {
        let n = self.rows;
        if self.cols != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                got: self.cols,
            });
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Augmented working copy.
        let mut a = self.clone();
        let mut rhs = b.to_vec();
        let mut row_of_col = vec![usize::MAX; n];
        let mut used = vec![false; n];
        for col in 0..n {
            let pivot_row = (0..n).find(|&r| !used[r] && !a.get(r, col).is_zero());
            let Some(p) = pivot_row else {
                return Err(LinalgError::Singular);
            };
            used[p] = true;
            row_of_col[col] = p;
            let inv = a.get(p, col).reciprocal();
            for c in col..n {
                let v = a.get(p, c) * &inv;
                *a.get_mut(p, c) = v;
            }
            rhs[p] = &rhs[p] * &inv;
            for r in 0..n {
                if r == p || a.get(r, col).is_zero() {
                    continue;
                }
                let factor = a.get(r, col).clone();
                for c in col..n {
                    let v = a.get(r, c) - &factor * a.get(p, c);
                    *a.get_mut(r, c) = v;
                }
                rhs[r] = &rhs[r] - &factor * &rhs[p];
            }
        }
        Ok((0..n).map(|col| rhs[row_of_col[col]].clone()).collect())
    }

    /// The determinant, via triangularization.
    pub fn determinant(&self) -> Result<BigRational, LinalgError> {
        let n = self.rows;
        if self.cols != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                got: self.cols,
            });
        }
        let mut a = self.clone();
        let mut det = BigRational::one();
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero());
            let Some(p) = pivot else {
                return Ok(BigRational::zero());
            };
            if p != col {
                for c in 0..n {
                    let tmp = a.get(p, c).clone();
                    *a.get_mut(p, c) = a.get(col, c).clone();
                    *a.get_mut(col, c) = tmp;
                }
                det = -det;
            }
            let pv = a.get(col, col).clone();
            det = det * &pv;
            let inv = pv.reciprocal();
            for r in col + 1..n {
                if a.get(r, col).is_zero() {
                    continue;
                }
                let factor = a.get(r, col) * &inv;
                for c in col..n {
                    let v = a.get(r, c) - &factor * a.get(col, c);
                    *a.get_mut(r, c) = v;
                }
            }
        }
        Ok(det)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    #[test]
    fn solve_2x2() {
        // x + 2y = 5 ; 3x - y = 1  →  x = 1, y = 2
        let a = RationalMatrix::from_rows(vec![
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(3, 1), rat(-1, 1)],
        ]);
        let x = a.solve(&[rat(5, 1), rat(1, 1)]).unwrap();
        assert_eq!(x, vec![rat(1, 1), rat(2, 1)]);
    }

    #[test]
    fn solve_identity() {
        let n = 5;
        let a = RationalMatrix::from_fn(n, n, |r, c| if r == c { rat(1, 1) } else { rat(0, 1) });
        let b: Vec<_> = (0..n as i64).map(|i| rat(i, 7)).collect();
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn singular_detected() {
        let a =
            RationalMatrix::from_rows(vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(4, 1)]]);
        assert_eq!(a.solve(&[rat(1, 1), rat(2, 1)]), Err(LinalgError::Singular));
        assert_eq!(a.determinant().unwrap(), BigRational::zero());
    }

    #[test]
    fn solve_round_trip_random_like() {
        // A fixed "random-looking" invertible matrix with fractions.
        let a = RationalMatrix::from_rows(vec![
            vec![rat(1, 2), rat(3, 1), rat(-1, 3)],
            vec![rat(0, 1), rat(1, 5), rat(7, 2)],
            vec![rat(4, 1), rat(-2, 7), rat(1, 1)],
        ]);
        let x_true = vec![rat(3, 11), rat(-5, 13), rat(17, 4)];
        let b = a.mul_vec(&x_true).unwrap();
        assert_eq!(a.solve(&b).unwrap(), x_true);
    }

    #[test]
    fn lemma_b3_style_factorial_matrix_is_invertible() {
        // The coefficient matrix of Lemma B.3 for N=4:
        //   M[r][k] = k! · (N - k + r + 1)!   for r,k in 0..=N
        // (row r comes from the instance D^{r+1}). The proof asserts it is
        // nonsingular; verify exactly.
        let n = 4usize;
        let fact = |m: usize| crate::combinatorics::factorial(m);
        let a = RationalMatrix::from_fn(n + 1, n + 1, |r, k| {
            BigRational::from(fact(k) * fact(n - k + r + 1))
        });
        assert!(a.determinant().unwrap() != BigRational::zero());
    }

    #[test]
    fn dimension_mismatch() {
        let a = RationalMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[rat(0, 1), rat(0, 1)]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.mul_vec(&[rat(1, 1)]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
