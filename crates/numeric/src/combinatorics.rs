//! Exact factorials and binomial coefficients.
//!
//! The Shapley formula weights each coalition size `k` by
//! `k!(m-1-k)!/m!`, and the counting algorithms of Lemma 3.2 combine
//! binomial coefficients of free endogenous facts, so these show up in
//! every inner loop of the exact pipeline. [`FactorialTable`] amortizes
//! the factorials for a whole computation.
// cqshap-lint: allow-file(no-panic-index) -- Pascal rows are grown before they are indexed

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use crate::rational::BigRational;

/// Computes `n!` exactly.
pub fn factorial(n: usize) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=n as u64 {
        acc.mul_u64_assign(i);
    }
    acc
}

/// Computes the binomial coefficient `C(n, k)` exactly.
///
/// Uses the multiplicative formula with exact intermediate divisions, so
/// the working values never exceed the result by more than one factor.
pub fn binomial(n: usize, k: usize) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigUint::one();
    for i in 1..=k {
        acc.mul_u64_assign((n - k + i) as u64);
        let rem = acc.div_rem_u64_assign(i as u64);
        debug_assert_eq!(rem, 0, "binomial partial products divide exactly");
    }
    acc
}

/// A cache of whole Pascal rows `[C(n, 0), …, C(n, n)]`, shared across
/// threads behind `Arc`s.
///
/// The counting engines consume binomial rows constantly — every free
/// or junk recount convolves against one — and rebuilding a row costs
/// `O(n)` exact divisions per *call*. The cache builds each row once
/// (incrementally, `C(n, k+1) = C(n, k)·(n−k)/(k+1)`) and hands out
/// shared references.
#[derive(Debug, Default)]
pub struct BinomialCache {
    rows: Mutex<HashMap<usize, Arc<Vec<BigUint>>>>,
}

impl BinomialCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The row `[C(n, 0), …, C(n, n)]`, computed on first use.
    pub fn row(&self, n: usize) -> Arc<Vec<BigUint>> {
        let mut rows = self
            .rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rows.entry(n)
            .or_insert_with(|| {
                let mut row = Vec::with_capacity(n + 1);
                row.push(BigUint::one());
                for k in 0..n {
                    let mut next = row[k].mul_u64((n - k) as u64);
                    let rem = next.div_rem_u64_assign((k + 1) as u64);
                    debug_assert_eq!(rem, 0, "Pascal row entries divide exactly");
                    row.push(next);
                }
                Arc::new(row)
            })
            .clone()
    }
}

/// The primes `≤ n`, by Eratosthenes.
// cqshap-lint: allow(cancellation-reachability) -- bounded: sieve over 2..=n, n is the small factorial argument
fn primes_up_to(n: usize) -> Vec<u64> {
    if n < 2 {
        return Vec::new();
    }
    let mut composite = vec![false; n + 1];
    let mut out = Vec::new();
    for p in 2..=n {
        if composite[p] {
            continue;
        }
        out.push(p as u64);
        let mut q = p * p;
        while q <= n {
            composite[q] = true;
            q += p;
        }
    }
    out
}

/// Legendre's formula: `v_p(n!) = Σ_i ⌊n/pⁱ⌋`.
// cqshap-lint: allow(cancellation-reachability) -- bounded: at most log_p(n) divisions
fn factorial_valuation(n: usize, p: u64) -> usize {
    let mut e = 0usize;
    let mut q = n as u64 / p;
    while q > 0 {
        e += q as usize;
        q /= p;
    }
    e
}

/// Divides out up to `max` factors of `p` from `v`, returning how many
/// were removed. Factors are stripped in the largest `p`-power chunks
/// that fit a `u64`, so high valuations cost a handful of short
/// divisions instead of one per factor.
fn strip_prime(v: &mut BigUint, p: u64, max: usize) -> usize {
    let mut chunk = p;
    let mut chunk_exp = 1usize;
    while chunk_exp < max {
        match chunk.checked_mul(p) {
            Some(next) if chunk_exp < max => {
                chunk = next;
                chunk_exp += 1;
            }
            _ => break,
        }
    }
    let mut count = 0usize;
    while count + chunk_exp <= max && v.rem_u64(chunk) == 0 {
        v.div_rem_u64_assign(chunk);
        count += chunk_exp;
    }
    while count < max && v.rem_u64(p) == 0 {
        v.div_rem_u64_assign(p);
        count += 1;
    }
    count
}

/// A cache of `0! ..= n!` plus derived Shapley permutation weights.
#[derive(Debug, Clone)]
pub struct FactorialTable {
    facts: Vec<BigUint>,
    primes: Vec<u64>,
}

impl FactorialTable {
    /// Builds the table for factorials up to `n!` inclusive.
    pub fn new(n: usize) -> Self {
        let mut facts = Vec::with_capacity(n + 1);
        facts.push(BigUint::one());
        for i in 1..=n as u64 {
            // cqshap-lint: allow(no-panic) -- the table is seeded with 0! so last() is always Some
            let next = facts.last().expect("nonempty").mul_u64(i);
            facts.push(next);
        }
        FactorialTable {
            facts,
            primes: primes_up_to(n),
        }
    }

    /// Reduces `num / m!` to lowest terms *without* a general gcd:
    /// `m!`'s prime factorization is known in closed form (Legendre),
    /// so the common factor is found by stripping exactly those primes
    /// from `num` — chunked `u64` powers, a few short divisions per
    /// prime — instead of running a big-number gcd against `m!`. This
    /// is the per-fact normalization of every batched Shapley value, so
    /// its cost is the report's tail at large `m`.
    ///
    /// # Panics
    /// Panics if `m` exceeds the table size.
    pub fn reduce_over_factorial(&self, num: BigInt, m: usize) -> BigRational {
        assert!(m <= self.max_n(), "factorial {m}! beyond the table");
        if num.is_zero() {
            return BigRational::zero();
        }
        let sign = num.sign();
        let mut mag = num.into_magnitude();
        let mut den = BigUint::one();
        for &p in &self.primes {
            if p > m as u64 {
                break;
            }
            let e = factorial_valuation(m, p);
            let stripped = strip_prime(&mut mag, p, e);
            let mut rest = e - stripped;
            while rest > 0 {
                let mut chunk = p;
                let mut q = 1usize;
                while q < rest {
                    match chunk.checked_mul(p) {
                        Some(next) => {
                            chunk = next;
                            q += 1;
                        }
                        None => break,
                    }
                }
                den.mul_u64_assign(chunk);
                rest -= q;
            }
        }
        BigRational::from_coprime_parts(BigInt::from_sign_magnitude(sign, mag), den)
    }

    /// Largest `n` with `n!` in the table.
    pub fn max_n(&self) -> usize {
        self.facts.len() - 1
    }

    /// Returns `n!`.
    ///
    /// # Panics
    /// Panics if `n` exceeds the table size.
    pub fn factorial(&self, n: usize) -> &BigUint {
        &self.facts[n]
    }

    /// Returns `C(n, k)` using the cached factorials.
    ///
    /// # Panics
    /// Panics if `n` exceeds the table size.
    pub fn binomial(&self, n: usize, k: usize) -> BigUint {
        if k > n {
            return BigUint::zero();
        }
        let num = self.factorial(n);
        let den = self.factorial(k) * self.factorial(n - k);
        let (q, r) = num.div_rem(&den);
        debug_assert!(r.is_zero());
        q
    }

    /// The numerator `k!·(m-1-k)!` of the Shapley permutation weight.
    ///
    /// Accumulating `Σ_k k!(m-1-k)!·diff_k` over the *common* denominator
    /// `m!` (one normalization at the end) avoids the per-term gcd that a
    /// rational-by-rational sum would pay on every coalition size.
    ///
    /// # Panics
    /// Panics if `k >= m` or `m - 1` exceeds the table size.
    pub fn shapley_weight_numerator(&self, m: usize, k: usize) -> BigUint {
        assert!(k < m, "coalition size {k} must be < number of players {m}");
        self.factorial(k) * self.factorial(m - 1 - k)
    }

    /// The Shapley permutation weight `k!·(m-1-k)!/m!`: the probability
    /// that a fixed player arrives exactly after a fixed `k`-subset of the
    /// remaining `m-1` players in a uniformly random permutation of `m`.
    ///
    /// # Panics
    /// Panics if `k >= m` or `m` exceeds the table size.
    pub fn shapley_weight(&self, m: usize, k: usize) -> BigRational {
        assert!(k < m, "coalition size {k} must be < number of players {m}");
        let num = self.factorial(k) * self.factorial(m - 1 - k);
        BigRational::from_parts(BigInt::from_biguint(num), self.factorial(m).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorials() {
        assert_eq!(factorial(0), BigUint::one());
        assert_eq!(factorial(1), BigUint::one());
        assert_eq!(factorial(5), BigUint::from_u64(120));
        assert_eq!(factorial(20), BigUint::from_u64(2_432_902_008_176_640_000));
    }

    #[test]
    fn large_factorial_digits() {
        // 100! has 158 decimal digits and starts with 9332621544.
        let f = factorial(100);
        let s = f.to_string();
        assert_eq!(s.len(), 158);
        assert!(s.starts_with("9332621544"));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), BigUint::one());
        assert_eq!(binomial(5, 2), BigUint::from_u64(10));
        assert_eq!(binomial(10, 10), BigUint::one());
        assert_eq!(binomial(10, 11), BigUint::zero());
        assert_eq!(binomial(52, 5), BigUint::from_u64(2_598_960));
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0..20usize {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                if n > 0 && k > 0 {
                    assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
                }
            }
        }
    }

    #[test]
    fn row_sums_are_powers_of_two() {
        for n in 0..30usize {
            let sum = (0..=n).fold(BigUint::zero(), |acc, k| acc + binomial(n, k));
            assert_eq!(sum, BigUint::one() << n);
        }
    }

    #[test]
    fn binomial_cache_rows_match_free_function() {
        let cache = BinomialCache::new();
        for n in [0usize, 1, 5, 40] {
            let row = cache.row(n);
            assert_eq!(row.len(), n + 1);
            for (k, c) in row.iter().enumerate() {
                assert_eq!(*c, binomial(n, k), "C({n}, {k})");
            }
            // Second lookup shares the same allocation.
            assert!(Arc::ptr_eq(&row, &cache.row(n)));
        }
    }

    #[test]
    fn table_matches_free_functions() {
        let t = FactorialTable::new(40);
        assert_eq!(t.max_n(), 40);
        for n in 0..=40usize {
            assert_eq!(*t.factorial(n), factorial(n));
        }
        for n in 0..=40usize {
            for k in 0..=n {
                assert_eq!(t.binomial(n, k), binomial(n, k));
            }
        }
    }

    #[test]
    fn shapley_weights_sum_over_subsets_to_one() {
        // Σ_k C(m-1, k) · k!(m-1-k)!/m! = Σ_k 1/m = 1... no: it equals 1
        // because each of the m positions of the player is equally likely.
        let t = FactorialTable::new(12);
        for m in 1..=12usize {
            let sum = (0..m).fold(BigRational::zero(), |acc, k| {
                acc + BigRational::from(t.binomial(m - 1, k)) * t.shapley_weight(m, k)
            });
            assert_eq!(sum, BigRational::one(), "m={m}");
        }
    }
}
