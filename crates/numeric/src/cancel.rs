//! Cooperative cancellation for long-running exact computation.
//!
//! The counting engines' worst cases are genuinely exponential (the
//! paper's point: negation makes exact Shapley `FP^{#P}`-hard for most
//! CQ¬s), so every expensive loop in the workspace — product trees,
//! NTT prime passes, world enumerations, per-fact report fan-outs —
//! periodically consults a shared [`CancelToken`]. The token combines
//! a sticky atomic flag, an optional wall-clock deadline, and an
//! optional work-unit cap ([`Budget`]); once any of them trips, every
//! holder of a clone observes cancellation at its next checkpoint.
//!
//! Cancellation is *cooperative*: cancelled kernels stop doing work and
//! return placeholder values of the right shape, and the owning engine
//! checks the token before trusting any result, converting a tripped
//! token into its own error type (the core crate's
//! `CoreError::DeadlineExceeded`). Tokens are cheap to clone (one `Arc`)
//! and sound to share across scoped worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Nanoseconds since the process-wide epoch (first use). Monotonic, and
/// comfortably outlives any session: `u64` nanoseconds cover ~584 years.
// The deadline module owns the one sanctioned wall-clock read.
#[allow(clippy::disallowed_methods)]
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An elapsed-time measurement anchored to the same process-wide
/// monotonic epoch as the deadline machinery. This is the sanctioned
/// way for library code to measure durations — the `no-wall-clock`
/// lint rule confines `Instant::now` to the deadline modules, so
/// callers that merely want an `elapsed` reading (the anytime sampler,
/// progress reporting) start a `Stopwatch` instead.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch { start_ns: now_ns() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(now_ns().saturating_sub(self.start_ns))
    }
}

/// Sentinel for "no deadline" / "no work cap".
const NONE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// Sticky: set by [`CancelToken::cancel`], a passed deadline, or an
    /// exhausted work cap; cleared only by [`CancelToken::rearm`].
    cancelled: AtomicBool,
    /// Absolute deadline in [`now_ns`] time ([`NONE`] = unbounded).
    deadline_ns: AtomicU64,
    /// When the current budget was armed, for elapsed-time reporting.
    armed_ns: AtomicU64,
    /// Work units charged since the last arm.
    work: AtomicU64,
    /// Work-unit cap ([`NONE`] = unbounded).
    work_cap: AtomicU64,
}

/// A shared cooperative cancellation token: sticky flag + optional
/// wall-clock deadline + optional work-unit cap. Clones share state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never trips on its own (it can still be
    /// [`CancelToken::cancel`]led explicitly).
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// A token armed with the given wall-clock and work-unit budgets.
    pub fn new(wall: Option<Duration>, work: Option<u64>) -> Self {
        let token = CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NONE),
                armed_ns: AtomicU64::new(0),
                work: AtomicU64::new(0),
                work_cap: AtomicU64::new(NONE),
            }),
        };
        token.rearm(wall, work);
        token
    }

    /// Re-arms the token with a fresh budget: clears the sticky flag,
    /// zeroes the work counter, and restarts the wall clock. Engines
    /// keep one token for their whole lifetime and re-arm it at every
    /// public entry point, so a deadline always measures *this* call.
    pub fn rearm(&self, wall: Option<Duration>, work: Option<u64>) {
        let now = now_ns();
        let deadline = match wall {
            Some(d) => now.saturating_add(d.as_nanos().min(u128::from(NONE - 1)) as u64),
            None => NONE,
        };
        self.inner.armed_ns.store(now, Ordering::Relaxed);
        self.inner.deadline_ns.store(deadline, Ordering::Relaxed);
        self.inner.work.store(0, Ordering::Relaxed);
        self.inner
            .work_cap
            .store(work.unwrap_or(NONE), Ordering::Relaxed);
        self.inner.cancelled.store(false, Ordering::Release);
    }

    /// Trips the token explicitly (sticky until the next
    /// [`CancelToken::rearm`]).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the token tripped? Checks the sticky flag first, then the
    /// wall-clock deadline (tripping the flag on expiry so subsequent
    /// checks are flag-only).
    pub fn should_stop(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != NONE && now_ns() >= deadline {
            self.cancel();
            return true;
        }
        false
    }

    /// Charges `units` of work against the budget and reports whether
    /// the computation should stop. Called at group/convolution
    /// granularity — each charge covers a meaningful chunk of work, so
    /// the `Instant` read in the deadline check stays negligible.
    pub fn charge(&self, units: u64) -> bool {
        let done = self.inner.work.fetch_add(units, Ordering::Relaxed) + units;
        if done > self.inner.work_cap.load(Ordering::Relaxed) {
            self.cancel();
            return true;
        }
        self.should_stop()
    }

    /// Wall-clock time since the last [`CancelToken::rearm`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(now_ns().saturating_sub(self.inner.armed_ns.load(Ordering::Relaxed)))
    }

    /// Work units charged since the last [`CancelToken::rearm`].
    pub fn work_done(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Is this token budget-free (no deadline, no cap, not tripped)?
    /// Hot loops may skip checkpoint bookkeeping entirely when true.
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline_ns.load(Ordering::Relaxed) == NONE
            && self.inner.work_cap.load(Ordering::Relaxed) == NONE
            && !self.inner.cancelled.load(Ordering::Acquire)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A caller-supplied resource budget: optional wall-clock deadline plus
/// optional work-unit cap. `Copy`, so it rides along inside options
/// structs; [`Budget::token`] / [`CancelToken::rearm`] turn it into the
/// shared token the kernels actually poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock budget per top-level call (`None` = unbounded).
    pub wall: Option<Duration>,
    /// Work-unit budget per top-level call (`None` = unbounded). Units
    /// are engine-defined (recursion nodes, worlds, convolutions) —
    /// a deterministic cap for tests and fairness, not a time proxy.
    pub work: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        wall: None,
        work: None,
    };

    /// A wall-clock-only budget of `ms` milliseconds.
    pub fn wall_ms(ms: u64) -> Budget {
        Budget {
            wall: Some(Duration::from_millis(ms)),
            work: None,
        }
    }

    /// A work-unit-only budget.
    pub fn work_units(units: u64) -> Budget {
        Budget {
            wall: None,
            work: Some(units),
        }
    }

    /// Is this budget unbounded in both dimensions?
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.work.is_none()
    }

    /// A fresh token armed with this budget.
    pub fn token(&self) -> CancelToken {
        CancelToken::new(self.wall, self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_trips() {
        let t = CancelToken::unlimited();
        assert!(!t.should_stop());
        assert!(!t.charge(1 << 40));
        assert!(t.is_unlimited());
    }

    #[test]
    fn explicit_cancel_is_sticky_until_rearm() {
        let t = CancelToken::unlimited();
        t.cancel();
        assert!(t.should_stop());
        assert!(t.should_stop());
        t.rearm(None, None);
        assert!(!t.should_stop());
    }

    #[test]
    fn work_cap_trips_after_budget() {
        let t = Budget::work_units(10).token();
        assert!(!t.charge(4));
        assert!(!t.charge(4));
        assert!(t.charge(4)); // 12 > 10
        assert!(t.should_stop());
        assert_eq!(t.work_done(), 12);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = Budget {
            wall: Some(Duration::ZERO),
            work: None,
        }
        .token();
        assert!(t.should_stop());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::unlimited();
        let u = t.clone();
        t.cancel();
        assert!(u.should_stop());
        u.rearm(None, Some(5));
        assert!(!t.should_stop());
        assert!(t.charge(6));
        assert!(u.should_stop());
    }
}
