//! Fast polynomial arithmetic over [`BigUint`] coefficient vectors —
//! the convolution subsystem behind the counting engines.
//!
//! Every hierarchical Shapley computation reduces to products of
//! *count polynomials*: vectors `v` where `v[k]` counts the
//! `k`-subsets with some property, and composing counts over disjoint
//! fact sets is exactly polynomial multiplication. At small `m` the
//! schoolbook `O(n²)` product is unbeatable; the `m ≥ 4096` regime is
//! dominated by products of polynomials with thousands of coefficients
//! of thousands of bits each, where it is hopeless. This module
//! provides:
//!
//! * [`mul`] — size-dispatched multiplication: schoolbook for tiny
//!   operands, [Karatsuba](mul_with) in a middle band, and a
//!   multi-prime NTT (number-theoretic transform) over 62-bit primes
//!   with CRT reconstruction of the big coefficients for large ones.
//!   All backends are exact and produce identical vectors.
//! * [`exact_div`] — exact polynomial division (the factor-swap
//!   primitive of incremental engine maintenance).
//! * [`pascal_up`] / [`pascal_down`] — `O(n)` multiplication/division
//!   by the Pascal factor `[1, 1]` (binomial shifts of junk facts).
//! * [`product_tree`] / [`leave_one_out_products`] — divide-and-conquer
//!   trees over many factors, fanning the independent subtree products
//!   out across scoped threads.
//! * [`Poly`] — a thin owned wrapper when a value type is more
//!   convenient than slices.
//!
//! ## Backend dispatch
//!
//! [`mul`] picks the backend from the operand *shapes* — lengths and
//! maximal coefficient bit lengths:
//!
//! * `min(len) <` [`KARATSUBA_MIN`] (= 24): schoolbook,
//!   unconditionally — the quadratic loop with no overhead wins
//!   outright on short operands, and it skips zero coefficients.
//! * otherwise a coarse work model compares the three candidates and
//!   picks the cheapest (`estimate` in the source):
//!   - schoolbook ≈ `la·lb·wa·wb` word multiplications
//!     (`w` = coefficient width in limbs),
//!   - Karatsuba ≈ `4·⌈max/min⌉·min^1.585·wa·wb` (balanced blocks of
//!     `O(n^1.585)` coefficient products),
//!   - NTT ≈ transforms `4·t·n·log n` + limb reductions
//!     `10·t·(la·wa + lb·wb)` + Garner CRT `t²·out`, where
//!     `t = ⌈bits/62⌉ + 1` is the prime count.
//!
//!   The model is what routes the *asymmetric* products of the
//!   leave-one-out descent (a long, huge-coefficient accumulator times
//!   a short, small-coefficient factor) back to schoolbook — a pure
//!   length threshold picks the NTT there and loses an order of
//!   magnitude, because the prime count is driven by the big side
//!   while schoolbook's cost shrinks with the small side.
//!
//! The NTT backend reduces the coefficients modulo `t` NTT-friendly
//! primes (`p = k·2^22 + 1 > 2^62`, generated once and cached
//! process-wide), convolves each residue vector in `O(n log n)` via
//! Montgomery arithmetic, and reconstructs the exact big coefficients
//! with Garner's mixed-radix CRT. The prime count adapts to the actual
//! coefficient magnitudes, so small-coefficient products near a
//! product tree's leaves stay cheap. Products whose result exceeds
//! `2^22` coefficients never dispatch to the NTT (no such polynomial
//! arises below `m ≈ 4` million).
// cqshap-lint: allow-file(no-panic-index) -- convolution kernels index by loop bounds derived from operand lengths

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use cqshap_obs::{phase, Counter, Histogram};

use crate::biguint::BigUint;
use crate::cancel::CancelToken;
use crate::error::NumericError;

/// Below this `min(len)` the schoolbook loop wins outright and the
/// work model is not even consulted.
pub const KARATSUBA_MIN: usize = 24;

/// The 2-adicity of the generated NTT primes (`p ≡ 1 mod 2^22`):
/// transforms up to `2^22` points, i.e. results up to ~4M coefficients.
const MAX_TWO_ADICITY: u32 = 22;

/// An explicit multiplication backend (benchmarks and tests; normal
/// callers use [`mul`], which dispatches automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Dispatch by operand shape (the default).
    Auto,
    /// Force the quadratic schoolbook loop.
    Schoolbook,
    /// Force Karatsuba (with the schoolbook base case).
    Karatsuba,
    /// Force the multi-prime NTT.
    Ntt,
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// The product of two coefficient vectors (`out[k] = Σ_i a[i]·b[k-i]`,
/// length `a.len() + b.len() − 1`), backend-dispatched by shape.
/// Zero-length inputs yield the all-zero vector of the conventional
/// length, matching the schoolbook loop.
pub fn mul(a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    mul_with(a, b, Backend::Auto)
}

/// [`mul`] through an explicit [`Backend`]. Infallible: when the NTT
/// backend refuses the input (transform bound, prime supply) the
/// product is computed by Karatsuba instead — bit-identical, just
/// slower. Use [`try_mul_with`] to observe the refusal as an error.
pub fn mul_with(a: &[BigUint], b: &[BigUint], backend: Backend) -> Vec<BigUint> {
    mul_impl(a, b, backend, None)
}

/// [`mul_with`] without the silent fallback: an explicit
/// [`Backend::Ntt`] request that the NTT cannot honor — result longer
/// than the `2^22` transform bound, or (theoretically) prime-pool
/// exhaustion — comes back as a [`NumericError`] instead of being
/// rerouted through Karatsuba.
///
/// # Errors
/// [`NumericError::NttLengthExceeded`] /
/// [`NumericError::PrimePoolExhausted`] under [`Backend::Ntt`]; the
/// other backends (including [`Backend::Auto`], whose work model never
/// selects an out-of-bounds NTT) are total.
pub fn try_mul_with(
    a: &[BigUint],
    b: &[BigUint],
    backend: Backend,
) -> Result<Vec<BigUint>, NumericError> {
    if a.is_empty() || b.is_empty() {
        return Ok(vec![BigUint::zero(); (a.len() + b.len()).saturating_sub(1)]);
    }
    match backend {
        Backend::Ntt => try_mul_ntt(a, b, None),
        other => Ok(mul_with(a, b, other)),
    }
}

/// [`mul_with`] with an optional cooperative [`CancelToken`]: a tripped
/// token makes the NTT backend skip its remaining prime passes and
/// return a placeholder of the conventional length. Callers must check
/// the token before trusting the result — the flag is sticky, so one
/// check after the whole computation suffices.
fn mul_impl(
    a: &[BigUint],
    b: &[BigUint],
    backend: Backend,
    cancel: Option<&CancelToken>,
) -> Vec<BigUint> {
    if a.is_empty() || b.is_empty() {
        return vec![BigUint::zero(); (a.len() + b.len()).saturating_sub(1)];
    }
    let resolved = match backend {
        Backend::Auto => estimate(a, b),
        explicit => explicit,
    };
    record_dispatch(resolved, a, b);
    match resolved {
        Backend::Karatsuba => mul_karatsuba(a, b),
        Backend::Ntt => mul_ntt(a, b, cancel),
        _ => mul_schoolbook(a, b),
    }
}

/// Observability tap on the backend dispatch: one counter per backend
/// plus a histogram of the longer operand's length, so a trace shows
/// what the `Auto` work model actually decided across a workload.
fn record_dispatch(resolved: Backend, a: &[BigUint], b: &[BigUint]) {
    static SCHOOLBOOK: Counter = Counter::new(phase::CTR_POLY_SCHOOLBOOK);
    static KARATSUBA: Counter = Counter::new(phase::CTR_POLY_KARATSUBA);
    static NTT: Counter = Counter::new(phase::CTR_POLY_NTT);
    static OPERAND_LEN: Histogram = Histogram::new(phase::HIST_POLY_OPERAND_LEN);
    match resolved {
        Backend::Karatsuba => KARATSUBA.incr(),
        Backend::Ntt => NTT.incr(),
        _ => SCHOOLBOOK.incr(),
    }
    OPERAND_LEN.record(a.len().max(b.len()) as u64);
}

/// The work-model dispatch behind [`Backend::Auto`] — see the module
/// docs for the three cost formulas.
fn estimate(a: &[BigUint], b: &[BigUint]) -> Backend {
    let (la, lb) = (a.len(), b.len());
    let small = la.min(lb);
    if small < KARATSUBA_MIN {
        return Backend::Schoolbook;
    }
    let out_len = la + lb - 1;
    let bits_a = max_bits(a);
    let bits_b = max_bits(b);
    let (wa, wb) = ((bits_a / 64 + 1) as f64, (bits_b / 64 + 1) as f64);
    let school = la as f64 * lb as f64 * wa * wb;
    let blocks = (la.max(lb) as f64 / small as f64).ceil();
    let kara = 4.0 * blocks * (small as f64).powf(1.585) * wa * wb;
    let ntt = if out_len > 1 << MAX_TWO_ADICITY {
        f64::INFINITY
    } else {
        let bits = bits_a + bits_b + (usize::BITS - small.leading_zeros()) as usize;
        let t = (bits / 62 + 1) as f64;
        let n = out_len.next_power_of_two() as f64;
        4.0 * t * n * n.log2()
            + 10.0 * t * (la as f64 * wa + lb as f64 * wb)
            + t * t * out_len as f64
    };
    if ntt <= school && ntt <= kara {
        Backend::Ntt
    } else if kara < school {
        Backend::Karatsuba
    } else {
        Backend::Schoolbook
    }
}

/// Exact polynomial division `num / den` over nonnegative integer
/// coefficient vectors (coefficient index = degree). Returns `None`
/// when `den` is zero or does not divide `num` exactly — engine callers
/// treat that as "fall back to a full recompile".
pub fn exact_div(num: &[BigUint], den: &[BigUint]) -> Option<Vec<BigUint>> {
    let s = den.iter().position(|c| !c.is_zero())?;
    if num.iter().all(|c| c.is_zero()) {
        // 0 / den — only well-defined with the right length.
        if num.len() >= den.len() {
            return Some(vec![BigUint::zero(); num.len() - den.len() + 1]);
        }
        return None;
    }
    if num.len() < den.len() || num[..s].iter().any(|c| !c.is_zero()) {
        return None;
    }
    let shifted = &num[s..];
    let d = &den[s..];
    let d0 = &d[0];
    let q_len = num.len() - den.len() + 1;
    let mut q = vec![BigUint::zero(); q_len];
    for k in 0..shifted.len() {
        // shifted[k] must equal Σ_i q[i] · d[k−i]; for k < q_len the
        // i = k term carries the unknown q[k], solved against d[0].
        let mut acc = BigUint::zero();
        let lo = (k + 1).saturating_sub(d.len());
        for i in lo..k.min(q_len) {
            if !q[i].is_zero() && !d[k - i].is_zero() {
                acc += &(&q[i] * &d[k - i]);
            }
        }
        if k < q_len {
            let rem = shifted[k].checked_sub(&acc)?;
            let (quot, r) = rem.div_rem(d0);
            if !r.is_zero() {
                return None;
            }
            q[k] = quot;
        } else if shifted[k] != acc {
            return None;
        }
    }
    Some(q)
}

/// `a ⊛ [1, 1]` in `O(n)` additions (Pascal's rule: growing a binomial
/// factor by one free fact).
pub fn pascal_up(a: &[BigUint]) -> Vec<BigUint> {
    if a.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    out.push(a[0].clone());
    for w in a.windows(2) {
        out.push(&w[0] + &w[1]);
    }
    out.push(a[a.len() - 1].clone());
    out
}

/// `a / [1, 1]` in `O(n)` subtractions, or `None` when `[1, 1]` does
/// not divide `a` exactly — bit-identical to
/// [`exact_div`]`(a, [1, 1])`.
pub fn pascal_down(a: &[BigUint]) -> Option<Vec<BigUint>> {
    let (first, rest) = a.split_first()?;
    let (last, mid) = rest.split_last()?;
    let mut q = Vec::with_capacity(a.len() - 1);
    let mut prev = first.clone();
    for c in mid {
        let next = c.checked_sub(&prev)?;
        q.push(prev);
        prev = next;
    }
    if *last != prev {
        return None;
    }
    q.push(prev);
    Some(q)
}

/// `⊛` over all polynomials (the empty product is `[1]`), computed as a
/// balanced divide-and-conquer tree with the independent subtrees
/// fanned out across up to `threads` scoped threads (`0` = all
/// available cores).
pub fn product_tree(polys: &[&[BigUint]], threads: usize) -> Vec<BigUint> {
    product_tree_with(polys, threads, Backend::Auto)
}

/// [`product_tree`] through an explicit [`Backend`].
pub fn product_tree_with(polys: &[&[BigUint]], threads: usize, backend: Backend) -> Vec<BigUint> {
    tree_product(polys, resolve_threads(threads), backend, None)
}

/// [`product_tree`] with a cooperative [`CancelToken`] checked at every
/// tree node (and inside the NTT backend's prime passes). A tripped
/// token short-circuits the remaining combines and returns a
/// placeholder; the caller must check the token before using the
/// result (the flag is sticky).
pub fn product_tree_cancel(
    polys: &[&[BigUint]],
    threads: usize,
    cancel: &CancelToken,
) -> Vec<BigUint> {
    tree_product(polys, resolve_threads(threads), Backend::Auto, Some(cancel))
}

/// For each `i`, `seed ⊛ ⊛_{j≠i} polys[j]` — the engines'
/// leave-one-out environments.
///
/// The classic prefix/suffix descent pays `O(L² log n)` coefficient
/// work (`L` = summed degree), dominated by long accumulator × short
/// sibling products no convolution backend can speed up. This
/// computes the *total* product once (parallel tree, fast backends)
/// and recovers each environment by one exact division,
/// `env_i = (seed ⊛ total) / polys[i]` — `O(L·deg_i)` per *distinct*
/// factor, with equal factors computed once. Inputs containing an
/// all-zero or empty polynomial fall back to the descent (a zero
/// factor cannot be divided out); either path returns bit-identical
/// vectors. Distinct divisions and tree subproducts fan out across up
/// to `threads` scoped threads (`0` = all available cores).
pub fn leave_one_out_products(
    polys: &[&[BigUint]],
    seed: &[BigUint],
    threads: usize,
) -> Vec<Vec<BigUint>> {
    leave_one_out_products_with(polys, seed, threads, Backend::Auto)
}

/// [`leave_one_out_products`] through an explicit [`Backend`].
pub fn leave_one_out_products_with(
    polys: &[&[BigUint]],
    seed: &[BigUint],
    threads: usize,
    backend: Backend,
) -> Vec<Vec<BigUint>> {
    leave_one_out_impl(polys, seed, resolve_threads(threads), backend, None)
        .into_iter()
        .map(|env| match std::sync::Arc::try_unwrap(env) {
            Ok(v) => v,
            Err(shared) => shared.as_ref().clone(),
        })
        .collect()
}

/// [`leave_one_out_products`] with duplicate environments *shared*:
/// equal input polynomials yield the same `Arc` (their environments
/// coincide), so uniform workloads hold one allocation per distinct
/// factor instead of `n` copies — what the compiled engines cache.
pub fn leave_one_out_products_shared(
    polys: &[&[BigUint]],
    seed: &[BigUint],
    threads: usize,
) -> Vec<std::sync::Arc<Vec<BigUint>>> {
    leave_one_out_impl(polys, seed, resolve_threads(threads), Backend::Auto, None)
}

/// [`leave_one_out_products_shared`] with a cooperative [`CancelToken`]
/// checked through the product tree and the per-factor divisions. Same
/// contract as [`product_tree_cancel`]: check the token before using
/// the result.
pub fn leave_one_out_products_shared_cancel(
    polys: &[&[BigUint]],
    seed: &[BigUint],
    threads: usize,
    cancel: &CancelToken,
) -> Vec<std::sync::Arc<Vec<BigUint>>> {
    leave_one_out_impl(
        polys,
        seed,
        resolve_threads(threads),
        Backend::Auto,
        Some(cancel),
    )
}

/// An owned polynomial over [`BigUint`] coefficients (index = degree),
/// wrapping the slice-level functions of this module for callers that
/// prefer a value type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<BigUint>,
}

impl Poly {
    /// The constant polynomial `1` — the multiplicative identity.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![BigUint::one()],
        }
    }

    /// Wraps a coefficient vector (index = degree; kept verbatim,
    /// including trailing zeros — count vectors carry their length).
    pub fn from_coeffs(coeffs: Vec<BigUint>) -> Self {
        Poly { coeffs }
    }

    /// The coefficients, index = degree.
    pub fn coeffs(&self) -> &[BigUint] {
        &self.coeffs
    }

    /// Unwraps into the coefficient vector.
    pub fn into_coeffs(self) -> Vec<BigUint> {
        self.coeffs
    }

    /// Number of stored coefficients (degree bound + 1).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Is the coefficient vector empty?
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `self · other`, backend-dispatched (see [`mul`]).
    pub fn mul(&self, other: &Poly) -> Poly {
        Poly::from_coeffs(mul(&self.coeffs, &other.coeffs))
    }

    /// Exact division (see [`exact_div`]).
    pub fn exact_div(&self, den: &Poly) -> Option<Poly> {
        exact_div(&self.coeffs, &den.coeffs).map(Poly::from_coeffs)
    }

    /// `self ⊛ [1, 1]` (see [`pascal_up`]).
    pub fn pascal_up(&self) -> Poly {
        Poly::from_coeffs(pascal_up(&self.coeffs))
    }

    /// `self / [1, 1]` (see [`pascal_down`]).
    pub fn pascal_down(&self) -> Option<Poly> {
        pascal_down(&self.coeffs).map(Poly::from_coeffs)
    }
}

impl From<Vec<BigUint>> for Poly {
    fn from(coeffs: Vec<BigUint>) -> Self {
        Poly::from_coeffs(coeffs)
    }
}

impl From<Poly> for Vec<BigUint> {
    fn from(p: Poly) -> Self {
        p.into_coeffs()
    }
}

// ---------------------------------------------------------------------
// Schoolbook and Karatsuba
// ---------------------------------------------------------------------

fn mul_schoolbook(a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    let mut out = vec![BigUint::zero(); a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            if !y.is_zero() {
                out[i + j] += &(x * y);
            }
        }
    }
    out
}

/// Pointwise `acc[offset..] += add`.
fn add_at(acc: &mut [BigUint], offset: usize, add: &[BigUint]) {
    for (slot, v) in acc[offset..].iter_mut().zip(add) {
        *slot += v;
    }
}

/// Pointwise `acc[offset..] -= sub` (never underflows for Karatsuba's
/// middle term: the cross products are a superset of the outer ones).
fn sub_at(acc: &mut [BigUint], offset: usize, sub: &[BigUint]) {
    for (slot, v) in acc[offset..].iter_mut().zip(sub) {
        *slot -= v;
    }
}

/// Pointwise sum of two coefficient slices (length = the longer one).
fn add_polys(a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = long.to_vec();
    add_at(&mut out, 0, short);
    out
}

fn mul_karatsuba(a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    if a.len().min(b.len()) < KARATSUBA_MIN {
        return mul_schoolbook(a, b);
    }
    let split = a.len().max(b.len()).div_ceil(2);
    let mut out = vec![BigUint::zero(); a.len() + b.len() - 1];
    if b.len() <= split {
        // Unbalanced: split `a` only; b sees both halves directly.
        let lo = mul_karatsuba(&a[..split], b);
        let hi = mul_karatsuba(&a[split..], b);
        add_at(&mut out, 0, &lo);
        add_at(&mut out, split, &hi);
        return out;
    }
    if a.len() <= split {
        let lo = mul_karatsuba(a, &b[..split]);
        let hi = mul_karatsuba(a, &b[split..]);
        add_at(&mut out, 0, &lo);
        add_at(&mut out, split, &hi);
        return out;
    }
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);
    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    // z1 = (a0 + a1)(b0 + b1) − z0 − z2: with nonnegative coefficients
    // the mixed product dominates both pointwise, so plain `-` is safe.
    let mut z1 = mul_karatsuba(&add_polys(a0, a1), &add_polys(b0, b1));
    sub_at(&mut z1, 0, &z0);
    sub_at(&mut z1, 0, &z2);
    add_at(&mut out, 0, &z0);
    add_at(&mut out, split, &z1);
    add_at(&mut out, 2 * split, &z2);
    out
}

// ---------------------------------------------------------------------
// Montgomery arithmetic over generated NTT primes
// ---------------------------------------------------------------------

/// One NTT-friendly prime `p = k·2^22 + 1` (`2^62 < p < 2^63`) with its
/// Montgomery constants and a root of unity of order `2^22`.
#[derive(Debug, Clone, Copy)]
struct NttPrime {
    p: u64,
    /// `-p^{-1} mod 2^64` (the Montgomery reduction factor).
    neg_inv: u64,
    /// `2^64 mod p` — the Montgomery form of `1`.
    r1: u64,
    /// `2^128 mod p` — converts into Montgomery form.
    r2: u64,
    /// A root of unity of order exactly `2^22`, plain form.
    two_adic_root: u64,
}

/// `a·b mod p` via `u128` (setup paths only; hot loops use Montgomery).
fn mulmod(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

// cqshap-lint: allow(cancellation-poll) -- bounded: at most 64 squarings
fn powmod(mut base: u64, mut exp: u64, p: u64) -> u64 {
    base %= p;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, p);
        }
        base = mulmod(base, base, p);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin for `u64` (the first twelve prime bases
/// decide primality for every 64-bit integer).
fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

impl NttPrime {
    // cqshap-lint: allow(cancellation-poll) -- bounded: fixed iteration counts for one prime's constants
    fn new(p: u64) -> NttPrime {
        // p^{-1} mod 2^64 by Newton iteration (p is odd).
        let mut inv = p;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
        }
        debug_assert_eq!(p.wrapping_mul(inv), 1);
        let r1 = (((1u128 << 64) % p as u128) & u64::MAX as u128) as u64;
        let r2 = mulmod(r1, r1, p);
        // A root of order exactly 2^22: g^((p-1)/2^22) for the first
        // base g whose image does not collapse into the index-2
        // subgroup (checked via the half-order power).
        let odd = (p - 1) >> MAX_TWO_ADICITY;
        let mut root = 0u64;
        for g in 2u64.. {
            let w = powmod(g, odd, p);
            if powmod(w, 1 << (MAX_TWO_ADICITY - 1), p) != 1 {
                root = w;
                break;
            }
        }
        NttPrime {
            p,
            neg_inv: inv.wrapping_neg(),
            r1,
            r2,
            two_adic_root: root,
        }
    }

    /// Montgomery product: for `a, b < p` returns `a·b·2^{-64} mod p`.
    /// One plain factor and one Montgomery-form factor therefore yield
    /// a plain product — the trick the CRT evaluation leans on.
    #[inline]
    fn mont_mul(&self, a: u64, b: u64) -> u64 {
        let t = a as u128 * b as u128;
        let m = (t as u64).wrapping_mul(self.neg_inv);
        let u = ((t + m as u128 * self.p as u128) >> 64) as u64;
        if u >= self.p {
            u - self.p
        } else {
            u
        }
    }

    /// Into Montgomery form: `x·2^64 mod p`.
    #[inline]
    fn encode(&self, x: u64) -> u64 {
        self.mont_mul(x, self.r2)
    }

    /// Out of Montgomery form.
    #[inline]
    fn decode(&self, x: u64) -> u64 {
        self.mont_mul(x, 1)
    }

    #[inline]
    fn add_mod(&self, a: u64, b: u64) -> u64 {
        let s = a + b; // both < p < 2^63: no overflow
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    #[inline]
    fn sub_mod(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// `c mod p` straight off the limbs: Horner over base `2^64`, with
    /// the scale factor folded into a Montgomery product per limb
    /// (`r2` *is* the Montgomery form of `2^64`). Several times faster
    /// than a `u128` division per limb, and the limb reduction is the
    /// NTT's second-biggest cost on big-coefficient inputs.
    fn reduce(&self, c: &BigUint) -> u64 {
        c.with_limbs(|limbs| {
            let mut acc = 0u64;
            for &limb in limbs.iter().rev() {
                // limb < 2^64 < 4p: two conditional subtracts reduce it.
                let mut r = limb;
                if r >= self.p << 1 {
                    r -= self.p << 1;
                }
                if r >= self.p {
                    r -= self.p;
                }
                acc = self.add_mod(self.mont_mul(acc, self.r2), r);
            }
            acc
        })
    }

    /// Montgomery-form power.
    // cqshap-lint: allow(cancellation-poll) -- bounded: at most 64 squarings
    fn mont_pow(&self, mut base: u64, mut exp: u64) -> u64 {
        let mut acc = self.r1;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mont_mul(acc, base);
            }
            base = self.mont_mul(base, base);
            exp >>= 1;
        }
        acc
    }
}

/// The process-wide cache of generated NTT primes, grown on demand by
/// scanning `p = k·2^22 + 1` for `k` descending from the top of the
/// 63-bit range (so every prime exceeds `2^62` and carries ≥ 62 bits
/// of CRT capacity).
struct PrimePool {
    primes: Vec<NttPrime>,
    next_k: u64,
}

fn ntt_primes(count: usize) -> Result<Vec<NttPrime>, NumericError> {
    static POOL: OnceLock<Mutex<PrimePool>> = OnceLock::new();
    let pool = POOL.get_or_init(|| {
        Mutex::new(PrimePool {
            primes: Vec::new(),
            next_k: (1u64 << 41) - 1,
        })
    });
    // A poisoned lock means some worker panicked mid-scan; the pool is
    // append-only and every stored prime was fully constructed, so the
    // data is still coherent — recover the guard and keep going.
    let mut pool = pool.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    while pool.primes.len() < count {
        let k = pool.next_k;
        if k < 1 << 40 {
            return Err(NumericError::PrimePoolExhausted {
                requested: count,
                available: pool.primes.len(),
            });
        }
        pool.next_k -= 1;
        let p = (k << MAX_TWO_ADICITY) | 1;
        if is_prime_u64(p) {
            let prime = NttPrime::new(p);
            pool.primes.push(prime);
        }
    }
    let primes = pool.primes[..count].to_vec();
    // Bump the draw counter after releasing the pool lock so the obs
    // sink's own lock is never acquired while this one is held.
    drop(pool);
    static PRIME_DRAWS: Counter = Counter::new(phase::CTR_NTT_PRIME_DRAWS);
    PRIME_DRAWS.add(count as u64);
    Ok(primes)
}

// ---------------------------------------------------------------------
// The multi-prime NTT backend
// ---------------------------------------------------------------------

/// In-place radix-2 NTT of `a` (Montgomery form) with `w` a
/// Montgomery-form root of unity of order `a.len()`.
fn ntt_in_place(a: &mut [u64], w: u64, pr: &NttPrime) {
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2usize;
    while len <= n {
        let wlen = pr.mont_pow(w, (n / len) as u64);
        for block in a.chunks_mut(len) {
            let (lo, hi) = block.split_at_mut(len / 2);
            let mut tw = pr.r1; // Montgomery 1
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *x;
                let v = pr.mont_mul(*y, tw);
                *x = pr.add_mod(u, v);
                *y = pr.sub_mod(u, v);
                tw = pr.mont_mul(tw, wlen);
            }
        }
        len <<= 1;
    }
}

/// The residue vector of `poly` modulo `pr.p`, in Montgomery form,
/// zero-padded to `n`.
fn residues_mont(poly: &[BigUint], n: usize, pr: &NttPrime) -> Vec<u64> {
    let mut out = vec![0u64; n];
    for (slot, c) in out.iter_mut().zip(poly) {
        if !c.is_zero() {
            *slot = pr.encode(pr.reduce(c));
        }
    }
    out
}

/// One prime's convolution: `NTT⁻¹(NTT(a) ⊙ NTT(b))`, returned as
/// plain (non-Montgomery) residues truncated to `out_len`.
fn convolve_mod(a: &[BigUint], b: &[BigUint], out_len: usize, pr: &NttPrime) -> Vec<u64> {
    let n = out_len.next_power_of_two();
    debug_assert!(n.trailing_zeros() <= MAX_TWO_ADICITY);
    let w = pr.encode(pr.two_adic_root);
    let w = pr.mont_pow(w, 1u64 << (MAX_TWO_ADICITY - n.trailing_zeros()));
    let mut fa = residues_mont(a, n, pr);
    if n == 1 {
        // Degenerate single-point transform: a plain product.
        let fb = residues_mont(b, n, pr);
        return vec![pr.decode(pr.mont_mul(fa[0], fb[0]))];
    }
    let mut fb = residues_mont(b, n, pr);
    ntt_in_place(&mut fa, w, pr);
    ntt_in_place(&mut fb, w, pr);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = pr.mont_mul(*x, *y);
    }
    let w_inv = pr.mont_pow(w, (n - 1) as u64); // w has order n
    ntt_in_place(&mut fa, w_inv, pr);
    let n_inv = pr.mont_pow(pr.encode(n as u64), pr.p - 2);
    fa.truncate(out_len);
    for x in fa.iter_mut() {
        // Collapses the n-scaling and the Montgomery factor in one go.
        *x = pr.decode(pr.mont_mul(*x, n_inv));
    }
    fa
}

/// The largest coefficient bit length in `poly`.
fn max_bits(poly: &[BigUint]) -> usize {
    poly.iter().map(BigUint::bit_len).max().unwrap_or(0)
}

/// [`try_mul_ntt`] with the refusals absorbed: an input the NTT cannot
/// handle is rerouted through Karatsuba, keeping the [`Backend::Ntt`]
/// dispatch arm total.
fn mul_ntt(a: &[BigUint], b: &[BigUint], cancel: Option<&CancelToken>) -> Vec<BigUint> {
    match try_mul_ntt(a, b, cancel) {
        Ok(out) => out,
        Err(_) => mul_karatsuba(a, b),
    }
}

fn try_mul_ntt(
    a: &[BigUint],
    b: &[BigUint],
    cancel: Option<&CancelToken>,
) -> Result<Vec<BigUint>, NumericError> {
    let out_len = a.len() + b.len() - 1;
    if out_len > 1 << MAX_TWO_ADICITY {
        return Err(NumericError::NttLengthExceeded {
            out_len,
            max_len: 1 << MAX_TWO_ADICITY,
        });
    }
    // Every output coefficient is a sum of ≤ min(len) products, so its
    // bit length is bounded by the operand maxima plus the sum's log.
    let sum_terms = a.len().min(b.len());
    let need_bits = max_bits(a) + max_bits(b) + (usize::BITS - sum_terms.leading_zeros()) as usize;
    let t = need_bits / 62 + 1; // every prime exceeds 2^62
    let primes = ntt_primes(t)?;
    let mut residues: Vec<Vec<u64>> = Vec::with_capacity(t);
    for pr in &primes {
        // One checkpoint per prime pass: a tripped token abandons the
        // remaining transforms and returns an all-zero placeholder of
        // the conventional length (callers re-check the sticky flag).
        if cancel.is_some_and(|c| c.charge(1)) {
            return Ok(vec![BigUint::zero(); out_len]);
        }
        residues.push(convolve_mod(a, b, out_len, pr));
    }

    // Garner's mixed-radix CRT. Precomputed per prime i: the previous
    // primes in Montgomery form (one Montgomery factor per product
    // keeps the running value in the plain domain) and the inverse of
    // their product.
    let p_mont: Vec<Vec<u64>> = primes
        .iter()
        .enumerate()
        .map(|(i, pr)| primes[..i].iter().map(|q| pr.encode(q.p % pr.p)).collect())
        .collect();
    let prod_inv_mont: Vec<u64> = primes
        .iter()
        .enumerate()
        .map(|(i, pr)| {
            let mut prod = pr.r1; // Montgomery 1
            for q in &primes[..i] {
                prod = pr.mont_mul(prod, pr.encode(q.p % pr.p));
            }
            // prod^{-1}·R stays in Montgomery form, so multiplying a
            // plain value by it yields a plain result.
            pr.mont_pow(prod, pr.p - 2)
        })
        .collect();

    let mut digits = vec![0u64; t];
    Ok((0..out_len)
        .map(|c| {
            // Mixed-radix digits: digits[i] reconstructs the value mod
            // p_i given the digits below it.
            for i in 0..t {
                let pr = &primes[i];
                let mut acc = 0u64;
                for j in (0..i).rev() {
                    let d = digits[j];
                    let d = if d >= pr.p { d - pr.p } else { d };
                    acc = pr.add_mod(pr.mont_mul(acc, p_mont[i][j]), d);
                }
                let diff = pr.sub_mod(residues[i][c], acc);
                digits[i] = pr.mont_mul(diff, prod_inv_mont[i]);
            }
            // Horner evaluation x = v₀ + p₀(v₁ + p₁(v₂ + …)).
            let mut x = BigUint::from_u64(digits[t - 1]);
            for j in (0..t.saturating_sub(1)).rev() {
                x.mul_u64_assign(primes[j].p);
                x += &BigUint::from_u64(digits[j]);
            }
            x
        })
        .collect())
}

// ---------------------------------------------------------------------
// Parallel trees
// ---------------------------------------------------------------------

/// Resolves a requested worker cap: `0` means "all available cores,
/// capped at 16", anything else is taken verbatim. The single source
/// of the policy — `cqshap-core`'s fan-outs delegate here so
/// `--threads 0` means the same width in every stage.
// The one sanctioned `available_parallelism` probe (see clippy.toml).
#[allow(clippy::disallowed_methods)]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(16)
    } else {
        threads
    }
}

/// Total coefficient count — the recursion only forks when both halves
/// carry enough work to amortize a thread spawn.
fn work_size(polys: &[&[BigUint]]) -> usize {
    polys.iter().map(|p| p.len()).sum()
}

const PARALLEL_MIN_COEFFS: usize = 128;

fn tree_product(
    polys: &[&[BigUint]],
    threads: usize,
    backend: Backend,
    cancel: Option<&CancelToken>,
) -> Vec<BigUint> {
    match polys {
        [] => vec![BigUint::one()],
        [p] => p.to_vec(),
        _ => {
            // One charge per internal node: the tree has O(n) nodes, so
            // the checkpoint overhead stays far below the convolution
            // work it bounds. A tripped token collapses the remaining
            // subtrees to `[1]` placeholders (the caller re-checks the
            // sticky flag before using the product).
            if let Some(c) = cancel {
                if c.charge(1) {
                    return vec![BigUint::one()];
                }
            }
            let (left, right) = polys.split_at(polys.len() / 2);
            let (lp, rp) = join_halves(
                threads,
                work_size(polys),
                || tree_product(left, threads - threads / 2, backend, cancel),
                || tree_product(right, threads / 2, backend, cancel),
            );
            mul_impl(&lp, &rp, backend, cancel)
        }
    }
}

fn leave_one_out_impl(
    polys: &[&[BigUint]],
    seed: &[BigUint],
    threads: usize,
    backend: Backend,
    cancel: Option<&CancelToken>,
) -> Vec<std::sync::Arc<Vec<BigUint>>> {
    use std::sync::Arc;
    match polys {
        [] => return Vec::new(),
        [_] => return vec![Arc::new(seed.to_vec())],
        _ => {}
    }
    // A zero factor cannot be divided back out of the (zero) total:
    // the descent handles it, and it never arises from the engines
    // (all-zero unsatisfying counts are guarded upstream).
    let divisible = polys
        .iter()
        .all(|p| !p.is_empty() && p.iter().any(|c| !c.is_zero()));
    if divisible {
        // One representative per distinct polynomial: equal factors
        // have equal environments.
        let mut class_of = vec![0usize; polys.len()];
        let mut reps: Vec<usize> = Vec::new();
        {
            let mut seen: HashMap<&[BigUint], usize> = HashMap::new();
            for (i, p) in polys.iter().enumerate() {
                let next = reps.len();
                let c = *seen.entry(p).or_insert(next);
                if c == next {
                    reps.push(i);
                }
                class_of[i] = c;
            }
        }
        let total = tree_product(polys, threads, backend, cancel);
        let full = mul_with(seed, &total, backend);
        if cancel.is_some_and(|c| c.charge(1)) {
            // Don't run the per-factor divisions against a placeholder
            // product; hand back right-shaped placeholder environments.
            let env = Arc::new(seed.to_vec());
            return vec![env; polys.len()];
        }
        let rep_envs = par_map_chunks(threads, reps.len(), |r| exact_div(&full, polys[reps[r]]));
        if let Some(envs) = rep_envs.into_iter().collect::<Option<Vec<Vec<BigUint>>>>() {
            let rep_envs: Vec<Arc<Vec<BigUint>>> = envs.into_iter().map(Arc::new).collect();
            return class_of.into_iter().map(|c| rep_envs[c].clone()).collect();
        }
        // Unreachable for exact inputs, but the descent is always
        // correct — prefer a slow answer to a panic.
    }
    fill_leave_one_out(polys, seed.to_vec(), threads, backend, cancel)
        .into_iter()
        .map(Arc::new)
        .collect()
}

/// Maps `f` over `0..n` across up to `threads` scoped worker threads,
/// preserving order (sequential when the budget or size is trivial).
// A sanctioned fan-out module (see clippy.toml / thread-discipline).
#[allow(clippy::disallowed_methods)]
fn par_map_chunks<T: Send>(threads: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(chunk) => chunk,
                // A worker panic is a bug in `f`; re-raise it with its
                // original payload rather than a second-hand message.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

fn fill_leave_one_out(
    polys: &[&[BigUint]],
    acc: Vec<BigUint>,
    threads: usize,
    backend: Backend,
    cancel: Option<&CancelToken>,
) -> Vec<Vec<BigUint>> {
    match polys {
        [] => Vec::new(),
        [_] => vec![acc],
        _ => {
            if let Some(c) = cancel {
                if c.charge(1) {
                    return vec![acc; polys.len()];
                }
            }
            let (left, right) = polys.split_at(polys.len() / 2);
            let size = work_size(polys);
            let (left_product, right_product) = join_halves(
                threads,
                size,
                || tree_product(left, threads - threads / 2, backend, cancel),
                || tree_product(right, threads / 2, backend, cancel),
            );
            let (mut lo, ro) = join_halves(
                threads,
                size,
                || {
                    fill_leave_one_out(
                        left,
                        mul_impl(&acc, &right_product, backend, cancel),
                        threads - threads / 2,
                        backend,
                        cancel,
                    )
                },
                || {
                    fill_leave_one_out(
                        right,
                        mul_impl(&acc, &left_product, backend, cancel),
                        threads / 2,
                        backend,
                        cancel,
                    )
                },
            );
            lo.extend(ro);
            lo
        }
    }
}

/// Runs the two closures — on this thread sequentially, or with the
/// second forked onto a scoped thread when the budget and the workload
/// justify it.
// A sanctioned fan-out module (see clippy.toml / thread-discipline).
#[allow(clippy::disallowed_methods)]
fn join_halves<A: Send, B: Send>(
    threads: usize,
    size: usize,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    if threads > 1 && size >= PARALLEL_MIN_COEFFS {
        std::thread::scope(|s| {
            let hb = s.spawn(fb);
            let a = fa();
            match hb.join() {
                Ok(b) => (a, b),
                // Re-raise a worker panic with its original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    } else {
        (fa(), fb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_ntt_is_a_typed_error_not_a_panic() {
        // out_len = 2^22 + 1 exceeds the transform bound by one.
        let a = vec![BigUint::zero(); 1 << MAX_TWO_ADICITY];
        let b = vec![BigUint::zero(); 2];
        match try_mul_with(&a, &b, Backend::Ntt) {
            Err(NumericError::NttLengthExceeded { out_len, max_len }) => {
                assert_eq!(out_len, (1 << MAX_TWO_ADICITY) + 1);
                assert_eq!(max_len, 1 << MAX_TWO_ADICITY);
            }
            other => panic!("expected NttLengthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn infallible_ntt_entry_falls_back_instead_of_panicking() {
        // The same oversized request through the infallible entry point
        // reroutes to Karatsuba; zero inputs keep the fallback cheap.
        let a = vec![BigUint::zero(); 1 << MAX_TWO_ADICITY];
        let b = vec![BigUint::zero(); 2];
        let out = mul_with(&a, &b, Backend::Ntt);
        assert_eq!(out.len(), (1 << MAX_TWO_ADICITY) + 1);
        assert!(out.iter().all(BigUint::is_zero));
    }

    #[test]
    fn try_mul_matches_mul_in_bounds() {
        let a: Vec<BigUint> = (1..40u64).map(BigUint::from_u64).collect();
        let b: Vec<BigUint> = (3..50u64).map(BigUint::from_u64).collect();
        for backend in [
            Backend::Auto,
            Backend::Schoolbook,
            Backend::Karatsuba,
            Backend::Ntt,
        ] {
            assert_eq!(
                try_mul_with(&a, &b, backend).expect("in-bounds product"),
                mul_with(&a, &b, backend)
            );
        }
    }

    fn v(xs: &[u64]) -> Vec<BigUint> {
        xs.iter().map(|&x| BigUint::from_u64(x)).collect()
    }

    #[test]
    fn small_products_agree_across_backends() {
        let a = v(&[1, 2, 3]);
        let b = v(&[4, 0, 5, 6]);
        let want = mul_schoolbook(&a, &b);
        for backend in [Backend::Auto, Backend::Karatsuba, Backend::Ntt] {
            assert_eq!(mul_with(&a, &b, backend), want, "{backend:?}");
        }
        assert_eq!(want, v(&[4, 8, 17, 16, 27, 18]));
    }

    #[test]
    fn empty_and_identity_edges() {
        let a = v(&[3, 7]);
        assert_eq!(mul(&a, &[BigUint::one()]), a);
        assert_eq!(mul(&[], &a), vec![BigUint::zero(); 1]);
        assert_eq!(mul(&a, &[]), vec![BigUint::zero(); 1]);
        let z = vec![BigUint::zero(); 4];
        assert_eq!(mul_with(&z, &a, Backend::Ntt), vec![BigUint::zero(); 5]);
    }

    #[test]
    fn larger_sizes_agree_across_backends() {
        // Deterministic pseudo-random coefficients crossing the
        // KARATSUBA_MIN and NTT_MIN thresholds.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (la, lb) in [(25, 25), (70, 70), (70, 25), (64, 100), (1, 80)] {
            let a: Vec<BigUint> = (0..la).map(|_| BigUint::from_u64(next() >> 20)).collect();
            let b: Vec<BigUint> = (0..lb).map(|_| BigUint::from_u64(next() >> 20)).collect();
            let want = mul_schoolbook(&a, &b);
            assert_eq!(mul_with(&a, &b, Backend::Karatsuba), want, "kara {la}x{lb}");
            assert_eq!(mul_with(&a, &b, Backend::Ntt), want, "ntt {la}x{lb}");
            assert_eq!(mul(&a, &b), want, "auto {la}x{lb}");
        }
    }

    #[test]
    fn ntt_handles_coefficients_beyond_u128() {
        // > 2^128 coefficients force more CRT primes than a u128 fits.
        let big = (BigUint::one() << 200) + BigUint::from_u64(12345);
        let a = vec![big.clone(), BigUint::one() << 131, BigUint::from_u64(7)];
        let b = vec![BigUint::from_u64(3), big.clone()];
        let want = mul_schoolbook(&a, &b);
        assert_eq!(mul_with(&a, &b, Backend::Ntt), want);
        assert!(want.iter().any(|c| c.bit_len() > 256));
    }

    #[test]
    fn generated_primes_have_the_advertised_shape() {
        for pr in ntt_primes(3).expect("pool has at least 3 primes") {
            assert!(pr.p > 1 << 62 && pr.p < 1 << 63);
            assert_eq!((pr.p - 1) % (1 << MAX_TWO_ADICITY), 0);
            assert!(is_prime_u64(pr.p));
            // The stored root has order exactly 2^22.
            assert_eq!(powmod(pr.two_adic_root, 1 << MAX_TWO_ADICITY, pr.p), 1);
            assert_ne!(
                powmod(pr.two_adic_root, 1 << (MAX_TWO_ADICITY - 1), pr.p),
                1
            );
            // Montgomery round trip.
            assert_eq!(pr.decode(pr.encode(123456789)), 123456789);
        }
    }

    #[test]
    fn pascal_shifts_match_generic_paths() {
        let one_one = v(&[1, 1]);
        let a = v(&[2, 0, 5, 1]);
        let up = pascal_up(&a);
        assert_eq!(up, mul_schoolbook(&a, &one_one));
        assert_eq!(pascal_down(&up), Some(a.clone()));
        assert_eq!(pascal_down(&up), exact_div(&up, &one_one));
        // Non-divisible input: both paths refuse.
        let bad = v(&[1, 1, 1]);
        assert_eq!(pascal_down(&bad), None);
        assert_eq!(exact_div(&bad, &one_one), None);
        // Degenerate lengths.
        assert_eq!(pascal_down(&v(&[5])), None);
        assert_eq!(pascal_up(&[]), Vec::<BigUint>::new());
    }

    #[test]
    fn exact_division_round_trips() {
        let a = v(&[1, 4, 6, 4, 1]);
        let b = v(&[1, 2, 1]);
        assert_eq!(exact_div(&a, &b).unwrap(), b);
        // Leading-zero divisor (a shifted factor).
        let shifted = v(&[0, 1, 1]);
        let prod = mul(&shifted, &b);
        assert_eq!(exact_div(&prod, &shifted).unwrap(), b);
        // Non-divisor → None.
        assert!(exact_div(&a, &v(&[1, 3])).is_none());
        // Zero divisor → None.
        assert!(exact_div(&a, &vec![BigUint::zero(); 2]).is_none());
        // Zero numerator keeps the conventional length.
        let z = vec![BigUint::zero(); 5];
        assert_eq!(exact_div(&z, &b).unwrap(), vec![BigUint::zero(); 3]);
    }

    #[test]
    fn product_tree_and_leave_one_out_match_naive() {
        let polys = [v(&[1, 3]), v(&[2, 1, 1]), v(&[1, 0, 4]), v(&[5])];
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();
        let naive = refs
            .iter()
            .fold(vec![BigUint::one()], |acc, p| mul_schoolbook(&acc, p));
        for threads in [1, 2, 4] {
            assert_eq!(product_tree(&refs, threads), naive);
        }
        assert_eq!(product_tree(&[], 1), vec![BigUint::one()]);
        let seed = v(&[1, 2, 1]);
        let envs = leave_one_out_products(&refs, &seed, 2);
        assert_eq!(envs.len(), refs.len());
        for (i, env) in envs.iter().enumerate() {
            let mut want = seed.clone();
            for (j, p) in refs.iter().enumerate() {
                if j != i {
                    want = mul_schoolbook(&want, p);
                }
            }
            assert_eq!(env, &want, "environment {i}");
        }
    }

    #[test]
    fn leave_one_out_shares_equal_factors_and_survives_zeros() {
        // Equal factors: one Arc per distinct polynomial.
        let p = v(&[1, 2, 1]);
        let q = v(&[1, 3]);
        let polys = [p.clone(), q.clone(), p.clone()];
        let refs: Vec<&[BigUint]> = polys.iter().map(|x| x.as_slice()).collect();
        let shared = leave_one_out_products_shared(&refs, &v(&[1, 1]), 1);
        assert!(std::sync::Arc::ptr_eq(&shared[0], &shared[2]));
        assert!(!std::sync::Arc::ptr_eq(&shared[0], &shared[1]));
        let plain = leave_one_out_products(&refs, &v(&[1, 1]), 1);
        for (a, b) in shared.iter().zip(&plain) {
            assert_eq!(a.as_ref(), b);
        }
        // A zero factor forces the descent fallback; results (values
        // and lengths) must match the naive reference exactly.
        let zero = vec![BigUint::zero(); 3];
        let with_zero = [p.clone(), zero.clone(), q.clone()];
        let refs: Vec<&[BigUint]> = with_zero.iter().map(|x| x.as_slice()).collect();
        let envs = leave_one_out_products(&refs, &v(&[1]), 2);
        for (i, env) in envs.iter().enumerate() {
            let mut want = v(&[1]);
            for (j, r) in refs.iter().enumerate() {
                if j != i {
                    want = mul_schoolbook(&want, r);
                }
            }
            assert_eq!(env, &want, "environment {i} with a zero factor");
        }
    }

    #[test]
    fn cancelled_trees_return_placeholders_and_trip_the_token() {
        use crate::cancel::CancelToken;
        let polys: Vec<Vec<BigUint>> = (0..16).map(|i| v(&[1, i + 1])).collect();
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();

        let live = CancelToken::unlimited();
        let want = product_tree(&refs, 1);
        assert_eq!(product_tree_cancel(&refs, 1, &live), want);
        assert!(!live.should_stop());

        let tripped = CancelToken::unlimited();
        tripped.cancel();
        let _ = product_tree_cancel(&refs, 1, &tripped);
        assert!(tripped.should_stop(), "the flag stays sticky");
        let envs = leave_one_out_products_shared_cancel(&refs, &v(&[1]), 1, &tripped);
        assert_eq!(envs.len(), refs.len(), "placeholders keep the shape");
    }

    #[test]
    fn poly_wrapper_round_trips() {
        let p = Poly::from_coeffs(v(&[1, 2]));
        let q = p.mul(&p);
        assert_eq!(q.coeffs(), &v(&[1, 4, 4])[..]);
        assert_eq!(q.exact_div(&p).unwrap(), p);
        assert_eq!(p.pascal_up().pascal_down().unwrap(), p);
        assert_eq!(Poly::one().len(), 1);
        assert!(!Poly::one().is_empty());
        let coeffs: Vec<BigUint> = q.clone().into();
        assert_eq!(Poly::from(coeffs), q);
    }
}
