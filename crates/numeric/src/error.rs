//! Typed errors for the numeric kernels.
//!
//! The crate's arithmetic is total almost everywhere; the exceptions
//! live in the NTT backend, whose transform length and prime supply are
//! bounded. The fallible entry points ([`crate::poly::try_mul_with`])
//! surface those bounds as values instead of panics, and the infallible
//! ones fall back to Karatsuba, which has no such limits.

use std::fmt;

/// A numeric kernel refused an input it cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericError {
    /// The requested convolution is longer than the NTT's `2^22`
    /// transform bound (the two-adicity baked into the prime pool).
    NttLengthExceeded {
        /// The would-be result length `a.len() + b.len() − 1`.
        out_len: usize,
        /// The largest supported result length.
        max_len: usize,
    },
    /// The NTT prime scan ran out of 63-bit candidates before finding
    /// enough primes for the requested CRT capacity.
    PrimePoolExhausted {
        /// How many primes the convolution needed.
        requested: usize,
        /// How many the pool could supply.
        available: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::NttLengthExceeded { out_len, max_len } => write!(
                f,
                "NTT result length {out_len} exceeds the {max_len} transform bound"
            ),
            NumericError::PrimePoolExhausted {
                requested,
                available,
            } => write!(
                f,
                "NTT prime pool exhausted: {requested} primes requested, {available} available"
            ),
        }
    }
}

impl std::error::Error for NumericError {}
