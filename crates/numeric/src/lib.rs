//! Exact arbitrary-precision arithmetic for `cqshap`.
//!
//! Shapley values of database facts are exact rational numbers whose
//! numerators and denominators involve factorials of the number of
//! endogenous facts (e.g. `-3/28` in the paper's running example, or
//! `n!·n!/(2n+1)!` in the gap-property construction of Theorem 5.1).
//! Floating point is far too lossy for the paper's identities — the whole
//! point of several experiments is to verify *exact* equalities — so this
//! crate provides:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers,
//! * [`BigInt`] — signed integers,
//! * [`BigRational`] — normalized rationals,
//! * [`FactorialTable`] and [`binomial`] — exact combinatorics,
//! * [`linalg`] — exact Gaussian elimination over the rationals, used to
//!   solve the linear-equation system of Lemma B.3.
//!
//! The implementation is deliberately simple (schoolbook multiplication,
//! shift–subtract division, binary GCD): the magnitudes arising in the
//! reproduction are a few thousand bits, where asymptotically fancy
//! algorithms would not pay for themselves.

pub mod bigint;
pub mod biguint;
pub mod combinatorics;
pub mod linalg;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use combinatorics::{binomial, factorial, FactorialTable};
pub use linalg::RationalMatrix;
pub use rational::BigRational;
