//! Exact arbitrary-precision arithmetic for `cqshap`.
//!
//! Shapley values of database facts are exact rational numbers whose
//! numerators and denominators involve factorials of the number of
//! endogenous facts (e.g. `-3/28` in the paper's running example, or
//! `n!·n!/(2n+1)!` in the gap-property construction of Theorem 5.1).
//! Floating point is far too lossy for the paper's identities — the whole
//! point of several experiments is to verify *exact* equalities — so this
//! crate provides:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers,
//! * [`BigInt`] — signed integers,
//! * [`BigRational`] — normalized rationals,
//! * [`FactorialTable`] and [`binomial`] — exact combinatorics,
//! * [`poly`] — fast polynomial arithmetic over `BigUint` coefficient
//!   vectors: shape-dispatched multiplication (schoolbook below
//!   [`poly::KARATSUBA_MIN`] = 24 coefficients, then a work model
//!   choosing between schoolbook, Karatsuba, and a multi-prime NTT
//!   with CRT reconstruction), exact division, Pascal `[1, 1]` shifts,
//!   and parallel product / leave-one-out trees — the convolution
//!   subsystem behind the counting engines' `m ≥ 4096` regime,
//! * [`linalg`] — exact Gaussian elimination over the rationals, used to
//!   solve the linear-equation system of Lemma B.3.
//!
//! Scalar integer arithmetic stays simple (values `< 2^128` are stored
//! inline; larger ones use schoolbook limb multiplication,
//! shift–subtract division, binary GCD): individual magnitudes are a
//! few thousand bits, where the wins live in the *polynomial* layer —
//! [`poly`]'s sub-quadratic convolutions over whole coefficient
//! vectors — rather than in any single big-integer product.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bigint;
pub mod biguint;
pub mod cancel;
pub mod combinatorics;
pub mod error;
pub mod linalg;
pub mod poly;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use cancel::{Budget, CancelToken, Stopwatch};
pub use combinatorics::{binomial, factorial, BinomialCache, FactorialTable};
pub use error::NumericError;
pub use linalg::RationalMatrix;
pub use poly::Poly;
pub use rational::BigRational;
