//! Exact rational numbers, normalized to lowest terms with positive
//! denominator. These are the value type of every Shapley computation in
//! the workspace.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, Sign};
use crate::biguint::{BigUint, ParseBigUintError};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) = 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigUint,
}

impl BigRational {
    /// The value `0`.
    pub fn zero() -> Self {
        BigRational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigRational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den`, normalizing.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let num = if den.is_negative() { -num } else { num };
        Self::from_parts(num, den.into_magnitude())
    }

    /// Builds `num / den` from parts already known to be in lowest
    /// terms — no gcd is computed. The factorial-denominator reduction
    /// ([`crate::FactorialTable::reduce_over_factorial`]) produces its
    /// parts coprime by construction and skips the normalization cost.
    ///
    /// # Panics
    /// Panics if `den` is zero; debug builds verify coprimality.
    pub fn from_coprime_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        debug_assert!(
            num.magnitude().gcd(&den).is_one(),
            "from_coprime_parts requires reduced parts"
        );
        BigRational { num, den }
    }

    /// Builds `num / den` from a signed numerator and unsigned denominator.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            BigRational { num, den }
        } else {
            let (nm, _) = num.magnitude().div_rem(&g);
            let (dn, _) = den.div_rem(&g);
            BigRational {
                num: BigInt::from_sign_magnitude(num.sign(), nm),
                den: dn,
            }
        }
    }

    /// Builds from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Self {
        BigRational {
            num: v.into(),
            den: BigUint::one(),
        }
    }

    /// Builds `p / q` from machine integers.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn from_i64_ratio(p: i64, q: i64) -> Self {
        Self::new(BigInt::from_i64(p), BigInt::from_i64(q))
    }

    /// The (normalized) numerator.
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// The (normalized, positive) denominator.
    pub fn denominator(&self) -> &BigUint {
        &self.den
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Is this strictly positive?
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn reciprocal(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational {
            num: BigInt::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// The *exact* rational value of a finite `f64`.
    ///
    /// Every finite double is a dyadic rational `±mantissa · 2^exp`, so
    /// the conversion is lossless: `from_f64(v).unwrap().to_f64() == v`.
    /// Returns `None` for NaN and the infinities. This is the bridge
    /// between user-facing `f64` probabilities and the exact
    /// [`BigRational`] arithmetic of the probability evaluation domain.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Self::zero());
        }
        let bits = v.to_bits();
        let negative = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // IEEE 754 binary64: normal values carry an implicit leading
        // bit; subnormals do not and share the minimum exponent.
        let (mantissa, exp) = if exp_bits == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let mag = BigUint::from_u64(mantissa);
        let (num_mag, den) = if exp >= 0 {
            (&mag << exp as usize, BigUint::one())
        } else {
            (mag, BigUint::one() << (-exp) as usize)
        };
        let sign = if negative { Sign::Minus } else { Sign::Plus };
        Some(Self::from_parts(
            BigInt::from_sign_magnitude(sign, num_mag),
            den,
        ))
    }

    /// Nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Scale so both parts stay within f64 range.
        let nb = self.num.magnitude().bit_len() as i64;
        let db = self.den.bit_len() as i64;
        let excess_n = (nb - 900).max(0) as usize;
        let excess_d = (db - 900).max(0) as usize;
        let shift = excess_n.min(excess_d);
        let n = (self.num.magnitude() >> shift).to_f64();
        let d = (&self.den >> shift).to_f64();
        let mut v = n / d;
        // If one side still overflowed, fall back to a log-space estimate.
        if !v.is_finite() || v == 0.0 {
            let ln = self.num.magnitude().ln_f64() - self.den.ln_f64();
            v = ln.exp();
        }
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Natural logarithm of the absolute value, as `f64`.
    pub fn ln_abs_f64(&self) -> f64 {
        self.num.magnitude().ln_f64() - self.den.ln_f64()
    }

    fn add_ref(&self, other: &BigRational) -> BigRational {
        // num1/den1 + num2/den2 = (num1·den2 + num2·den1)/(den1·den2)
        let n = &self.num * BigInt::from_biguint(other.den.clone())
            + &other.num * BigInt::from_biguint(self.den.clone());
        Self::from_parts(n, &self.den * &other.den)
    }

    fn mul_ref(&self, other: &BigRational) -> BigRational {
        Self::from_parts(&self.num * &other.num, &self.den * &other.den)
    }

    fn div_ref(&self, other: &BigRational) -> BigRational {
        self.mul_ref(&other.reciprocal())
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    /// Panics on `0.pow(negative)`.
    pub fn pow(&self, exp: i32) -> BigRational {
        if exp == 0 {
            return BigRational::one();
        }
        let base = if exp < 0 {
            self.reciprocal()
        } else {
            self.clone()
        };
        let e = exp.unsigned_abs();
        let num_mag = base.num.magnitude().pow(e);
        let sign = if base.num.is_negative() && e % 2 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        BigRational {
            num: BigInt::from_sign_magnitude(sign, num_mag),
            den: base.den.pow(e),
        }
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b,d > 0)  ⟺  a·d vs c·b
        let lhs = &self.num * BigInt::from_biguint(other.den.clone());
        let rhs = &other.num * BigInt::from_biguint(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $impl_expr:expr) => {
        impl $trait<&BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                let f: fn(&BigRational, &BigRational) -> BigRational = $impl_expr;
                f(self, rhs)
            }
        }
        impl $trait<BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, |a, b| a.add_ref(b));
forward_rat_binop!(Sub, sub, |a, b| a.add_ref(&-b));
forward_rat_binop!(Mul, mul, |a, b| a.mul_ref(b));
forward_rat_binop!(Div, div, |a, b| a.div_ref(b));

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, rhs: &BigRational) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, rhs: &BigRational) {
        *self = self.add_ref(&-rhs);
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_int(BigInt::from_i64(v))
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_int(v)
    }
}

impl From<BigUint> for BigRational {
    fn from(v: BigUint) -> Self {
        BigRational::from_int(BigInt::from_biguint(v))
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl FromStr for BigRational {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(BigRational::from_int(s.parse::<BigInt>()?)),
            Some((n, d)) => {
                let num: BigInt = n.parse()?;
                let den: BigUint = d.parse()?;
                if den.is_zero() {
                    return Err(ParseBigUintError(s.to_string()));
                }
                Ok(BigRational::from_parts(num, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, 4), rat(1, -2));
        assert_eq!(rat(0, 5), BigRational::zero());
        assert_eq!(rat(6, -4).to_string(), "-3/2");
    }

    #[test]
    fn field_operations() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(rat(-3, 28) + rat(3, 28), BigRational::zero());
    }

    #[test]
    fn running_example_sum_is_one() {
        // The eight Shapley values of Example 2.3 sum to 1.
        let values = [
            rat(-3, 28),
            rat(-2, 35),
            rat(0, 1),
            rat(37, 210),
            rat(37, 210),
            rat(27, 140),
            rat(13, 42),
            rat(13, 42),
        ];
        let sum = values.iter().fold(BigRational::zero(), |acc, v| acc + v);
        assert_eq!(sum, BigRational::one());
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < rat(1, 100));
    }

    #[test]
    fn reciprocal_and_pow() {
        assert_eq!(rat(2, 3).reciprocal(), rat(3, 2));
        assert_eq!(rat(-2, 3).reciprocal(), rat(-3, 2));
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(-2, 3).pow(3), rat(-8, 27));
        assert_eq!(rat(5, 7).pow(0), BigRational::one());
    }

    #[test]
    fn to_f64() {
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((rat(-13, 42).to_f64() + 13.0 / 42.0).abs() < 1e-15);
        // Tiny value: n!n!/(2n+1)! for n = 64 is about 2^-126.
        let f = crate::combinatorics::factorial(64);
        let v = BigRational::from_parts(
            BigInt::from_biguint(&f * &f),
            crate::combinatorics::factorial(129),
        );
        let approx = v.to_f64();
        assert!(approx > 0.0 && approx < 2f64.powi(-120), "{approx}");
    }

    #[test]
    fn from_f64_is_exact() {
        assert_eq!(BigRational::from_f64(0.0), Some(BigRational::zero()));
        assert_eq!(BigRational::from_f64(1.0), Some(BigRational::one()));
        assert_eq!(BigRational::from_f64(0.5), Some(rat(1, 2)));
        assert_eq!(BigRational::from_f64(-0.75), Some(rat(-3, 4)));
        assert_eq!(BigRational::from_f64(3.0), Some(rat(3, 1)));
        assert_eq!(BigRational::from_f64(f64::NAN), None);
        assert_eq!(BigRational::from_f64(f64::INFINITY), None);
        // Round-trips exactly, including non-dyadic-looking literals
        // (0.1 is really 3602879701896397/2^55) and extreme magnitudes.
        for v in [
            0.1,
            0.3,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            123456.789,
        ] {
            let r = BigRational::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v, "{v}");
        }
    }

    #[test]
    fn parse_round_trip() {
        for s in ["0", "-3/28", "37/210", "5", "-7"] {
            let v: BigRational = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("1/0".parse::<BigRational>().is_err());
    }
}
