//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, kept normalized (no trailing zero limbs, so
//! zero is the empty limb vector). Multiplication is schoolbook via `u128`
//! partial products; division is shift–subtract over limbs; GCD is Stein's
//! binary algorithm. All of these are `O(bits · limbs)` or better, which is
//! plenty for the few-thousand-bit magnitudes produced by the Shapley
//! computations in this workspace.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; invariant: the last limb (if any) is nonzero.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds from a `usize`.
    #[inline]
    pub fn from_usize(v: usize) -> Self {
        Self::from_u64(v as u64)
    }

    /// Builds from little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Is this zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this one?
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Is this even? Zero is even.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Nearest `f64` (may overflow to `f64::INFINITY`).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => self.to_u128().unwrap() as f64,
            n => {
                // Take the top 128 bits and scale by the discarded limbs.
                let hi = self.limbs[n - 1] as u128;
                let mid = self.limbs[n - 2] as u128;
                let top = (hi << 64) | mid;
                top as f64 * 2f64.powi(64 * (n as i32 - 2))
            }
        }
    }

    /// Natural logarithm, as `f64` (`-inf` for zero).
    pub fn ln_f64(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bits = self.bit_len();
        if bits <= 1000 {
            self.to_f64().ln()
        } else {
            // Avoid f64 overflow: ln(x) = ln(x >> s) + s·ln 2.
            let shift = bits - 512;
            (self >> shift).to_f64().ln() + shift as f64 * std::f64::consts::LN_2
        }
    }

    #[allow(clippy::needless_range_loop)] // parallel iteration over two limb arrays
    fn add_ref(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies by a `u64` in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for l in &mut self.limbs {
            let cur = *l as u128 * m as u128 + carry;
            *l = cur as u64;
            carry = cur >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// `self * m` for a `u64` multiplier.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        let mut out = self.clone();
        out.mul_u64_assign(m);
        out
    }

    /// Divides in place by a nonzero `u64`, returning the remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64_assign(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for l in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *l as u128;
            *l = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem as u64
    }

    /// Shift left by `bits`.
    fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        if bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Shift right by `bits`.
    fn shr_bits(&self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new_carry = *l << (64 - bit_shift);
                *l = (*l >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Euclidean division: returns `(self / d, self % d)`.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (BigUint::zero(), self.clone());
        }
        if let Some(small) = d.to_u64() {
            let mut q = self.clone();
            let r = q.div_rem_u64_assign(small);
            return (q, BigUint::from_u64(r));
        }
        // Shift–subtract long division over bits.
        let shift = self.bit_len() - d.bit_len();
        let mut rem = self.clone();
        let mut quotient_bits = vec![0u64; shift / 64 + 1];
        let mut divisor = d.shl_bits(shift);
        for i in (0..=shift).rev() {
            if let Some(diff) = rem.checked_sub(&divisor) {
                rem = diff;
                quotient_bits[i / 64] |= 1u64 << (i % 64);
            }
            divisor = divisor.shr_bits(1);
        }
        (BigUint::from_limbs(quotient_bits), rem)
    }

    /// Greatest common divisor (binary / Stein algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let k = za.min(zb);
        a = a.shr_bits(za);
        b = b.shr_bits(zb);
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a");
            if b.is_zero() {
                return a.shl_bits(k);
            }
            b = b.shr_bits(b.trailing_zeros().unwrap());
        }
    }

    /// Raises to the power `exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        Self::from_usize(v)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_method(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Mul, mul, mul_ref);

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub<BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            chunks.push(cur.div_rem_u64_assign(CHUNK));
        }
        let mut s = String::new();
        for (i, c) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&c.to_string());
            } else {
                s.push_str(&format!("{c:019}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

/// Error parsing a [`BigUint`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError(pub String);

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid unsigned integer literal: {:?}", self.0)
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError(s.to_string()));
        }
        let mut out = BigUint::zero();
        for chunk in s.as_bytes().chunks(19) {
            let part: u64 = std::str::from_utf8(chunk)
                .expect("ascii digits")
                .parse()
                .expect("chunk of <=19 digits fits u64");
            out.mul_u64_assign(10u64.pow(chunk.len() as u32));
            out += &BigUint::from_u64(part);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        assert_eq!(&a + &b, BigUint::from_u128(1u128 << 64));
    }

    #[test]
    fn sub_underflow_is_none() {
        let a = BigUint::from_u64(3);
        let b = BigUint::from_u64(5);
        assert!(a.checked_sub(&b).is_none());
        assert_eq!(b.checked_sub(&a), Some(BigUint::from_u64(2)));
    }

    #[test]
    fn mul_cross_limb() {
        let a = BigUint::from_u128(u128::MAX);
        let sq = &a * &a;
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expected = (&(&BigUint::one() << 256) - &(&BigUint::one() << 129)) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn display_round_trip_large() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        assert_eq!(big(s).to_string(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("1000000000000000000000000000007");
        let (q, r) = a.div_rem(&BigUint::from_u64(13));
        assert_eq!(&q * &BigUint::from_u64(13) + r, a);
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = big("340282366920938463463374607431768211457123456789");
        let d = big("18446744073709551629");
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn div_by_zero_panics() {
        let a = BigUint::from_u64(10);
        let result = std::panic::catch_unwind(|| a.div_rem(&BigUint::zero()));
        assert!(result.is_err());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(36)),
            BigUint::from_u64(12)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from_u64(7)),
            BigUint::from_u64(7)
        );
        assert_eq!(
            BigUint::from_u64(7).gcd(&BigUint::zero()),
            BigUint::from_u64(7)
        );
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn shifts() {
        let a = big("987654321987654321987654321");
        assert_eq!(&(&a << 131) >> 131, a);
        assert_eq!(&a >> 1000, BigUint::zero());
        assert_eq!(&a << 0, a);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from_u64(2).pow(100), &BigUint::one() << 100);
        assert_eq!(BigUint::from_u64(7).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
    }

    #[test]
    fn to_f64_accuracy() {
        let a = BigUint::from_u64(1) << 200;
        let f = a.to_f64();
        assert!((f.log2() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ln_large_values() {
        let a = BigUint::from_u64(1) << 5000;
        let expected = 5000.0 * std::f64::consts::LN_2;
        assert!((a.ln_f64() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(big("100000000000000000000") > big("99999999999999999999"));
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn bits() {
        let a = BigUint::from_u64(0b1010);
        assert!(a.bit(1));
        assert!(!a.bit(0));
        assert!(a.is_even());
        assert_eq!(a.trailing_zeros(), Some(1));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }
}
