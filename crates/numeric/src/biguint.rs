//! Arbitrary-precision unsigned integers with an inline small-value
//! representation.
//!
//! Values that fit in a `u128` are stored inline (`Repr::Small`) with
//! no heap allocation; only values of three or more 64-bit limbs spill
//! into a little-endian limb vector (`Repr::Large`, kept normalized:
//! at least three limbs, the last nonzero). The counting pipeline spends
//! almost all of its time on single-word magnitudes — binomials, small
//! group counts, convolution partial sums — so the inline path turns the
//! hot add/mul/sub operations into plain `u128` arithmetic and removes
//! an allocation per intermediate value.
//!
//! Large-value arithmetic is unchanged from the classic limb algorithms:
//! schoolbook multiplication via `u128` partial products, shift–subtract
//! division, Stein's binary GCD. Every constructor normalizes, so the
//! representation is canonical and the derived `Eq`/`Hash` are sound.
// cqshap-lint: allow-file(no-panic-index) -- limb kernels index within lengths computed in the same expression

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// The canonical representation: `Small` iff the value fits in `u128`.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Any value `< 2^128`, stored inline.
    Small(u128),
    /// Little-endian limbs; invariant: `len >= 3` and the last limb is
    /// nonzero (so the value needs more than 128 bits).
    Large(Vec<u64>),
}

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    repr: Repr,
}

impl Default for BigUint {
    fn default() -> Self {
        Self::zero()
    }
}

/// Normalizes a limb vector into the canonical representation.
fn from_limb_vec(mut limbs: Vec<u64>) -> BigUint {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
    match limbs.len() {
        0 => BigUint::zero(),
        1 => BigUint {
            repr: Repr::Small(limbs[0] as u128),
        },
        2 => BigUint {
            repr: Repr::Small(limbs[0] as u128 | (limbs[1] as u128) << 64),
        },
        _ => BigUint {
            repr: Repr::Large(limbs),
        },
    }
}

/// `a + b` over little-endian limb slices.
fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = ai.overflowing_add(bi);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b` over limb slices; the caller guarantees `a >= b`.
fn sub_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    out
}

/// Schoolbook `a * b` over limb slices.
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        }
        ord => ord,
    }
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint {
            repr: Repr::Small(0),
        }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint {
            repr: Repr::Small(1),
        }
    }

    /// Builds from a `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        BigUint {
            repr: Repr::Small(v as u128),
        }
    }

    /// Builds from a `u128`.
    #[inline]
    pub fn from_u128(v: u128) -> Self {
        BigUint {
            repr: Repr::Small(v),
        }
    }

    /// Builds from a `usize`.
    #[inline]
    pub fn from_usize(v: usize) -> Self {
        Self::from_u64(v as u64)
    }

    /// Builds from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        from_limb_vec(limbs)
    }

    /// Calls `f` with the (normalized) little-endian limbs of `self`.
    /// Small values borrow a stack buffer; no allocation happens.
    /// Crate-internal: the polynomial NTT reduces coefficients modulo
    /// many primes straight off the limbs.
    pub(crate) fn with_limbs<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        match &self.repr {
            Repr::Small(v) => {
                let buf = [*v as u64, (*v >> 64) as u64];
                let len = if buf[1] != 0 {
                    2
                } else if buf[0] != 0 {
                    1
                } else {
                    0
                };
                f(&buf[..len])
            }
            Repr::Large(l) => f(l),
        }
    }

    /// Is this zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Is this one?
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Is this even? Zero is even.
    #[inline]
    pub fn is_even(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => v & 1 == 0,
            Repr::Large(l) => l[0] & 1 == 0,
        }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => 128 - v.leading_zeros() as usize,
            // cqshap-lint: allow(no-panic) -- Repr::Large is nonempty by representation invariant
            Repr::Large(l) => l.len() * 64 - l.last().expect("nonempty").leading_zeros() as usize,
        }
    }

    /// The value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        match &self.repr {
            Repr::Small(v) => i < 128 && (v >> i) & 1 == 1,
            Repr::Large(l) => {
                let (limb, off) = (i / 64, i % 64);
                l.get(limb).is_some_and(|x| (x >> off) & 1 == 1)
            }
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        match &self.repr {
            Repr::Small(0) => None,
            Repr::Small(v) => Some(v.trailing_zeros() as usize),
            Repr::Large(l) => {
                for (i, &x) in l.iter().enumerate() {
                    if x != 0 {
                        return Some(i * 64 + x.trailing_zeros() as usize);
                    }
                }
                // cqshap-lint: allow(no-panic) -- Repr::Large is nonzero by representation invariant
                unreachable!("Large is nonzero by invariant")
            }
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => u64::try_from(*v).ok(),
            Repr::Large(_) => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Large(_) => None,
        }
    }

    /// Nearest `f64` (may overflow to `f64::INFINITY`).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(v) => *v as f64,
            Repr::Large(l) => {
                // Take the top 128 bits and scale by the discarded limbs.
                let n = l.len();
                let hi = l[n - 1] as u128;
                let mid = l[n - 2] as u128;
                let top = (hi << 64) | mid;
                top as f64 * 2f64.powi(64 * (n as i32 - 2))
            }
        }
    }

    /// Natural logarithm, as `f64` (`-inf` for zero).
    pub fn ln_f64(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bits = self.bit_len();
        if bits <= 1000 {
            self.to_f64().ln()
        } else {
            // Avoid f64 overflow: ln(x) = ln(x >> s) + s·ln 2.
            let shift = bits - 512;
            (self >> shift).to_f64().ln() + shift as f64 * std::f64::consts::LN_2
        }
    }

    fn add_ref(&self, other: &BigUint) -> BigUint {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            match a.checked_add(*b) {
                Some(s) => return BigUint::from_u128(s),
                None => {
                    let s = a.wrapping_add(*b);
                    return BigUint {
                        repr: Repr::Large(vec![s as u64, (s >> 64) as u64, 1]),
                    };
                }
            }
        }
        self.with_limbs(|a| other.with_limbs(|b| from_limb_vec(add_limbs(a, b))))
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.checked_sub(*b).map(BigUint::from_u128),
            (Repr::Small(_), Repr::Large(_)) => None,
            (Repr::Large(a), Repr::Small(_)) => {
                Some(other.with_limbs(|b| from_limb_vec(sub_limbs(a, b))))
            }
            (Repr::Large(a), Repr::Large(b)) => match cmp_limbs(a, b) {
                Ordering::Less => None,
                _ => Some(from_limb_vec(sub_limbs(a, b))),
            },
        }
    }

    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(p) = a.checked_mul(*b) {
                return BigUint::from_u128(p);
            }
        }
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self.with_limbs(|a| other.with_limbs(|b| from_limb_vec(mul_limbs(a, b))))
    }

    /// Multiplies by a `u64` in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        match &mut self.repr {
            Repr::Small(v) => match v.checked_mul(m as u128) {
                Some(p) => *v = p,
                None => {
                    *self = self.with_limbs(|a| from_limb_vec(mul_limbs(a, &[m])));
                }
            },
            Repr::Large(l) => {
                if m == 0 {
                    *self = BigUint::zero();
                    return;
                }
                let mut carry = 0u128;
                for limb in l.iter_mut() {
                    let cur = *limb as u128 * m as u128 + carry;
                    *limb = cur as u64;
                    carry = cur >> 64;
                }
                if carry != 0 {
                    l.push(carry as u64);
                }
            }
        }
    }

    /// `self * m` for a `u64` multiplier.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        let mut out = self.clone();
        out.mul_u64_assign(m);
        out
    }

    /// The remainder `self mod d` without modifying or cloning `self` —
    /// the allocation-free divisibility probe behind the
    /// factorial-denominator reduction's prime trials.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        match &self.repr {
            Repr::Small(v) => (*v % d as u128) as u64,
            Repr::Large(l) => {
                let mut rem = 0u128;
                for limb in l.iter().rev() {
                    rem = ((rem << 64) | *limb as u128) % d as u128;
                }
                rem as u64
            }
        }
    }

    /// Divides in place by a nonzero `u64`, returning the remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64_assign(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        match &mut self.repr {
            Repr::Small(v) => {
                let rem = *v % d as u128;
                *v /= d as u128;
                rem as u64
            }
            Repr::Large(l) => {
                let mut rem = 0u128;
                for limb in l.iter_mut().rev() {
                    let cur = (rem << 64) | *limb as u128;
                    *limb = (cur / d as u128) as u64;
                    rem = cur % d as u128;
                }
                let out = rem as u64;
                if l.last() == Some(&0) {
                    *self = from_limb_vec(std::mem::take(l));
                }
                out
            }
        }
    }

    /// Shift left by `bits`.
    fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        if let Repr::Small(v) = &self.repr {
            if bits < 128 && v.leading_zeros() as usize >= bits {
                return BigUint::from_u128(v << bits);
            }
        }
        self.with_limbs(|l| {
            let (limb_shift, bit_shift) = (bits / 64, bits % 64);
            let mut out = vec![0u64; limb_shift];
            if bit_shift == 0 {
                out.extend_from_slice(l);
            } else {
                let mut carry = 0u64;
                for &x in l {
                    out.push((x << bit_shift) | carry);
                    carry = x >> (64 - bit_shift);
                }
                if carry != 0 {
                    out.push(carry);
                }
            }
            from_limb_vec(out)
        })
    }

    /// Shift right by `bits`.
    fn shr_bits(&self, bits: usize) -> BigUint {
        if bits == 0 {
            return self.clone();
        }
        if let Repr::Small(v) = &self.repr {
            return if bits >= 128 {
                BigUint::zero()
            } else {
                BigUint::from_u128(v >> bits)
            };
        }
        self.with_limbs(|l| {
            let (limb_shift, bit_shift) = (bits / 64, bits % 64);
            if limb_shift >= l.len() {
                return BigUint::zero();
            }
            let mut out: Vec<u64> = l[limb_shift..].to_vec();
            if bit_shift != 0 {
                let mut carry = 0u64;
                for x in out.iter_mut().rev() {
                    let new_carry = *x << (64 - bit_shift);
                    *x = (*x >> bit_shift) | carry;
                    carry = new_carry;
                }
            }
            from_limb_vec(out)
        })
    }

    /// Euclidean division: returns `(self / d, self % d)`.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (BigUint::zero(), self.clone());
        }
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &d.repr) {
            return (BigUint::from_u128(a / b), BigUint::from_u128(a % b));
        }
        if let Some(small) = d.to_u64() {
            let mut q = self.clone();
            let r = q.div_rem_u64_assign(small);
            return (q, BigUint::from_u64(r));
        }
        // Shift–subtract long division over bits.
        let shift = self.bit_len() - d.bit_len();
        let mut rem = self.clone();
        let mut quotient_bits = vec![0u64; shift / 64 + 1];
        let mut divisor = d.shl_bits(shift);
        for i in (0..=shift).rev() {
            if let Some(diff) = rem.checked_sub(&divisor) {
                rem = diff;
                quotient_bits[i / 64] |= 1u64 << (i % 64);
            }
            divisor = divisor.shr_bits(1);
        }
        (from_limb_vec(quotient_bits), rem)
    }

    /// Greatest common divisor (binary / Stein algorithm; pure `u128`
    /// arithmetic when both values are small).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (mut a, mut b) = (*a, *b);
            let k = (a | b).trailing_zeros();
            a >>= a.trailing_zeros();
            loop {
                b >>= b.trailing_zeros();
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                b -= a;
                if b == 0 {
                    return BigUint::from_u128(a << k);
                }
            }
        }
        let mut a = self.clone();
        let mut b = other.clone();
        // cqshap-lint: allow(no-panic) -- both operands were checked nonzero at the top of gcd
        let za = a.trailing_zeros().expect("nonzero");
        // cqshap-lint: allow(no-panic) -- both operands were checked nonzero at the top of gcd
        let zb = b.trailing_zeros().expect("nonzero");
        let k = za.min(zb);
        a = a.shr_bits(za);
        b = b.shr_bits(zb);
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            // cqshap-lint: allow(no-panic) -- the branch above orders a <= b before subtracting
            b = b.checked_sub(&a).expect("b >= a");
            if b.is_zero() {
                return a.shl_bits(k);
            }
            // cqshap-lint: allow(no-panic) -- b stays nonzero inside the loop
            b = b.shr_bits(b.trailing_zeros().expect("nonzero"));
        }
    }

    /// Raises to the power `exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // A canonical Large value always exceeds 2^128 - 1.
            (Repr::Small(_), Repr::Large(_)) => Ordering::Less,
            (Repr::Large(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Large(a), Repr::Large(b)) => cmp_limbs(a, b),
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        Self::from_usize(v)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_method(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Mul, mul, mul_ref);

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            // cqshap-lint: allow(no-panic) -- documented panic: Sub mirrors std unsigned underflow; checked_sub is the fallible path
            .expect("BigUint subtraction underflow")
    }
}

impl Sub<BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(s) = a.checked_add(*b) {
                *a = s;
                return;
            }
        }
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            // Forward the formatter itself so width/fill/alignment apply.
            Repr::Small(v) => fmt::Display::fmt(v, f),
            Repr::Large(_) => {
                // Peel off 19 decimal digits at a time (10^19 fits in u64).
                const CHUNK: u64 = 10_000_000_000_000_000_000;
                let mut chunks = Vec::new();
                let mut cur = self.clone();
                while !cur.is_zero() {
                    chunks.push(cur.div_rem_u64_assign(CHUNK));
                }
                let mut s = String::new();
                for (i, c) in chunks.iter().rev().enumerate() {
                    if i == 0 {
                        s.push_str(&c.to_string());
                    } else {
                        s.push_str(&format!("{c:019}"));
                    }
                }
                // The Small arm forwards to u128's Display, which honors
                // width/fill/alignment — do the same here so formatting
                // is consistent across the 2^128 boundary.
                f.pad_integral(true, "", &s)
            }
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

/// Error parsing a [`BigUint`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError(pub String);

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid unsigned integer literal: {:?}", self.0)
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError(s.to_string()));
        }
        let mut out = BigUint::zero();
        for chunk in s.as_bytes().chunks(19) {
            let part: u64 = std::str::from_utf8(chunk)
                // cqshap-lint: allow(no-panic) -- the radix loop feeds only ascii digits here
                .expect("ascii digits")
                .parse()
                // cqshap-lint: allow(no-panic) -- 19 decimal digits always fit in a u64
                .expect("chunk of <=19 digits fits u64");
            out.mul_u64_assign(10u64.pow(chunk.len() as u32));
            out += &BigUint::from_u64(part);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        assert_eq!(&a + &b, BigUint::from_u128(1u128 << 64));
    }

    #[test]
    fn add_across_the_inline_boundary() {
        let max = BigUint::from_u128(u128::MAX);
        let two_128 = &max + &BigUint::one();
        assert_eq!(two_128.bit_len(), 129);
        assert_eq!(two_128.to_u128(), None);
        assert_eq!(two_128.checked_sub(&BigUint::one()), Some(max.clone()));
        assert_eq!(&two_128 + &two_128, BigUint::one() << 129);
        // Re-entering the inline range after a large intermediate.
        assert_eq!((&two_128 - &BigUint::one()).to_u128(), Some(u128::MAX));
        let mut aa = max.clone();
        aa += &max;
        assert_eq!(aa, &max * &BigUint::from_u64(2));
    }

    #[test]
    fn sub_underflow_is_none() {
        let a = BigUint::from_u64(3);
        let b = BigUint::from_u64(5);
        assert!(a.checked_sub(&b).is_none());
        assert_eq!(b.checked_sub(&a), Some(BigUint::from_u64(2)));
        let large = BigUint::one() << 200;
        assert!(a.checked_sub(&large).is_none());
        assert_eq!(
            large.checked_sub(&large.clone()),
            Some(BigUint::zero()),
            "large - large normalizes back to the inline zero"
        );
    }

    #[test]
    fn mul_cross_limb() {
        let a = BigUint::from_u128(u128::MAX);
        let sq = &a * &a;
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expected = (&(&BigUint::one() << 256) - &(&BigUint::one() << 129)) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn mul_u64_promotes_and_demotes() {
        let mut v = BigUint::from_u128(u128::MAX / 2);
        v.mul_u64_assign(8); // spills past u128
        assert_eq!(v.bit_len(), 130);
        assert_eq!(v.div_rem_u64_assign(8), 0);
        assert_eq!(v.to_u128(), Some(u128::MAX / 2));
        let mut z = BigUint::one() << 200;
        z.mul_u64_assign(0);
        assert!(z.is_zero());
    }

    #[test]
    fn display_round_trip_large() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        assert_eq!(big(s).to_string(), s);
    }

    #[test]
    fn display_flags_consistent_across_the_boundary() {
        let small = BigUint::from_u64(42);
        let large = BigUint::one() << 130;
        assert_eq!(format!("{small:>6}"), "    42");
        assert_eq!(format!("{large:>45}"), format!("{:>45}", large.to_string()));
        assert_eq!(format!("{small:06}"), "000042");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("1000000000000000000000000000007");
        let (q, r) = a.div_rem(&BigUint::from_u64(13));
        assert_eq!(&q * &BigUint::from_u64(13) + r, a);
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = big("340282366920938463463374607431768211457123456789");
        let d = big("18446744073709551629");
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn div_rem_multi_limb_divisor() {
        let a = BigUint::one() << 300;
        let d = (BigUint::one() << 140) + BigUint::from_u64(17);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn div_by_zero_panics() {
        let a = BigUint::from_u64(10);
        let result = std::panic::catch_unwind(|| a.div_rem(&BigUint::zero()));
        assert!(result.is_err());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(36)),
            BigUint::from_u64(12)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from_u64(7)),
            BigUint::from_u64(7)
        );
        assert_eq!(
            BigUint::from_u64(7).gcd(&BigUint::zero()),
            BigUint::from_u64(7)
        );
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
        // Mixed small/large and large/large agreement with the definition.
        let b = (BigUint::one() << 200) * BigUint::from_u64(12);
        assert_eq!(b.gcd(&BigUint::from_u64(36)), BigUint::from_u64(12));
        let g = (BigUint::one() << 130) * BigUint::from_u64(3);
        assert_eq!(
            (&g * &BigUint::from_u64(4)).gcd(&(&g * &BigUint::from_u64(6))),
            &g * &BigUint::from_u64(2)
        );
    }

    #[test]
    fn shifts() {
        let a = big("987654321987654321987654321");
        assert_eq!(&(&a << 131) >> 131, a);
        assert_eq!(&a >> 1000, BigUint::zero());
        assert_eq!(&a << 0, a);
        // Inline shift that stays inline vs one that spills.
        let b = BigUint::from_u64(3);
        assert_eq!((&b << 120).bit_len(), 122);
        assert_eq!((&b << 127).bit_len(), 129);
        assert_eq!(&(&b << 127) >> 127, b);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from_u64(2).pow(100), &BigUint::one() << 100);
        assert_eq!(BigUint::from_u64(7).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
    }

    #[test]
    fn to_f64_accuracy() {
        let a = BigUint::from_u64(1) << 200;
        let f = a.to_f64();
        assert!((f.log2() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ln_large_values() {
        let a = BigUint::from_u64(1) << 5000;
        let expected = 5000.0 * std::f64::consts::LN_2;
        assert!((a.ln_f64() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(big("100000000000000000000") > big("99999999999999999999"));
        assert!(BigUint::zero() < BigUint::one());
        assert!(BigUint::from_u128(u128::MAX) < BigUint::one() << 128);
        assert!(BigUint::one() << 129 > BigUint::one() << 128);
    }

    #[test]
    fn bits() {
        let a = BigUint::from_u64(0b1010);
        assert!(a.bit(1));
        assert!(!a.bit(0));
        assert!(a.is_even());
        assert_eq!(a.trailing_zeros(), Some(1));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        let l = BigUint::one() << 192;
        assert!(l.bit(192));
        assert!(!l.bit(0));
        assert_eq!(l.trailing_zeros(), Some(192));
    }

    #[test]
    fn from_limbs_normalizes_into_inline() {
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]), BigUint::from_u64(5));
        assert_eq!(BigUint::from_limbs(vec![]), BigUint::zero());
        assert_eq!(
            BigUint::from_limbs(vec![1, 2, 0, 0]),
            BigUint::from_u128(1 | 2u128 << 64)
        );
        let three = BigUint::from_limbs(vec![0, 0, 1]);
        assert_eq!(three, BigUint::one() << 128);
    }
}
