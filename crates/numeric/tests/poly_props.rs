//! Property tests pinning the `poly` subsystem's backends to each
//! other and to their inverses.
//!
//! The engines' correctness rests on every backend being *bit-identical*
//! to the schoolbook convolution — coefficient vectors are exact
//! subset counts, and a single off-by-one would silently corrupt
//! Shapley values. The strategies deliberately cross the
//! representation boundaries: coefficients range from zero through
//! multi-limb values beyond `2^128`, so the NTT's CRT reconstruction
//! must stitch several 62-bit primes back into inline *and* heap
//! `BigUint`s.

use cqshap_numeric::poly::{self, Backend};
use cqshap_numeric::BigUint;
use proptest::prelude::*;

/// A coefficient anywhere from 0 to ~2^200 (bit length varied so both
/// the inline `u128` and the multi-limb representations appear).
fn arb_coeff() -> impl Strategy<Value = BigUint> {
    (any::<u64>(), any::<u64>(), 0usize..=72).prop_map(|(lo, hi, extra_shift)| {
        // Shifting a u128 left by up to 72 bits crosses 2^128 — the
        // CRT must reconstruct more than two limbs.
        BigUint::from_u128(lo as u128 | (hi as u128) << 64) << extra_shift
    })
}

fn arb_poly(max_len: usize) -> impl Strategy<Value = Vec<BigUint>> {
    prop::collection::vec(arb_coeff(), 1..=max_len)
}

/// Small-coefficient polynomials shaped like the engines'
/// unsatisfying-count vectors.
fn arb_count_poly() -> impl Strategy<Value = Vec<BigUint>> {
    prop::collection::vec((0u64..=6).prop_map(BigUint::from_u64), 1..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Karatsuba, the NTT, and the Auto dispatch agree with schoolbook
    /// bit-for-bit — including coefficients past 2^128 (multi-prime
    /// CRT) and interior zeros.
    #[test]
    fn backends_agree_with_schoolbook(a in arb_poly(40), b in arb_poly(40)) {
        let want = poly::mul_with(&a, &b, Backend::Schoolbook);
        prop_assert_eq!(&poly::mul_with(&a, &b, Backend::Karatsuba), &want);
        prop_assert_eq!(&poly::mul_with(&a, &b, Backend::Ntt), &want);
        prop_assert_eq!(&poly::mul(&a, &b), &want);
    }

    /// `exact_div` inverts every backend's product, and the Pascal
    /// fast paths match their generic counterparts.
    #[test]
    fn exact_div_round_trips(a in arb_poly(24), b in arb_poly(24)) {
        prop_assume!(a.iter().any(|c| !c.is_zero()));
        for backend in [Backend::Schoolbook, Backend::Karatsuba, Backend::Ntt] {
            let prod = poly::mul_with(&a, &b, backend);
            let quotient = poly::exact_div(&prod, &a);
            prop_assert_eq!(quotient.as_ref(), Some(&b));
        }
        let one_one = vec![BigUint::one(), BigUint::one()];
        let up = poly::pascal_up(&a);
        prop_assert_eq!(&up, &poly::mul_with(&a, &one_one, Backend::Schoolbook));
        let down = poly::pascal_down(&up);
        prop_assert_eq!(down.as_ref(), Some(&a));
        prop_assert_eq!(poly::pascal_down(&up), poly::exact_div(&up, &one_one));
    }

    /// The parallel product tree and the leave-one-out environments
    /// (division-based, with the descent fallback) match the naive
    /// fold for every thread cap.
    #[test]
    fn trees_match_naive_folds(
        polys in prop::collection::vec(arb_count_poly(), 0..=10),
        seed in arb_count_poly(),
        threads in 1usize..=4,
    ) {
        let refs: Vec<&[BigUint]> = polys.iter().map(|p| p.as_slice()).collect();
        let naive = refs.iter().fold(vec![BigUint::one()], |acc, p| {
            poly::mul_with(&acc, p, Backend::Schoolbook)
        });
        prop_assert_eq!(&poly::product_tree(&refs, threads), &naive);
        let envs = poly::leave_one_out_products(&refs, &seed, threads);
        prop_assert_eq!(envs.len(), refs.len());
        for (i, env) in envs.iter().enumerate() {
            let mut want = seed.clone();
            for (j, p) in refs.iter().enumerate() {
                if j != i {
                    want = poly::mul_with(&want, p, Backend::Schoolbook);
                }
            }
            prop_assert_eq!(env, &want, "environment {}", i);
        }
    }
}
