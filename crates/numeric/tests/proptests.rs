//! Property-based tests for the exact arithmetic substrate.

use cqshap_numeric::{binomial, BigInt, BigRational, BigUint, FactorialTable, RationalMatrix};
use proptest::prelude::*;

fn arb_biguint() -> impl Strategy<Value = BigUint> {
    // Mix of small values and multi-limb values.
    prop::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs)
}

#[allow(dead_code)]
fn arb_bigint() -> impl Strategy<Value = BigInt> {
    (arb_biguint(), any::<bool>()).prop_map(|(m, neg)| {
        let b = BigInt::from_biguint(m);
        if neg {
            -b
        } else {
            b
        }
    })
}

fn arb_rational() -> impl Strategy<Value = BigRational> {
    (any::<i64>(), 1..=u32::MAX)
        .prop_map(|(p, q)| BigRational::new(BigInt::from_i64(p), BigInt::from_u64(q as u64)))
}

proptest! {
    #[test]
    fn uint_add_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn uint_add_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn uint_mul_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn uint_mul_distributes(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn uint_sub_inverts_add(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn uint_div_rem_invariant(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn uint_gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn uint_gcd_is_greatest_via_coprimality(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        let (qa, _) = a.div_rem(&g);
        let (qb, _) = b.div_rem(&g);
        prop_assert_eq!(qa.gcd(&qb), BigUint::one());
    }

    #[test]
    fn uint_string_round_trip(a in arb_biguint()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn uint_shift_round_trip(a in arb_biguint(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn int_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from_i64(a), BigInt::from_i64(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba - &bb).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn int_div_rem_truncated(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = BigInt::from_i64(a).div_rem(&BigInt::from_i64(b));
        prop_assert_eq!(q.to_i64().unwrap(), a / b);
        prop_assert_eq!(r.to_i64().unwrap(), a % b);
    }

    #[test]
    fn rational_add_commutes(a in arb_rational(), b in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn rational_add_associates(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn rational_mul_distributes(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rational_sub_then_add_round_trips(a in arb_rational(), b in arb_rational()) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn rational_div_inverts_mul(a in arb_rational(), b in arb_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(&(&a * &b) / &b, a);
    }

    #[test]
    fn rational_normalized(a in arb_rational()) {
        prop_assert_eq!(
            a.numerator().magnitude().gcd(a.denominator()),
            if a.is_zero() { a.denominator().clone() } else { BigUint::one() }
        );
    }

    #[test]
    fn rational_to_f64_close(p in -100_000i64..100_000, q in 1i64..100_000) {
        let r = BigRational::from_i64_ratio(p, q);
        let f = p as f64 / q as f64;
        prop_assert!((r.to_f64() - f).abs() <= f.abs() * 1e-12 + 1e-300);
    }

    #[test]
    fn binomial_pascal(n in 1usize..40, k in 0usize..40) {
        prop_assume!(k <= n && k >= 1);
        prop_assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }

    /// The Legendre-factorization reduction of `num / m!` must equal the
    /// general gcd normalization bit for bit — including numerators that
    /// share big factorial chunks with the denominator (the typical
    /// Shapley shape) and negative ones.
    #[test]
    fn reduce_over_factorial_matches_gcd(
        m in 0usize..60,
        a in -1_000_000i64..1_000_000,
        k in 0usize..60,
    ) {
        let table = FactorialTable::new(m);
        let k = k.min(m);
        // num = a · k! — arbitrary sign, factorial-structured magnitude.
        let num = BigInt::from_i64(a) * BigInt::from_biguint(table.factorial(k).clone());
        let fast = table.reduce_over_factorial(num.clone(), m);
        let slow = BigRational::from_parts(num, table.factorial(m).clone());
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn solve_recovers_solution(seed in any::<u64>()) {
        // Build a small pseudo-random system from the seed; skip singular.
        let n = 4usize;
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 19) - 9
        };
        let a = RationalMatrix::from_fn(n, n, |_, _| BigRational::from(next()));
        let x: Vec<_> = (0..n).map(|_| BigRational::from(next())).collect();
        if a.determinant().unwrap() != BigRational::zero() {
            let b = a.mul_vec(&x).unwrap();
            prop_assert_eq!(a.solve(&b).unwrap(), x);
        }
    }
}
