//! Relational substrate for `cqshap`.
//!
//! The paper's data model (Section 2): a database `D` is a finite set of
//! facts over a relational schema, partitioned into *exogenous* facts `Dx`
//! (taken as given, never hypothesized away) and *endogenous* facts `Dn`
//! (the players of the Shapley cooperative game). Section 4 additionally
//! fixes a set `X` of *exogenous relations* that may only contain exogenous
//! facts.
//!
//! This crate provides:
//!
//! * [`Interner`] — constants are interned strings ([`ConstId`]);
//! * [`Schema`] / [`RelId`] — relation symbols with fixed arities;
//! * [`Database`] — fact storage with the endogenous/exogenous partition,
//!   exogenous-relation declarations, membership indexes, and
//!   modified-copy helpers used by the Shapley reduction;
//! * [`World`] / [`BitSet`] — subsets `E ⊆ Dn` as compact bitsets;
//! * [`FactMask`] — zero-copy single-fact modified views (`D ∖ {f}`,
//!   `f` exogenized) that replace per-fact database clones in the
//!   Shapley reduction;
//! * [`complement`] — active-domain complement materialization (used by
//!   the `ExoShap` rewriting and several hardness proofs);
//! * a line-oriented text format for databases (`Database::parse`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitset;
pub mod complement;
pub mod database;
pub mod error;
pub mod fact;
pub mod interner;
pub mod mask;
pub mod parser;
pub mod schema;
pub mod world;

pub use bitset::BitSet;
pub use database::Database;
pub use error::DbError;
pub use fact::{Fact, FactId, Provenance, Tuple};
pub use interner::{ConstId, Interner};
pub use mask::FactMask;
pub use schema::{RelId, RelationDef, Schema};
pub use world::World;
