//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by database construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A relation was redeclared with a different arity, or a fact's tuple
    /// width disagrees with its relation.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Offending arity.
        got: usize,
    },
    /// The same `(relation, tuple)` fact was inserted twice.
    DuplicateFact {
        /// Rendered fact, e.g. `Reg(Adam, OS)`.
        fact: String,
    },
    /// An endogenous fact was inserted into a declared exogenous relation,
    /// or a relation with endogenous facts was declared exogenous.
    ExogenousViolation {
        /// Relation name.
        relation: String,
    },
    /// An unknown relation name was referenced.
    UnknownRelation {
        /// Relation name.
        relation: String,
    },
    /// A fact id out of range or otherwise invalid for this database.
    UnknownFact {
        /// The raw fact id.
        id: u32,
    },
    /// A materialization (complement / join / product) exceeded the
    /// configured tuple budget.
    BudgetExceeded {
        /// What was being materialized.
        context: String,
        /// The configured budget.
        budget: usize,
        /// The size that would have been produced.
        required: usize,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation {relation}: arity mismatch (declared {expected}, got {got})"
                )
            }
            DbError::DuplicateFact { fact } => write!(f, "duplicate fact {fact}"),
            DbError::ExogenousViolation { relation } => {
                write!(
                    f,
                    "relation {relation} is exogenous but holds/receives endogenous facts"
                )
            }
            DbError::UnknownRelation { relation } => write!(f, "unknown relation {relation}"),
            DbError::UnknownFact { id } => write!(f, "unknown fact id {id}"),
            DbError::BudgetExceeded {
                context,
                budget,
                required,
            } => {
                write!(f, "{context}: needs {required} tuples, budget is {budget}")
            }
            DbError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for DbError {}
