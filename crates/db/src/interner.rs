//! Constant interning.
//!
//! Database values ("constants" in the paper) are interned strings, so
//! tuples are compact `u32` vectors and comparisons are integer
//! comparisons. Each [`Database`](crate::Database) owns one interner.

use std::collections::HashMap;
use std::fmt;

/// An interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub u32);

impl ConstId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner for database constants.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, ConstId>,
    fresh_counter: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        // cqshap-lint: allow(no-panic) -- documented capacity limit: the constant id space is u32
        let id = ConstId(u32::try_from(self.names.len()).expect("too many constants"));
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned constant.
    pub fn get(&self, name: &str) -> Option<ConstId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: ConstId) -> &str {
        // cqshap-lint: allow(no-panic-index) -- documented panic: resolve requires an id issued by this interner
        &self.names[id.index()]
    }

    /// Number of distinct constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Mints a fresh constant guaranteed distinct from all interned ones,
    /// with a readable prefix (used by gadget constructions for the
    /// placeholder `⊙` and pair constants `⟨a,b⟩`).
    pub fn fresh(&mut self, prefix: &str) -> ConstId {
        loop {
            let candidate = format!("{prefix}#{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&candidate) {
                return self.intern(&candidate);
            }
        }
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ConstId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ConstId(i as u32), n.as_str()))
    }
}

impl fmt::Display for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} constants)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Adam");
        let b = i.intern("Ben");
        assert_ne!(a, b);
        assert_eq!(i.intern("Adam"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "Adam");
        assert_eq!(i.get("Ben"), Some(b));
        assert_eq!(i.get("Caroline"), None);
    }

    #[test]
    fn fresh_never_collides() {
        let mut i = Interner::new();
        i.intern("x#0");
        let f1 = i.fresh("x");
        let f2 = i.fresh("x");
        assert_ne!(f1, f2);
        assert_ne!(i.resolve(f1), "x#0");
        assert!(i.resolve(f1).starts_with("x#"));
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let names: Vec<_> = i.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
