//! Worlds: subsets of the endogenous facts.
//!
//! A query is always evaluated over `Dx ∪ E` for some `E ⊆ Dn`
//! (Definition of the wealth function `v` in Section 2). A [`World`] is
//! such an `E`, stored as a bitset over endogenous *positions* (the index
//! of a fact within [`Database::endo_facts`]).

use crate::bitset::BitSet;
use crate::database::Database;
use crate::fact::FactId;

/// A subset `E ⊆ Dn`, positionally indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    bits: BitSet,
}

impl World {
    /// The empty world `E = ∅` for `db`.
    pub fn empty(db: &Database) -> Self {
        World {
            bits: BitSet::new(db.endo_count()),
        }
    }

    /// The full world `E = Dn` for `db`.
    pub fn full(db: &Database) -> Self {
        World {
            bits: BitSet::full(db.endo_count()),
        }
    }

    /// Builds a world from endogenous fact ids.
    ///
    /// # Panics
    /// Panics if some id is not endogenous in `db`.
    pub fn from_fact_ids(db: &Database, ids: &[FactId]) -> Self {
        let mut w = Self::empty(db);
        for &id in ids {
            w.insert(db, id);
        }
        w
    }

    /// Inserts an endogenous fact; returns whether it was new.
    ///
    /// # Panics
    /// Panics if `id` is not endogenous in `db`.
    pub fn insert(&mut self, db: &Database, id: FactId) -> bool {
        // cqshap-lint: allow(no-panic) -- documented precondition: World members are endogenous facts
        let pos = db.endo_index(id).expect("fact is not endogenous");
        self.bits.insert(pos)
    }

    /// Removes an endogenous fact; returns whether it was present.
    ///
    /// # Panics
    /// Panics if `id` is not endogenous in `db`.
    pub fn remove(&mut self, db: &Database, id: FactId) -> bool {
        // cqshap-lint: allow(no-panic) -- documented precondition: World members are endogenous facts
        let pos = db.endo_index(id).expect("fact is not endogenous");
        self.bits.remove(pos)
    }

    /// Does the world contain the endogenous position `pos`?
    pub fn contains_pos(&self, pos: usize) -> bool {
        self.bits.contains(pos)
    }

    /// Does the world contain `id`? (False for exogenous facts; they are
    /// always present in evaluation but are not world members.)
    pub fn contains(&self, db: &Database, id: FactId) -> bool {
        db.endo_index(id).is_some_and(|p| self.bits.contains(p))
    }

    /// Number of endogenous facts in the world.
    pub fn len(&self) -> usize {
        self.bits.count()
    }

    /// Is the world empty?
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Iterates the member fact ids in endogenous order.
    pub fn iter_facts<'a>(&'a self, db: &'a Database) -> impl Iterator<Item = FactId> + 'a {
        // cqshap-lint: allow(no-panic-index) -- bit positions come from the world's own bitset, sized by endo_count
        self.bits.iter().map(move |pos| db.endo_facts()[pos])
    }

    /// Loads the low-64-bit mask (brute-force enumeration helper).
    ///
    /// # Panics
    /// Panics if `|Dn| > 64`.
    pub fn assign_mask(&mut self, mask: u64) {
        self.bits.assign_mask(mask);
    }

    /// The underlying bitset.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_exo("S", &["a"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        db.add_endo("R", &["b"]).unwrap();
        db.add_endo("T", &["a"]).unwrap();
        db
    }

    #[test]
    fn empty_full() {
        let d = db();
        assert_eq!(World::empty(&d).len(), 0);
        assert_eq!(World::full(&d).len(), 3);
    }

    #[test]
    fn insert_remove_by_fact_id() {
        let d = db();
        let ra = d.find_fact("R", &["a"]).unwrap();
        let mut w = World::empty(&d);
        assert!(w.insert(&d, ra));
        assert!(!w.insert(&d, ra));
        assert!(w.contains(&d, ra));
        let members: Vec<_> = w.iter_facts(&d).collect();
        assert_eq!(members, vec![ra]);
        assert!(w.remove(&d, ra));
        assert!(w.is_empty());
    }

    #[test]
    fn exogenous_fact_is_never_member() {
        let d = db();
        let s = d.find_fact("S", &["a"]).unwrap();
        let w = World::full(&d);
        assert!(!w.contains(&d, s));
    }

    #[test]
    #[should_panic(expected = "not endogenous")]
    fn inserting_exogenous_panics() {
        let d = db();
        let s = d.find_fact("S", &["a"]).unwrap();
        World::empty(&d).insert(&d, s);
    }
}
