//! Active-domain complement materialization.
//!
//! Several constructions in the paper replace a relation `R` by its
//! complement `R̄` over the active domain: the `ExoShap` rewriting
//! (Lemma C.3), the hardness proof for `q_R¬ST` (Lemma B.2), and the
//! Appendix C embedding. A complement of an arity-`a` relation over a
//! domain of `d` constants has `d^a − |R|` tuples, so materialization is
//! guarded by an explicit tuple budget.
// cqshap-lint: allow-file(no-panic-index) -- complement enumeration indexes within the universe fixed at construction

use crate::database::Database;
use crate::error::DbError;
use crate::fact::Tuple;
use crate::interner::ConstId;
use crate::schema::RelId;

/// Default budget for materialized tuple counts (complements, joins,
/// padding products). Large enough for every experiment in this
/// repository, small enough to fail fast on misuse.
pub const DEFAULT_TUPLE_BUDGET: usize = 10_000_000;

/// Enumerates all tuples over `domain^arity` in lexicographic order of
/// domain positions, calling `f` for each.
pub fn for_each_domain_tuple(domain: &[ConstId], arity: usize, mut f: impl FnMut(&[ConstId])) {
    if arity == 0 {
        f(&[]);
        return;
    }
    if domain.is_empty() {
        return;
    }
    let mut idx = vec![0usize; arity];
    let mut tuple: Vec<ConstId> = idx.iter().map(|&i| domain[i]).collect();
    loop {
        f(&tuple);
        // Odometer increment.
        let mut pos = arity;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < domain.len() {
                tuple[pos] = domain[idx[pos]];
                break;
            }
            idx[pos] = 0;
            tuple[pos] = domain[0];
        }
    }
}

/// Computes the tuples of the complement of `rel` in `db` over `domain`,
/// i.e. every tuple in `domain^arity` that is *not* a fact of `rel`.
///
/// # Errors
/// [`DbError::BudgetExceeded`] when `domain^arity > budget`.
pub fn complement_tuples(
    db: &Database,
    rel: RelId,
    domain: &[ConstId],
    budget: usize,
) -> Result<Vec<Tuple>, DbError> {
    let arity = db.schema().arity(rel);
    let total = domain.len().checked_pow(arity as u32).unwrap_or(usize::MAX);
    if total > budget {
        return Err(DbError::BudgetExceeded {
            context: format!("complement of {}", db.schema().name(rel)),
            budget,
            required: total,
        });
    }
    let mut out = Vec::new();
    for_each_domain_tuple(domain, arity, |vals| {
        let t = Tuple::new(vals);
        if db.lookup(rel, &t).is_none() {
            out.push(t);
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Provenance;

    #[test]
    fn domain_tuple_enumeration_counts() {
        let dom = [ConstId(0), ConstId(1), ConstId(2)];
        let mut n = 0;
        for_each_domain_tuple(&dom, 2, |_| n += 1);
        assert_eq!(n, 9);
        let mut n0 = 0;
        for_each_domain_tuple(&dom, 0, |t| {
            assert!(t.is_empty());
            n0 += 1;
        });
        assert_eq!(n0, 1);
        let mut ne = 0;
        for_each_domain_tuple(&[], 2, |_| ne += 1);
        assert_eq!(ne, 0);
    }

    #[test]
    fn complement_excludes_existing() {
        let mut db = Database::new();
        db.add_exo("S", &["a", "b"]).unwrap();
        db.add_exo("S", &["b", "b"]).unwrap();
        db.add_exo("T", &["c"]).unwrap(); // widen the domain to {a,b,c}
        let s = db.schema().id("S").unwrap();
        let dom = db.active_domain();
        let comp = complement_tuples(&db, s, &dom, 1000).unwrap();
        assert_eq!(comp.len(), 9 - 2);
        for t in &comp {
            assert!(db.lookup(s, t).is_none());
        }
        // Inserting the complement yields a full relation.
        for t in comp {
            db.insert_tuple(s, t, Provenance::Exogenous).unwrap();
        }
        assert_eq!(db.relation_facts(s).len(), 9);
    }

    #[test]
    fn budget_enforced() {
        let mut db = Database::new();
        db.add_exo("S", &["a", "b"]).unwrap();
        let s = db.schema().id("S").unwrap();
        let dom = db.active_domain();
        let err = complement_tuples(&db, s, &dom, 3).unwrap_err();
        assert!(matches!(
            err,
            DbError::BudgetExceeded {
                required: 4,
                budget: 3,
                ..
            }
        ));
    }
}
