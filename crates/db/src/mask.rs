//! Fact masks: zero-copy single-fact modifications of a database.
//!
//! The `|Sat|`-based Shapley reduction evaluates every endogenous fact
//! `f` against two modified databases — `D` with `f` removed and `D`
//! with `f` made exogenous. Materializing those copies
//! ([`Database::without_fact`] / [`Database::with_fact_exogenous`])
//! costs a full rebuild of the fact table and its indexes *per fact*;
//! a [`FactMask`] instead reinterprets the original database through a
//! view, so the counting algorithms can answer both modified instances
//! without cloning anything.

use crate::database::Database;
use crate::fact::FactId;

/// A single-fact reinterpretation of a database.
///
/// The mask never changes which tuples exist in relations from the
/// query evaluator's point of view *except* for [`FactMask::Removed`],
/// which hides one fact entirely; [`FactMask::Exogenous`] keeps the
/// fact present but moves it from `Dn` to `Dx`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FactMask {
    /// The identity view: the database as stored.
    #[default]
    None,
    /// The view of `D ∖ {f}`.
    Removed(FactId),
    /// The view in which `f` is exogenous (always present, not a player).
    Exogenous(FactId),
}

impl FactMask {
    /// The masked fact, if any.
    pub fn target(&self) -> Option<FactId> {
        match self {
            FactMask::None => None,
            FactMask::Removed(f) | FactMask::Exogenous(f) => Some(*f),
        }
    }

    /// Is `f` present in the masked database?
    pub fn admits(&self, f: FactId) -> bool {
        !matches!(self, FactMask::Removed(t) if *t == f)
    }

    /// Is `f` endogenous under the mask? (Removed or exogenized facts
    /// are not, nor are facts retracted in place; everything else
    /// follows the stored provenance.) Dangling ids — possible when `f`
    /// arrived from user input — are simply not endogenous, never a
    /// panic.
    pub fn is_endogenous(&self, db: &Database, f: FactId) -> bool {
        if self.target() == Some(f) || db.is_retracted(f) {
            return false;
        }
        db.try_fact(f)
            .is_ok_and(|fact| fact.provenance.is_endogenous())
    }

    /// `|Dn|` of the masked database.
    pub fn endo_count(&self, db: &Database) -> usize {
        let m = db.endo_count();
        match self.target() {
            Some(f) if db.endo_index(f).is_some() => m - 1,
            _ => m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_exo("S", &["a"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        db.add_endo("R", &["b"]).unwrap();
        db
    }

    #[test]
    fn identity_mask() {
        let d = db();
        let m = FactMask::None;
        assert_eq!(m.target(), None);
        assert_eq!(m.endo_count(&d), 2);
        for f in d.fact_ids() {
            assert!(m.admits(f));
            assert_eq!(m.is_endogenous(&d, f), d.fact(f).provenance.is_endogenous());
        }
    }

    #[test]
    fn removed_and_exogenous_masks() {
        let d = db();
        let ra = d.find_fact("R", &["a"]).unwrap();
        let rb = d.find_fact("R", &["b"]).unwrap();

        let rm = FactMask::Removed(ra);
        assert!(!rm.admits(ra));
        assert!(rm.admits(rb));
        assert!(!rm.is_endogenous(&d, ra));
        assert!(rm.is_endogenous(&d, rb));
        assert_eq!(rm.endo_count(&d), 1);

        let ex = FactMask::Exogenous(ra);
        assert!(ex.admits(ra));
        assert!(!ex.is_endogenous(&d, ra));
        assert!(ex.is_endogenous(&d, rb));
        assert_eq!(ex.endo_count(&d), 1);
    }

    #[test]
    fn dangling_ids_are_not_endogenous_instead_of_panicking() {
        let d = db();
        let dangling = FactId(d.fact_count() as u32 + 7);
        for m in [
            FactMask::None,
            FactMask::Removed(dangling),
            FactMask::Exogenous(dangling),
        ] {
            assert!(!m.is_endogenous(&d, dangling));
            assert!(d.try_fact(dangling).is_err());
        }
    }

    #[test]
    fn masking_an_exogenous_fact_keeps_the_count() {
        let d = db();
        let s = d.find_fact("S", &["a"]).unwrap();
        assert_eq!(FactMask::Removed(s).endo_count(&d), 2);
        assert_eq!(FactMask::Exogenous(s).endo_count(&d), 2);
    }
}
