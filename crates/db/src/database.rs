//! The database: facts with an endogenous/exogenous partition.
// cqshap-lint: allow-file(no-panic-index) -- fact and relation tables are indexed by ids this database issued

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::DbError;
use crate::fact::{Fact, FactId, Provenance, Tuple};
use crate::interner::{ConstId, Interner};
use crate::schema::{RelId, Schema};

/// A database `D = Dx ∪ Dn` over a schema, with optional exogenous-relation
/// declarations (the set `X` of Section 4 of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    schema: Schema,
    interner: Interner,
    facts: Vec<Fact>,
    by_relation: Vec<Vec<FactId>>,
    tuple_index: HashMap<(RelId, Tuple), FactId>,
    endo: Vec<FactId>,
    endo_pos: HashMap<FactId, usize>,
    exo_relations: HashSet<RelId>,
    /// Tombstones of retracted facts (indexed by [`FactId`]). Retraction
    /// keeps ids stable so compiled structures built before an update
    /// can be maintained incrementally instead of rebuilt.
    retracted: Vec<bool>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Schema & constants
    // ------------------------------------------------------------------

    /// Declares (or re-declares) a relation.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelId, DbError> {
        let id = self.schema.add_relation(name, arity)?;
        if id.index() >= self.by_relation.len() {
            self.by_relation.push(Vec::new());
        }
        Ok(id)
    }

    /// Declares `rel` as an exogenous relation (member of `X`).
    ///
    /// # Errors
    /// [`DbError::ExogenousViolation`] if it already has endogenous facts.
    pub fn declare_exogenous_relation(&mut self, rel: RelId) -> Result<(), DbError> {
        let has_endo = self.by_relation[rel.index()]
            .iter()
            .any(|&f| self.facts[f.index()].provenance.is_endogenous());
        if has_endo {
            return Err(DbError::ExogenousViolation {
                relation: self.schema.name(rel).to_string(),
            });
        }
        self.exo_relations.insert(rel);
        Ok(())
    }

    /// Is `rel` declared exogenous?
    pub fn is_exogenous_relation(&self, rel: RelId) -> bool {
        self.exo_relations.contains(&rel)
    }

    /// Names of all declared exogenous relations.
    pub fn exogenous_relation_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self
            .exo_relations
            .iter()
            .map(|&r| self.schema.name(r).to_string())
            .collect();
        names.sort();
        names
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constant interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (gadget builders mint fresh
    /// constants through this).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns a constant.
    pub fn intern(&mut self, name: &str) -> ConstId {
        self.interner.intern(name)
    }

    // ------------------------------------------------------------------
    // Fact insertion
    // ------------------------------------------------------------------

    /// Inserts a fact with interned constants.
    pub fn insert_tuple(
        &mut self,
        rel: RelId,
        tuple: Tuple,
        provenance: Provenance,
    ) -> Result<FactId, DbError> {
        let def = self.schema.def(rel);
        if tuple.arity() != def.arity {
            return Err(DbError::ArityMismatch {
                relation: def.name.clone(),
                expected: def.arity,
                got: tuple.arity(),
            });
        }
        if provenance.is_endogenous() && self.exo_relations.contains(&rel) {
            return Err(DbError::ExogenousViolation {
                relation: def.name.clone(),
            });
        }
        if self.tuple_index.contains_key(&(rel, tuple.clone())) {
            return Err(DbError::DuplicateFact {
                fact: self.render(rel, &tuple),
            });
        }
        // cqshap-lint: allow(no-panic) -- documented capacity limit: the fact id space is u32
        let id = FactId(u32::try_from(self.facts.len()).expect("too many facts"));
        self.tuple_index.insert((rel, tuple.clone()), id);
        self.by_relation[rel.index()].push(id);
        if provenance.is_endogenous() {
            self.endo_pos.insert(id, self.endo.len());
            self.endo.push(id);
        }
        self.facts.push(Fact {
            rel,
            tuple,
            provenance,
        });
        self.retracted.push(false);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // In-place updates (stable fact ids)
    // ------------------------------------------------------------------
    //
    // Unlike the modified-copy constructors below, these mutate the
    // database while keeping every other fact's id unchanged, so a
    // compiled Shapley engine can be *maintained* across the update
    // (see `cqshap_core::session::ShapleySession`).

    /// Retracts a fact in place, leaving a tombstone so every other
    /// fact's id stays valid. The fact disappears from its relation,
    /// the tuple index, and (if endogenous) `Dn`; its tuple may later be
    /// re-inserted under a fresh id.
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] on dangling or already-retracted ids.
    pub fn retract_fact(&mut self, f: FactId) -> Result<(), DbError> {
        if f.index() >= self.facts.len() || self.retracted[f.index()] {
            return Err(DbError::UnknownFact { id: f.0 });
        }
        let fact = &self.facts[f.index()];
        self.tuple_index.remove(&(fact.rel, fact.tuple.clone()));
        self.by_relation[fact.rel.index()].retain(|&id| id != f);
        if fact.provenance.is_endogenous() {
            self.remove_endo(f);
        }
        self.retracted[f.index()] = true;
        Ok(())
    }

    /// Flips a fact's provenance in place (endogenous ⇄ exogenous),
    /// keeping every fact id stable. Making a fact endogenous respects
    /// the declared exogenous relations; flipping to the provenance a
    /// fact already has is a no-op.
    ///
    /// Endogenous order: a fact flipped to endogenous joins the *end* of
    /// [`Database::endo_facts`]; a fact flipped to exogenous leaves it,
    /// shifting later positions down by one.
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] on dangling or retracted ids;
    /// [`DbError::ExogenousViolation`] when endogenizing a fact of a
    /// declared exogenous relation.
    pub fn set_fact_provenance(
        &mut self,
        f: FactId,
        provenance: Provenance,
    ) -> Result<(), DbError> {
        if f.index() >= self.facts.len() || self.retracted[f.index()] {
            return Err(DbError::UnknownFact { id: f.0 });
        }
        let fact = &self.facts[f.index()];
        if fact.provenance == provenance {
            return Ok(());
        }
        if provenance.is_endogenous() && self.exo_relations.contains(&fact.rel) {
            return Err(DbError::ExogenousViolation {
                relation: self.schema.name(fact.rel).to_string(),
            });
        }
        self.facts[f.index()].provenance = provenance;
        if provenance.is_endogenous() {
            self.endo_pos.insert(f, self.endo.len());
            self.endo.push(f);
        } else {
            self.remove_endo(f);
        }
        Ok(())
    }

    /// Has `f` been retracted in place?
    pub fn is_retracted(&self, f: FactId) -> bool {
        self.retracted.get(f.index()).copied().unwrap_or(false)
    }

    /// Removes `f` from the endogenous list, shifting later positions.
    fn remove_endo(&mut self, f: FactId) {
        let pos = self
            .endo_pos
            .remove(&f)
            // cqshap-lint: allow(no-panic) -- endo_pos tracks every endogenous fact from insertion
            .expect("endogenous fact has a position");
        self.endo.remove(pos);
        for later in &self.endo[pos..] {
            *self
                .endo_pos
                .get_mut(later)
                // cqshap-lint: allow(no-panic) -- endo_pos tracks every endogenous fact from insertion
                .expect("endogenous fact has a position") -= 1;
        }
    }

    /// Inserts a fact given constant names, interning as needed.
    pub fn insert(
        &mut self,
        rel_name: &str,
        constants: &[&str],
        provenance: Provenance,
    ) -> Result<FactId, DbError> {
        let rel = self.add_relation(rel_name, constants.len())?;
        let ids: Vec<ConstId> = constants.iter().map(|c| self.interner.intern(c)).collect();
        self.insert_tuple(rel, ids.into(), provenance)
    }

    /// Inserts an endogenous fact by names.
    pub fn add_endo(&mut self, rel_name: &str, constants: &[&str]) -> Result<FactId, DbError> {
        self.insert(rel_name, constants, Provenance::Endogenous)
    }

    /// Inserts an exogenous fact by names.
    pub fn add_exo(&mut self, rel_name: &str, constants: &[&str]) -> Result<FactId, DbError> {
        self.insert(rel_name, constants, Provenance::Exogenous)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// The fact with id `id`.
    ///
    /// # Panics
    /// Panics on out-of-range ids — ids from *this* database are always
    /// in range, so this is the right entry point for internal callers.
    /// Code handling ids from user input should prefer
    /// [`Database::try_fact`].
    pub fn fact(&self, id: FactId) -> &Fact {
        // cqshap-lint: allow(no-panic-index) -- documented panic: a dangling id here is a caller bug; user-input paths go through try_fact
        &self.facts[id.index()]
    }

    /// The fact with id `id`, or [`DbError::UnknownFact`] when the id
    /// was never issued by this database (e.g. it arrived from user
    /// input or from a different database). Retracted facts still
    /// resolve — their tombstones keep the id space stable; check
    /// [`Database::is_retracted`] separately when liveness matters.
    pub fn try_fact(&self, id: FactId) -> Result<&Fact, DbError> {
        self.facts
            .get(id.index())
            .ok_or(DbError::UnknownFact { id: id.0 })
    }

    /// Total number of fact ids ever issued (the id-space bound;
    /// includes tombstones of retracted facts).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Iterates all live (non-retracted) fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32)
            .map(FactId)
            .filter(|f| !self.retracted[f.index()])
    }

    /// The endogenous facts `Dn`, in insertion order.
    pub fn endo_facts(&self) -> &[FactId] {
        &self.endo
    }

    /// Number of endogenous facts `|Dn|`.
    pub fn endo_count(&self) -> usize {
        self.endo.len()
    }

    /// The position of `id` within [`Database::endo_facts`], if endogenous.
    pub fn endo_index(&self, id: FactId) -> Option<usize> {
        self.endo_pos.get(&id).copied()
    }

    /// Fact ids of `rel`, in insertion order.
    pub fn relation_facts(&self, rel: RelId) -> &[FactId] {
        &self.by_relation[rel.index()]
    }

    /// Looks up a fact by relation and tuple.
    pub fn lookup(&self, rel: RelId, tuple: &Tuple) -> Option<FactId> {
        self.tuple_index.get(&(rel, tuple.clone())).copied()
    }

    /// Looks up a fact by relation name and constant names.
    pub fn find_fact(&self, rel_name: &str, constants: &[&str]) -> Option<FactId> {
        let rel = self.schema.id(rel_name)?;
        let mut ids = Vec::with_capacity(constants.len());
        for c in constants {
            ids.push(self.interner.get(c)?);
        }
        self.lookup(rel, &Tuple::from(ids))
    }

    /// All constants appearing in facts (the active domain `Dom(D)`),
    /// in first-appearance order, deduplicated.
    pub fn active_domain(&self) -> Vec<ConstId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for f in self.fact_ids().map(|id| self.fact(id)) {
            for &c in f.tuple.values() {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Modified copies (used by the Shapley-via-|Sat| reduction)
    // ------------------------------------------------------------------

    /// A copy of the database with fact `removed` deleted.
    ///
    /// Returns the copy and a map from old ids to new ids (the removed
    /// fact is absent from the map).
    pub fn without_fact(
        &self,
        removed: FactId,
    ) -> Result<(Database, HashMap<FactId, FactId>), DbError> {
        if removed.index() >= self.facts.len() {
            return Err(DbError::UnknownFact { id: removed.0 });
        }
        self.rebuild(|id, fact| {
            if id == removed {
                None
            } else {
                Some(fact.provenance)
            }
        })
    }

    /// A copy of the database with fact `target` made exogenous.
    ///
    /// Note: `target`'s relation keeps its (non-)membership in `X`; this
    /// only flips the single fact's provenance, which is what the Shapley
    /// reduction requires.
    pub fn with_fact_exogenous(
        &self,
        target: FactId,
    ) -> Result<(Database, HashMap<FactId, FactId>), DbError> {
        if target.index() >= self.facts.len() {
            return Err(DbError::UnknownFact { id: target.0 });
        }
        self.rebuild(|id, fact| {
            Some(if id == target {
                Provenance::Exogenous
            } else {
                fact.provenance
            })
        })
    }

    fn rebuild(
        &self,
        mut keep: impl FnMut(FactId, &Fact) -> Option<Provenance>,
    ) -> Result<(Database, HashMap<FactId, FactId>), DbError> {
        let mut out = Database {
            schema: self.schema.clone(),
            interner: self.interner.clone(),
            by_relation: vec![Vec::new(); self.by_relation.len()],
            // `exo_relations` is rebuilt below: flipping a fact to
            // exogenous never invalidates a declaration.
            exo_relations: self.exo_relations.clone(),
            ..Database::default()
        };
        let mut map = HashMap::new();
        for id in self.fact_ids() {
            let fact = self.fact(id);
            if let Some(provenance) = keep(id, fact) {
                let new_id = out.insert_tuple(fact.rel, fact.tuple.clone(), provenance)?;
                map.insert(id, new_id);
            }
        }
        Ok((out, map))
    }

    // ------------------------------------------------------------------
    // Rendering
    // ------------------------------------------------------------------

    /// Renders a `(relation, tuple)` pair, e.g. `Reg(Adam, OS)`.
    pub fn render(&self, rel: RelId, tuple: &Tuple) -> String {
        let args: Vec<&str> = tuple
            .values()
            .iter()
            .map(|&c| self.interner.resolve(c))
            .collect();
        format!("{}({})", self.schema.name(rel), args.join(", "))
    }

    /// Renders the fact with id `id`.
    pub fn render_fact(&self, id: FactId) -> String {
        let f = self.fact(id);
        self.render(f.rel, &f.tuple)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel_name in self.exogenous_relation_names() {
            writeln!(f, "exorel {rel_name}")?;
        }
        for id in self.fact_ids() {
            let fact = self.fact(id);
            let kind = if fact.provenance.is_endogenous() {
                "endo"
            } else {
                "exo "
            };
            writeln!(f, "{kind} {}", self.render_fact(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut db = Database::new();
        db.add_exo("Stud", &["Adam"]).unwrap();
        db.add_endo("TA", &["Adam"]).unwrap();
        db.add_endo("Reg", &["Adam", "OS"]).unwrap();
        db
    }

    #[test]
    fn insert_and_lookup() {
        let db = sample();
        assert_eq!(db.fact_count(), 3);
        assert_eq!(db.endo_count(), 2);
        let f = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        assert_eq!(db.render_fact(f), "Reg(Adam, OS)");
        assert_eq!(db.endo_index(f), Some(1));
        assert!(db.find_fact("Reg", &["Ben", "OS"]).is_none());
        assert!(db.find_fact("Nope", &["x"]).is_none());
    }

    #[test]
    fn duplicates_rejected() {
        let mut db = sample();
        let err = db.add_endo("TA", &["Adam"]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateFact { .. }));
    }

    #[test]
    fn arity_enforced() {
        let mut db = sample();
        let err = db.add_endo("Reg", &["Adam"]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn exogenous_relation_constraint() {
        let mut db = Database::new();
        let rel = db.add_relation("Pub", 2).unwrap();
        db.declare_exogenous_relation(rel).unwrap();
        db.add_exo("Pub", &["p1", "x"]).unwrap();
        let err = db.add_endo("Pub", &["p2", "y"]).unwrap_err();
        assert!(matches!(err, DbError::ExogenousViolation { .. }));

        // Declaring after endogenous facts exist also fails.
        let mut db2 = Database::new();
        let rel2 = db2.add_relation("TA", 1).unwrap();
        db2.add_endo("TA", &["Adam"]).unwrap();
        assert!(db2.declare_exogenous_relation(rel2).is_err());
    }

    #[test]
    fn active_domain_dedupes() {
        let db = sample();
        let dom = db.active_domain();
        let names: Vec<&str> = dom.iter().map(|&c| db.interner().resolve(c)).collect();
        assert_eq!(names, vec!["Adam", "OS"]);
    }

    #[test]
    fn without_fact() {
        let db = sample();
        let ta = db.find_fact("TA", &["Adam"]).unwrap();
        let (db2, map) = db.without_fact(ta).unwrap();
        assert_eq!(db2.fact_count(), 2);
        assert_eq!(db2.endo_count(), 1);
        assert!(!map.contains_key(&ta));
        assert!(db2.find_fact("TA", &["Adam"]).is_none());
        assert!(db2.find_fact("Reg", &["Adam", "OS"]).is_some());
    }

    #[test]
    fn with_fact_exogenous() {
        let db = sample();
        let ta = db.find_fact("TA", &["Adam"]).unwrap();
        let (db2, map) = db.with_fact_exogenous(ta).unwrap();
        assert_eq!(db2.fact_count(), 3);
        assert_eq!(db2.endo_count(), 1);
        let new_ta = map[&ta];
        assert!(!db2.fact(new_ta).provenance.is_endogenous());
    }

    #[test]
    fn retract_fact_keeps_ids_stable() {
        let mut db = sample();
        let ta = db.find_fact("TA", &["Adam"]).unwrap();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        db.retract_fact(ta).unwrap();
        assert!(db.is_retracted(ta));
        assert!(db.find_fact("TA", &["Adam"]).is_none());
        // Other ids survive untouched; endogenous positions shift down.
        assert_eq!(db.find_fact("Reg", &["Adam", "OS"]), Some(reg));
        assert_eq!(db.endo_count(), 1);
        assert_eq!(db.endo_index(reg), Some(0));
        assert!(!db.fact_ids().any(|f| f == ta));
        // Double retraction and dangling ids are rejected.
        assert!(matches!(
            db.retract_fact(ta),
            Err(DbError::UnknownFact { .. })
        ));
        assert!(matches!(
            db.retract_fact(FactId(99)),
            Err(DbError::UnknownFact { .. })
        ));
        // The tuple can be re-inserted under a fresh id.
        let again = db.add_endo("TA", &["Adam"]).unwrap();
        assert_ne!(again, ta);
        assert_eq!(db.endo_index(again), Some(1));
        // Display only renders live facts.
        assert_eq!(db.to_string().matches("TA(Adam)").count(), 1);
    }

    #[test]
    fn set_fact_provenance_flips_in_place() {
        let mut db = sample();
        let ta = db.find_fact("TA", &["Adam"]).unwrap();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        db.set_fact_provenance(ta, Provenance::Exogenous).unwrap();
        assert_eq!(db.endo_count(), 1);
        assert_eq!(db.endo_index(reg), Some(0));
        assert!(!db.fact(ta).provenance.is_endogenous());
        // Flip back: the fact rejoins the end of Dn.
        db.set_fact_provenance(ta, Provenance::Endogenous).unwrap();
        assert_eq!(db.endo_index(ta), Some(1));
        // No-op flips are fine; exogenous-relation declarations hold.
        db.set_fact_provenance(ta, Provenance::Endogenous).unwrap();
        let mut db2 = Database::new();
        let rel = db2.add_relation("Pub", 1).unwrap();
        db2.declare_exogenous_relation(rel).unwrap();
        let p = db2.add_exo("Pub", &["x"]).unwrap();
        assert!(matches!(
            db2.set_fact_provenance(p, Provenance::Endogenous),
            Err(DbError::ExogenousViolation { .. })
        ));
    }

    #[test]
    fn active_domain_ignores_retracted_facts() {
        let mut db = sample();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        db.retract_fact(reg).unwrap();
        let names: Vec<&str> = db
            .active_domain()
            .iter()
            .map(|&c| db.interner().resolve(c))
            .collect();
        assert_eq!(names, vec!["Adam"]);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let mut db = sample();
        let rel = db.add_relation("Course", 2).unwrap();
        db.declare_exogenous_relation(rel).unwrap();
        db.add_exo("Course", &["OS", "EE"]).unwrap();
        let text = db.to_string();
        let db2 = Database::parse(&text).unwrap();
        assert_eq!(db2.fact_count(), db.fact_count());
        assert_eq!(db2.endo_count(), db.endo_count());
        assert!(db2.is_exogenous_relation(db2.schema().id("Course").unwrap()));
    }
}
