//! Facts: relation symbol + constant tuple + provenance.

use crate::interner::ConstId;
use crate::schema::RelId;

/// A tuple of interned constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(pub Box<[ConstId]>);

impl Tuple {
    /// Builds from a slice of constant ids.
    pub fn new(ids: &[ConstId]) -> Self {
        Tuple(ids.into())
    }

    /// The tuple arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The constants.
    pub fn values(&self) -> &[ConstId] {
        &self.0
    }
}

impl From<Vec<ConstId>> for Tuple {
    fn from(v: Vec<ConstId>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = ConstId;
    fn index(&self, i: usize) -> &ConstId {
        &self.0[i]
    }
}

/// Whether a fact is a Shapley player or part of the fixed context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// A member of `Dn`: a player in the cooperative game.
    Endogenous,
    /// A member of `Dx`: taken as given.
    Exogenous,
}

impl Provenance {
    /// Is this endogenous?
    pub fn is_endogenous(self) -> bool {
        matches!(self, Provenance::Endogenous)
    }
}

/// Stable identifier of a fact within one [`Database`](crate::Database).
///
/// Ids are *not* preserved across the modified-copy constructors
/// (`without_fact`, `with_fact_exogenous`); those return id mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

impl FactId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stored fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// The relation symbol.
    pub rel: RelId,
    /// The constant tuple.
    pub tuple: Tuple,
    /// Endogenous or exogenous.
    pub provenance: Provenance,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_basics() {
        let t = Tuple::new(&[ConstId(3), ConstId(1)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], ConstId(3));
        assert_eq!(t.values(), &[ConstId(3), ConstId(1)]);
        let t2: Tuple = vec![ConstId(3), ConstId(1)].into();
        assert_eq!(t, t2);
    }

    #[test]
    fn provenance_flags() {
        assert!(Provenance::Endogenous.is_endogenous());
        assert!(!Provenance::Exogenous.is_endogenous());
    }
}
