//! A compact fixed-universe bitset.
//!
//! Used to represent subsets `E ⊆ Dn` of the endogenous facts (indexed by
//! their position in [`Database::endo_facts`](crate::Database::endo_facts))
//! during brute-force enumeration and Monte-Carlo sampling.
// cqshap-lint: allow-file(no-panic-index) -- word indexes derive from bit/64, bounded by the allocation

/// A fixed-size bitset over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (b, o) = (i / 64, i % 64);
        let fresh = self.blocks[b] & (1 << o) == 0;
        self.blocks[b] |= 1 << o;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (b, o) = (i / 64, i % 64);
        let present = self.blocks[b] & (1 << o) != 0;
        self.blocks[b] &= !(1 << o);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (b, o) = (i / 64, i % 64);
        self.blocks[b] & (1 << o) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + t)
                }
            })
        })
    }

    /// Loads the low 64 bits from a mask (for brute-force subset loops).
    ///
    /// # Panics
    /// Panics if the universe exceeds 64.
    pub fn assign_mask(&mut self, mask: u64) {
        assert!(self.len <= 64, "assign_mask requires universe <= 64");
        if !self.blocks.is_empty() {
            self.blocks[0] = mask;
        } else {
            debug_assert_eq!(mask, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 64, 65, 199] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![5, 64, 65, 199]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn assign_mask() {
        let mut s = BitSet::new(8);
        s.assign_mask(0b1010_0001);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(3).insert(3);
    }
}
