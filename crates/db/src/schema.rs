//! Relational schemas: relation symbols with fixed arities.

use std::collections::HashMap;
use std::fmt;

use crate::error::DbError;

/// An interned relation symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Definition of one relation symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDef {
    /// Relation name, e.g. `"Reg"`.
    pub name: String,
    /// Number of attributes.
    pub arity: usize,
}

/// A collection of relation symbols (the paper's schema `S`).
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<RelationDef>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation, or returns the existing id when the same
    /// name/arity was already declared.
    ///
    /// # Errors
    /// [`DbError::ArityMismatch`] when `name` exists with another arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelId, DbError> {
        if let Some(&id) = self.by_name.get(name) {
            // cqshap-lint: allow(no-panic-index) -- by_name stores only ids issued by this schema
            let existing = &self.relations[id.index()];
            if existing.arity != arity {
                return Err(DbError::ArityMismatch {
                    relation: name.to_string(),
                    expected: existing.arity,
                    got: arity,
                });
            }
            return Ok(id);
        }
        // cqshap-lint: allow(no-panic) -- documented capacity limit: the relation id space is u32
        let id = RelId(u32::try_from(self.relations.len()).expect("too many relations"));
        self.relations.push(RelationDef {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a relation by name.
    pub fn id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The definition of `rel`.
    ///
    /// # Panics
    /// Panics if `rel` does not belong to this schema.
    pub fn def(&self, rel: RelId) -> &RelationDef {
        // cqshap-lint: allow(no-panic-index) -- documented panic: def requires an id issued by this schema
        &self.relations[rel.index()]
    }

    /// The arity of `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.def(rel).arity
    }

    /// The name of `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        &self.def(rel).name
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates `(id, def)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationDef)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u32), d))
    }

    /// Mints a fresh relation name with the given prefix, distinct from
    /// every declared relation (used by the `ExoShap` rewriting).
    // cqshap-lint: allow(cancellation-reachability) -- bounded: terminates at the first unused suffix, at most |relations|+1 probes
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut i = 0u64;
        loop {
            let candidate = format!("{prefix}${i}");
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, def) in self.iter() {
            writeln!(f, "{}/{}", def.name, def.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add_relation("Reg", 2).unwrap();
        assert_eq!(s.id("Reg"), Some(r));
        assert_eq!(s.arity(r), 2);
        assert_eq!(s.name(r), "Reg");
        assert_eq!(s.id("Nope"), None);
    }

    #[test]
    fn redeclaration_same_arity_ok() {
        let mut s = Schema::new();
        let a = s.add_relation("R", 1).unwrap();
        let b = s.add_relation("R", 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arity_conflict_rejected() {
        let mut s = Schema::new();
        s.add_relation("R", 1).unwrap();
        assert!(matches!(
            s.add_relation("R", 2),
            Err(DbError::ArityMismatch {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut s = Schema::new();
        s.add_relation("J$0", 1).unwrap();
        let n = s.fresh_name("J");
        assert_ne!(n, "J$0");
    }
}
