//! Line-oriented text format for databases.
//!
//! ```text
//! # The running example, abridged (Figure 1).
//! exorel Stud
//! exo  Stud(Adam)
//! endo TA(Adam)
//! endo Reg(Adam, OS)
//! ```
//!
//! * `exorel NAME` declares `NAME` an exogenous relation (member of `X`);
//! * `exo FACT` / `endo FACT` insert facts;
//! * relations are auto-declared with the arity of their first fact;
//! * `#` starts a comment; blank lines are ignored;
//! * constants are bare tokens (no quoting; anything except `,()#` and
//!   whitespace).

use crate::database::Database;
use crate::error::DbError;
use crate::fact::Provenance;

impl Database {
    /// Parses the text format described in [the module docs](self).
    pub fn parse(text: &str) -> Result<Database, DbError> {
        let mut db = Database::new();
        let mut exorel_names: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            if let Some(rest) = line.strip_prefix("exorel ") {
                let name = rest.trim();
                if name.is_empty() || !is_token(name) {
                    return Err(DbError::Parse {
                        line: lineno,
                        message: format!("bad relation name {name:?}"),
                    });
                }
                exorel_names.push((lineno, name.to_string()));
                continue;
            }
            let (provenance, rest) = if let Some(rest) = line.strip_prefix("endo ") {
                (Provenance::Endogenous, rest)
            } else if let Some(rest) = line.strip_prefix("exo ") {
                (Provenance::Exogenous, rest)
            } else {
                return Err(DbError::Parse {
                    line: lineno,
                    message: format!("expected `exorel`, `endo` or `exo`, got {line:?}"),
                });
            };
            let (rel, args) = parse_fact(rest.trim(), lineno)?;
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            db.insert(&rel, &arg_refs, provenance)
                .map_err(|e| match e {
                    DbError::Parse { .. } => e,
                    other => DbError::Parse {
                        line: lineno,
                        message: other.to_string(),
                    },
                })?;
        }
        // Apply exogenous-relation declarations at the end so declarations
        // may precede the facts that introduce the relation's arity.
        for (lineno, name) in exorel_names {
            let rel = db.schema().id(&name).ok_or_else(|| DbError::Parse {
                line: lineno,
                message: format!("exorel {name}: relation never used"),
            })?;
            db.declare_exogenous_relation(rel)
                .map_err(|e| DbError::Parse {
                    line: lineno,
                    message: e.to_string(),
                })?;
        }
        Ok(db)
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| !c.is_whitespace() && !"(),#".contains(c))
}

/// Parses `Rel(arg, arg, ...)`, allowing zero arguments.
fn parse_fact(s: &str, line: usize) -> Result<(String, Vec<String>), DbError> {
    let err = |message: String| DbError::Parse { line, message };
    let open = s
        .find('(')
        .ok_or_else(|| err(format!("missing `(` in {s:?}")))?;
    if !s.ends_with(')') {
        return Err(err(format!("missing `)` in {s:?}")));
    }
    // cqshap-lint: allow(no-panic-index) -- open was located in s by find, so the slice boundary is valid
    let rel = s[..open].trim();
    if !is_token(rel) {
        return Err(err(format!("bad relation name {rel:?}")));
    }
    // cqshap-lint: allow(no-panic-index) -- the missing-parenthesis guard above ensures the closing byte exists
    let inner = &s[open + 1..s.len() - 1];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let tok = part.trim();
            if !is_token(tok) {
                return Err(err(format!("bad constant {tok:?}")));
            }
            args.push(tok.to_string());
        }
    }
    Ok((rel.to_string(), args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_example() {
        let db = Database::parse(
            "# comment\n\
             exorel Stud\n\
             exo  Stud(Adam)   # trailing comment\n\
             endo TA(Adam)\n\
             endo Reg(Adam, OS)\n\
             \n",
        )
        .unwrap();
        assert_eq!(db.fact_count(), 3);
        assert_eq!(db.endo_count(), 2);
        let stud = db.schema().id("Stud").unwrap();
        assert!(db.is_exogenous_relation(stud));
        assert!(db.find_fact("Reg", &["Adam", "OS"]).is_some());
    }

    #[test]
    fn nullary_facts() {
        let db = Database::parse("endo Flag()\n").unwrap();
        let flag = db.schema().id("Flag").unwrap();
        assert_eq!(db.schema().arity(flag), 0);
        assert_eq!(db.endo_count(), 1);
    }

    #[test]
    fn rejects_bad_lines() {
        for bad in [
            "wat R(a)",
            "endo R(a",
            "endo R a)",
            "endo (a)",
            "endo R(a b)",
            "exorel ",
        ] {
            assert!(Database::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn exorel_unknown_relation_fails() {
        assert!(Database::parse("exorel R\n").is_err());
    }

    #[test]
    fn exorel_with_endogenous_facts_fails() {
        let err = Database::parse("exorel R\nendo R(a)\n").unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }));
    }

    #[test]
    fn duplicate_fact_reports_line() {
        let err = Database::parse("endo R(a)\nendo R(a)\n").unwrap_err();
        match err {
            DbError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
