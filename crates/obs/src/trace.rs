//! The built-in aggregating recorder behind `TRACE_report.json`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metrics::HISTOGRAM_BUCKETS;
use crate::recorder::Recorder;

/// Cap on retained events per window; later events are dropped and the
/// drop count is reported so the trace never claims completeness it
/// does not have.
const MAX_EVENTS: usize = 4096;

/// Host metadata stamped into a serialized trace, making the
/// "measured on an N-core container" caveat machine-readable.
#[derive(Debug, Clone, Copy)]
pub struct TraceMeta {
    /// Available parallelism of the host the trace was captured on.
    pub host_cores: usize,
    /// The thread cap in force (resolved; equals `host_cores` when the
    /// cap was "auto").
    pub thread_cap: usize,
}

#[derive(Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Clone, Copy)]
struct HistAgg {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistAgg {
    fn default() -> Self {
        HistAgg {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

#[derive(Default)]
struct Window {
    spans: BTreeMap<(&'static str, Option<&'static str>), SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistAgg>,
    events: Vec<(&'static str, String)>,
    events_dropped: u64,
}

/// A [`Recorder`] that aggregates everything it sees into an in-memory
/// window and serializes it as `cqshap-trace/v1` JSON.
///
/// Spans aggregate by `(phase, parent)` pair; counters sum by key;
/// histograms keep log₂ buckets plus count/sum/max; events are retained
/// verbatim up to a cap. [`TraceRecorder::clear`] resets the window so
/// one process can capture several back-to-back traces (the harness
/// does this per workload size). Install it process-wide with
/// [`install_trace`](crate::install_trace).
pub struct TraceRecorder {
    window: Mutex<Window>,
}

impl TraceRecorder {
    pub(crate) fn new() -> Self {
        TraceRecorder {
            window: Mutex::new(Window::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Window> {
        self.window
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Reset the aggregation window to empty.
    pub fn clear(&self) {
        *self.lock() = Window::default();
    }

    /// The aggregated value of counter `key` in the current window.
    pub fn counter_value(&self, key: &str) -> u64 {
        self.lock().counters.get(key).copied().unwrap_or(0)
    }

    /// Number of closed spans recorded for `phase` (across parents).
    pub fn span_count(&self, phase: &str) -> u64 {
        let w = self.lock();
        w.spans
            .iter()
            .filter(|((p, _), _)| *p == phase)
            .map(|(_, agg)| agg.count)
            .sum()
    }

    /// Whether an event of `kind` whose detail contains `needle` was
    /// retained in the current window.
    pub fn has_event(&self, kind: &str, needle: &str) -> bool {
        self.lock()
            .events
            .iter()
            .any(|(k, d)| *k == kind && d.contains(needle))
    }

    /// Serialize the current window as `cqshap-trace/v1` JSON.
    ///
    /// Schema (all durations in obs-clock nanoseconds):
    ///
    /// ```json
    /// {
    ///   "schema": "cqshap-trace/v1",
    ///   "host_cores": 1, "thread_cap": 1,
    ///   "spans":      [{"phase": "...", "parent": "..."|null,
    ///                   "count": 0, "total_ns": 0, "max_ns": 0}],
    ///   "counters":   [{"key": "...", "value": 0}],
    ///   "histograms": [{"key": "...", "count": 0, "sum": 0, "max": 0,
    ///                   "buckets": [{"bucket": 0, "count": 0}]}],
    ///   "events":     [{"kind": "...", "detail": "..."}],
    ///   "events_dropped": 0
    /// }
    /// ```
    pub fn to_json(&self, meta: &TraceMeta) -> String {
        // Snapshot under the lock, format outside it.
        let w = self.lock();
        let spans: Vec<(&'static str, Option<&'static str>, SpanAgg)> = w
            .spans
            .iter()
            .map(|(&(p, par), &agg)| (p, par, agg))
            .collect();
        let counters: Vec<(&'static str, u64)> = w.counters.iter().map(|(&k, &v)| (k, v)).collect();
        let histograms: Vec<(&'static str, HistAgg)> =
            w.histograms.iter().map(|(&k, &agg)| (k, agg)).collect();
        let events: Vec<(&'static str, String)> = w.events.clone();
        let events_dropped = w.events_dropped;
        drop(w);

        let spans_json = spans
            .iter()
            .map(|(phase, parent, agg)| {
                let parent_json =
                    parent.map_or_else(|| "null".to_string(), |p| format!("\"{}\"", escape(p)));
                format!(
                    "    {{\"phase\": \"{}\", \"parent\": {}, \"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    escape(phase),
                    parent_json,
                    agg.count,
                    agg.total_ns,
                    agg.max_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let counters_json = counters
            .iter()
            .map(|(key, value)| {
                format!("    {{\"key\": \"{}\", \"value\": {}}}", escape(key), value)
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let histograms_json = histograms
            .iter()
            .map(|(key, agg)| {
                let buckets = agg
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &count)| count > 0)
                    .map(|(bucket, &count)| format!("{{\"bucket\": {bucket}, \"count\": {count}}}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "    {{\"key\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                    escape(key),
                    agg.count,
                    agg.sum,
                    agg.max,
                    buckets
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let events_json = events
            .iter()
            .map(|(kind, detail)| {
                format!(
                    "    {{\"kind\": \"{}\", \"detail\": \"{}\"}}",
                    escape(kind),
                    escape(detail)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");

        format!(
            "{{\n  \"schema\": \"cqshap-trace/v1\",\n  \"host_cores\": {},\n  \"thread_cap\": {},\n  \"spans\": [\n{}\n  ],\n  \"counters\": [\n{}\n  ],\n  \"histograms\": [\n{}\n  ],\n  \"events\": [\n{}\n  ],\n  \"events_dropped\": {}\n}}\n",
            meta.host_cores, meta.thread_cap, spans_json, counters_json, histograms_json, events_json, events_dropped
        )
    }
}

impl Recorder for TraceRecorder {
    fn span(&self, phase: &'static str, parent: Option<&'static str>, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        let mut w = self.lock();
        let agg = w.spans.entry((phase, parent)).or_default();
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(dur);
        agg.max_ns = agg.max_ns.max(dur);
    }

    fn counter(&self, key: &'static str, delta: u64) {
        let mut w = self.lock();
        let slot = w.counters.entry(key).or_default();
        *slot = slot.saturating_add(delta);
    }

    fn histogram(&self, key: &'static str, value: u64) {
        let mut w = self.lock();
        let agg = w.histograms.entry(key).or_default();
        agg.count += 1;
        agg.sum = agg.sum.saturating_add(value);
        agg.max = agg.max.max(value);
        agg.buckets[crate::metrics::bucket_index(value)] += 1;
    }

    fn event(&self, kind: &'static str, detail: &str) {
        let mut w = self.lock();
        if w.events.len() < MAX_EVENTS {
            w.events.push((kind, detail.to_string()));
        } else {
            w.events_dropped += 1;
        }
    }
}

/// Minimal JSON string escaping: backslash, quote, and control chars.
fn escape(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
            c => c.to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn window_aggregates_and_serializes() {
        let t = TraceRecorder::new();
        t.span("compile", Some("prepare"), 10, 110);
        t.span("compile", Some("prepare"), 110, 160);
        t.counter("poly.mul.ntt", 3);
        t.counter("poly.mul.ntt", 2);
        t.histogram("poly.mul.operand-len", 1000);
        t.event("tier.demote", "exact -> sampled: DeadlineExceeded");

        assert_eq!(t.span_count("compile"), 2);
        assert_eq!(t.counter_value("poly.mul.ntt"), 5);
        assert!(t.has_event("tier.demote", "DeadlineExceeded"));

        let json = t.to_json(&TraceMeta {
            host_cores: 4,
            thread_cap: 2,
        });
        assert!(json.contains("\"schema\": \"cqshap-trace/v1\""));
        assert!(json.contains("\"host_cores\": 4"));
        assert!(json.contains("\"thread_cap\": 2"));
        assert!(json.contains("\"phase\": \"compile\""));
        assert!(json.contains("\"parent\": \"prepare\""));
        assert!(json.contains("\"total_ns\": 150"));
        assert!(json.contains("\"value\": 5"));
        assert!(json.contains("\"bucket\": 10"));
        assert!(json.contains("\"events_dropped\": 0"));

        t.clear();
        assert_eq!(t.span_count("compile"), 0);
        assert_eq!(t.counter_value("poly.mul.ntt"), 0);
    }

    #[test]
    fn event_cap_counts_drops() {
        let t = TraceRecorder::new();
        (0..MAX_EVENTS + 7).for_each(|_| t.event("k", "d"));
        let json = t.to_json(&TraceMeta {
            host_cores: 1,
            thread_cap: 1,
        });
        assert!(json.contains("\"events_dropped\": 7"));
    }
}
