//! RAII phase spans over a thread-local stack.

use std::cell::RefCell;

use crate::{clock, recorder};

thread_local! {
    /// Phases currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing one phase of work.
///
/// [`Span::enter`] pushes the phase onto a thread-local stack and reads
/// the obs clock; dropping the guard pops it (and anything leaked above
/// it, e.g. by `?`/early return before an inner guard was bound) and
/// reports the closed span to the installed [`Recorder`](crate::Recorder).
/// With no recorder installed the guard is inert: construction is a
/// single relaxed atomic load and drop does nothing — no clock read, no
/// stack touch, no allocation.
///
/// ```
/// let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE);
/// // ... work ...
/// // span closes when `_span` drops, even on unwind
/// ```
#[must_use = "a span times the scope that holds it; dropping it immediately records nothing useful"]
pub struct Span {
    active: Option<Active>,
}

struct Active {
    phase: &'static str,
    parent: Option<&'static str>,
    depth: usize,
    start_ns: u64,
}

impl Span {
    /// Open a span for `phase`, nested under whatever span is currently
    /// innermost on this thread.
    pub fn enter(phase: &'static str) -> Self {
        if !recorder::enabled() {
            return Span { active: None };
        }
        let (parent, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            let depth = s.len();
            s.push(phase);
            (parent, depth)
        });
        Span {
            active: Some(Active {
                phase,
                parent,
                depth,
                start_ns: clock::now_ns(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        // Truncating to the depth recorded at entry closes exactly this
        // span plus any inner spans whose guards were leaked by an
        // early return or unwind in between.
        STACK.with(|s| s.borrow_mut().truncate(active.depth));
        let end_ns = clock::now_ns();
        recorder::with(|r| r.span(active.phase, active.parent, active.start_ns, end_ns));
    }
}

/// How many spans are open on the current thread.
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The innermost open phase on the current thread, if any.
pub fn span_current() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().copied())
}
