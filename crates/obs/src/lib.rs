//! First-party observability for the `cqshap` engines: tracing spans,
//! metrics, and per-phase profiling with no dependencies and a
//! near-zero disabled cost.
//!
//! The crate sits at the very bottom of the workspace (below even
//! `cqshap-numeric`), so every layer — the polynomial kernels, the
//! compiled engines, the session, the tier ladder — can emit signals
//! through one mechanism:
//!
//! | API | Purpose | Disabled cost |
//! |---|---|---|
//! | [`Span::enter`] | RAII phase timing over a thread-local stack | one relaxed atomic load |
//! | [`Counter::add`] | lock-free named tally, locally readable | one load + one local `fetch_add` |
//! | [`Histogram::record`] | log₂-bucketed value distribution | one load + one local `fetch_add` |
//! | [`event`] | discrete decision with dynamic detail | one relaxed atomic load |
//!
//! Signals flow to a process-wide [`Recorder`] sink installed once via
//! [`install`] (or the batteries-included [`install_trace`], which
//! installs the aggregating [`TraceRecorder`] behind
//! `TRACE_report.json`). With no recorder installed — the default —
//! every entry point bails after a single relaxed atomic load: spans
//! never touch the clock or the stack, and nothing allocates.
//!
//! Phase names are `&'static str` keys from [`phase`], shared with the
//! deadline machinery (`cqshap-core`'s `budget::check`) so a
//! `DeadlineExceeded { phase }` error and the trace spans name the same
//! phase identically. Hot loops therefore never build a label string.
//!
//! Wall-clock reads happen in exactly one place, [`clock::now_ns`] —
//! the obs-side analogue of `cqshap-numeric::cancel`'s epoch — which
//! the `no-wall-clock` lint discipline sanctions explicitly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
mod metrics;
pub mod phase;
mod recorder;
mod span;
mod trace;

pub use metrics::{Counter, Histogram};
pub use recorder::{
    counter, enabled, event, histogram, install, install_trace, AlreadyInstalled, Recorder,
};
pub use span::{span_current, span_depth, Span};
pub use trace::{TraceMeta, TraceRecorder};
