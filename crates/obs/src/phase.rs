//! The shared vocabulary of phase and metric keys.
//!
//! Span phases double as the `phase` labels in
//! `CoreError::DeadlineExceeded`, so a deadline trip and the trace name
//! the moment identically — `budget::check` takes these same
//! `&'static str` constants. Metric keys (counters, histograms, event
//! kinds) live here too so the `TRACE_report.json` vocabulary has one
//! authoritative home.

// ---------------------------------------------------------------------
// Span phases (also used as deadline-check labels).
// ---------------------------------------------------------------------

/// `ShapleySession::prepare`: everything from spec to ready engines.
pub const PREPARE: &str = "prepare";
/// Prepare sub-phase: query classification (hierarchy / exogenous splits).
pub const PREPARE_CLASSIFY: &str = "prepare.classify";
/// Prepare sub-phase: choosing the evaluation strategy for the class.
pub const PREPARE_RESOLVE_STRATEGY: &str = "prepare.resolve-strategy";
/// Prepare sub-phase: building the compiled engines/plans.
pub const PREPARE_COMPILE: &str = "prepare.compile";
/// `ShapleySession::report` / `report_with`: one full Shapley report.
pub const REPORT: &str = "report";
/// `ShapleySession::report_tiered`: the graceful-degradation ladder.
pub const REPORT_TIERED: &str = "report-tiered";

/// Compiled-engine circuit build (per root group).
pub const COMPILE: &str = "compile";
/// Compiled-engine incremental update after an endogenous/exogenous flip.
pub const UPDATE: &str = "update";
/// Compiled-engine masked recount pass (per root group).
pub const RECOUNT: &str = "recount";
/// Union (UCQ) compile: per-term engines plus inclusion–exclusion setup.
pub const UNION_COMPILE: &str = "union-compile";
/// Union (UCQ) per-term recount enumeration.
pub const UNION_TERMS: &str = "union-terms";
/// Aggregate-query Shapley evaluation over the candidate groups.
pub const AGGREGATE: &str = "aggregate";
/// Aggregate-query preparation: candidate discovery and pruning.
pub const AGGREGATE_PREPARE: &str = "aggregate-prepare";

/// The shared evaluation recursion over an evaluation domain (the
/// per-work-unit checkpoint label of `EvalDomain::checkpoint`).
pub const EVALUATE: &str = "evaluate";
/// Exact permutation-sum assembly from model counts.
pub const PERMUTATIONS: &str = "permutations";
/// Brute-force subset enumeration (small instances / oracle checks).
pub const BRUTE_FORCE: &str = "brute-force";
/// Weighted-sums-of-model-counts tier (WSMS).
pub const WSMS: &str = "wsms";

/// Anytime sampler: whole `shapley_anytime` call.
pub const ANYTIME: &str = "anytime";
/// Anytime sampler: the fixed bootstrap rounds.
pub const ANYTIME_BOOTSTRAP: &str = "anytime.bootstrap";
/// Anytime sampler: the deadline-bounded refinement loop.
pub const ANYTIME_REFINE: &str = "anytime.refine";

// ---------------------------------------------------------------------
// Counter keys.
// ---------------------------------------------------------------------

/// `poly::mul_with` dispatched to the schoolbook backend.
pub const CTR_POLY_SCHOOLBOOK: &str = "poly.mul.schoolbook";
/// `poly::mul_with` dispatched to the Karatsuba backend.
pub const CTR_POLY_KARATSUBA: &str = "poly.mul.karatsuba";
/// `poly::mul_with` dispatched to the NTT backend.
pub const CTR_POLY_NTT: &str = "poly.mul.ntt";
/// Primes drawn from the shared NTT prime pool.
pub const CTR_NTT_PRIME_DRAWS: &str = "poly.ntt.prime-pool.draws";

/// Iso-class memo hits during compiled recounts.
pub const CTR_CLASS_MEMO_HIT: &str = "compiled.class-memo.hit";
/// Iso-class memo misses during compiled recounts.
pub const CTR_CLASS_MEMO_MISS: &str = "compiled.class-memo.miss";
/// Masked-recount cache hits (unchanged root groups reused).
pub const CTR_RECOUNT_CACHE_HIT: &str = "compiled.recount-cache.hit";
/// Masked-recount cache misses (root groups recounted).
pub const CTR_RECOUNT_CACHE_MISS: &str = "compiled.recount-cache.miss";

/// Aggregate candidate groups discovered during prepare.
pub const CTR_AGG_CANDIDATES: &str = "aggregate.candidates";
/// Aggregate candidate groups pruned as irrelevant.
pub const CTR_AGG_PRUNED: &str = "aggregate.pruned";

// ---------------------------------------------------------------------
// Histogram keys.
// ---------------------------------------------------------------------

/// Operand length (max of the two factors) per `poly::mul_with` call.
pub const HIST_POLY_OPERAND_LEN: &str = "poly.mul.operand-len";
/// Permutation draws per stratum at anytime-sampler exit.
pub const HIST_ANYTIME_STRATUM_DRAWS: &str = "anytime.stratum.draws";
/// Confidence-interval half-width per fact at anytime-sampler exit,
/// in parts-per-million of the total playing weight.
pub const HIST_ANYTIME_HALF_WIDTH_PPM: &str = "anytime.interval.half-width-ppm";

// ---------------------------------------------------------------------
// Event kinds.
// ---------------------------------------------------------------------

/// A tier of `report_tiered` produced the answer; detail names the tier.
pub const EV_TIER_ANSWER: &str = "tier.answer";
/// `report_tiered` demoted past a tier; detail names the tier and the
/// `CoreError` that forced the demotion.
pub const EV_TIER_DEMOTE: &str = "tier.demote";
/// `budget::check` tripped a deadline; detail names the phase.
pub const EV_DEADLINE_TRIP: &str = "deadline.trip";
