//! Lock-free counters and log-bucketed histograms.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder;

/// Number of histogram buckets: one for zero, one per power-of-two
/// magnitude of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A named, lock-free tally.
///
/// The counter always maintains its own local [`AtomicU64`], so callers
/// can read it back via [`Counter::get`] with or without a recorder
/// installed (this is what keeps `ShapleyReport::stats` meaningful in
/// untraced runs). When a recorder *is* installed, every increment is
/// also forwarded to it, where increments aggregate by key across all
/// counter instances.
///
/// `new` is `const`, so counters work both as `static`s and as struct
/// fields scoped to one plan or session.
pub struct Counter {
    key: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter reporting under `key`.
    pub const fn new(key: &'static str) -> Self {
        Counter {
            key,
            value: AtomicU64::new(0),
        }
    }

    /// Increase the counter by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
        recorder::with(|r| r.counter(self.key, delta));
    }

    /// Increase the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The local value accumulated by this instance.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The key this counter reports under.
    pub fn key(&self) -> &'static str {
        self.key
    }
}

impl Clone for Counter {
    /// Cloning snapshots the current value into a fresh atomic.
    fn clone(&self) -> Self {
        Counter {
            key: self.key,
            value: AtomicU64::new(self.get()),
        }
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("key", &self.key)
            .field("value", &self.get())
            .finish()
    }
}

/// A named, lock-free distribution with logarithmic buckets.
///
/// Values land in bucket `⌈log₂(v+1)⌉`: bucket 0 holds exactly the
/// value 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Like
/// [`Counter`], the histogram is always locally readable and forwards
/// each observation to the installed recorder when one is present.
pub struct Histogram {
    key: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram reporting under `key`.
    pub const fn new(key: &'static str) -> Self {
        Histogram {
            key,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        recorder::with(|r| r.histogram(self.key, value));
    }

    /// Total number of observations recorded locally.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The local count in bucket `index` (see the type docs for the
    /// bucket boundaries). Out-of-range indices read as 0.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets
            .get(index)
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// The key this histogram reports under.
    pub fn key(&self) -> &'static str {
        self.key
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("key", &self.key)
            .field("count", &self.count())
            .finish()
    }
}

/// The bucket `value` lands in: 0 for 0, otherwise one plus the
/// position of the highest set bit.
pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_is_locally_readable_without_recorder() {
        let c = Counter::new("test.counter");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let snapshot = c.clone();
        c.incr();
        assert_eq!(snapshot.get(), 5);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_counts_locally() {
        let h = Histogram::new("test.hist");
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(10), 1);
    }
}
