//! The crate's one sanctioned wall-clock read.
//!
//! Mirrors the epoch pattern of `cqshap-numeric::cancel`: a
//! process-wide monotonic anchor initialized on first use, so every
//! reading is a plain `u64` nanosecond offset that spans can subtract
//! without touching `Instant` arithmetic. The `no-wall-clock` lint rule
//! and `clippy.toml` both sanction exactly this module; everything else
//! in the workspace measures through `cancel::Stopwatch` or this
//! function.
//!
//! The module also counts its reads ([`reads`]), which is what lets the
//! disabled-path test pin the contract "no recorder installed ⇒ no
//! wall-clock read".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static READS: AtomicU64 = AtomicU64::new(0);

/// Monotonic nanoseconds since the first obs clock read of the
/// process. Saturates at `u64::MAX` (≈ 584 years of uptime).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    READS.fetch_add(1, Ordering::Relaxed);
    // The one sanctioned `Instant::now` of the crate (see clippy.toml
    // and the lint scope list).
    #[allow(clippy::disallowed_methods)]
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How many wall-clock reads [`now_ns`] has served so far. A span
/// created while no recorder is installed performs none — the
/// disabled-path test asserts this stays flat.
pub fn reads() -> u64 {
    READS.load(Ordering::Relaxed)
}
