//! The process-wide recorder sink and its install protocol.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::trace::TraceRecorder;

/// A sink for observability signals.
///
/// Implementations must be cheap and non-blocking-ish: every call
/// happens inline on the instrumented thread, possibly inside hot
/// engine loops (though only when a recorder is installed — the
/// disabled path never reaches these methods). All keys are
/// `&'static str` so implementations may use them as map keys without
/// copying.
pub trait Recorder: Sync {
    /// A phase span closed: `phase` ran from `start_ns` to `end_ns`
    /// (obs-clock nanoseconds), nested under `parent` if any.
    fn span(&self, phase: &'static str, parent: Option<&'static str>, start_ns: u64, end_ns: u64);
    /// A named counter increased by `delta`.
    fn counter(&self, key: &'static str, delta: u64);
    /// A value observed for a named distribution.
    fn histogram(&self, key: &'static str, value: u64);
    /// A discrete decision or incident, with free-form detail text.
    fn event(&self, kind: &'static str, detail: &str);
}

/// Set once a recorder is installed; every disabled-path check is a
/// single relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<&'static dyn Recorder> = OnceLock::new();
static TRACE: OnceLock<TraceRecorder> = OnceLock::new();

/// A recorder was already installed for this process.
///
/// Installation is first-come-first-served and permanent: the sink is
/// handed to arbitrary threads as `&'static`, so it can never be torn
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlreadyInstalled;

impl fmt::Display for AlreadyInstalled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "an observability recorder is already installed for this process"
        )
    }
}

impl Error for AlreadyInstalled {}

/// Install `recorder` as the process-wide sink.
///
/// Only the first install wins; later calls return
/// [`AlreadyInstalled`] and leave the existing sink in place. After a
/// successful install, [`enabled`] flips to `true` and stays there for
/// the life of the process.
pub fn install(recorder: &'static dyn Recorder) -> Result<(), AlreadyInstalled> {
    let mut fresh = false;
    RECORDER.get_or_init(|| {
        fresh = true;
        recorder
    });
    if fresh {
        ENABLED.store(true, Ordering::Release);
        Ok(())
    } else {
        Err(AlreadyInstalled)
    }
}

/// Install the built-in aggregating [`TraceRecorder`] and return it.
///
/// Idempotent: calling this again after it has already installed the
/// trace recorder returns the same instance. It only fails if a
/// *different* recorder was installed first.
pub fn install_trace() -> Result<&'static TraceRecorder, AlreadyInstalled> {
    let trace = TRACE.get_or_init(TraceRecorder::new);
    match install(trace) {
        Ok(()) => Ok(trace),
        Err(e) => {
            let installed = RECORDER
                .get()
                .is_some_and(|r| std::ptr::addr_eq(*r as *const dyn Recorder, trace));
            if installed {
                Ok(trace)
            } else {
                Err(e)
            }
        }
    }
}

/// Whether a recorder is installed. One relaxed atomic load; this is
/// the entire cost of every obs entry point when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the installed recorder, if any. Checks [`enabled`]
/// first so the closure (and any argument formatting inside it) is
/// never evaluated on the disabled path.
#[inline]
pub(crate) fn with(f: impl FnOnce(&dyn Recorder)) {
    if enabled() {
        if let Some(r) = RECORDER.get() {
            f(*r);
        }
    }
}

/// Forward a one-off counter increment to the installed recorder.
///
/// For counters that also need a locally readable value, use
/// [`Counter`](crate::Counter) instead.
#[inline]
pub fn counter(key: &'static str, delta: u64) {
    with(|r| r.counter(key, delta));
}

/// Forward a one-off histogram observation to the installed recorder.
#[inline]
pub fn histogram(key: &'static str, value: u64) {
    with(|r| r.histogram(key, value));
}

/// Record a discrete decision or incident.
///
/// `detail` is free-form text; callers that need to format it should
/// guard the formatting behind [`enabled`] so the disabled path stays
/// allocation-free.
#[inline]
pub fn event(kind: &'static str, detail: &str) {
    with(|r| r.event(kind, detail));
}
