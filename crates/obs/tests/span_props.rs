//! Property tests for span-stack balance with the trace recorder
//! installed: however a scope exits — normal drop, `?`/early return
//! before an inner guard was bound, or panic unwind — the thread-local
//! span stack returns to its entry depth. Runs in its own test process
//! so installing the trace recorder cannot leak into the disabled-path
//! test.

use cqshap_obs::{install_trace, span_current, span_depth, Span};
use proptest::prelude::*;

/// A fixed phase vocabulary (span phases must be `&'static str`).
static PHASES: &[&str] = &["p.a", "p.b", "p.c", "p.d", "p.e"];

/// Opens one span per element, recursing under it, so a `shape` of
/// length `n` builds a nesting chain `n` deep; returns `Err` at
/// `fail_at` to exercise `?`-style early exits with guards still open.
fn nest(shape: &[usize], fail_at: Option<usize>) -> Result<(), usize> {
    let Some((&first, rest)) = shape.split_first() else {
        return Ok(());
    };
    let _span = Span::enter(PHASES[first % PHASES.len()]);
    if fail_at == Some(rest.len()) {
        return Err(rest.len());
    }
    nest(rest, fail_at)
}

proptest! {
    #[test]
    fn nested_spans_balance(shape in prop::collection::vec(0usize..PHASES.len(), 0..24)) {
        install_trace().expect("only the trace recorder is ever installed here");
        let before = span_depth();
        nest(&shape, None).expect("no failure requested");
        prop_assert_eq!(span_depth(), before);
        prop_assert_eq!(span_current(), None);
    }

    #[test]
    fn early_return_restores_depth(
        shape in prop::collection::vec(0usize..PHASES.len(), 1..24),
        fail_at in 0usize..24,
    ) {
        install_trace().expect("only the trace recorder is ever installed here");
        let before = span_depth();
        // An `Err` bubbles out of `fail_at` nested guards via `?`-style
        // early return; every guard above the failure point unwinds.
        let _ = nest(&shape, Some(fail_at % shape.len()));
        prop_assert_eq!(span_depth(), before);
    }

    #[test]
    fn panic_unwind_restores_depth(shape in prop::collection::vec(0usize..PHASES.len(), 1..12)) {
        install_trace().expect("only the trace recorder is ever installed here");
        let before = span_depth();
        let result = std::panic::catch_unwind(|| {
            let _outer = Span::enter("unwind.outer");
            nest(&shape, None).expect("no failure requested");
            let _inner = Span::enter("unwind.inner");
            panic!("unwind through open spans");
        });
        prop_assert!(result.is_err());
        prop_assert_eq!(span_depth(), before);
    }
}

#[test]
fn leaked_inner_span_closed_by_outer_drop() {
    install_trace().expect("only the trace recorder is ever installed here");
    let before = span_depth();
    {
        let outer = Span::enter("leak.outer");
        // A leaked guard leaves its phase on the stack; the enclosing
        // span's drop truncates back to its own entry depth.
        std::mem::forget(Span::enter("leak.inner"));
        assert_eq!(span_depth(), before + 2);
        drop(outer);
    }
    assert_eq!(span_depth(), before);
    assert_eq!(span_current(), None);
}
