//! Pins the disabled-path cost contract: with no recorder installed,
//! spans, counters, and histograms perform no heap allocation and
//! never read the clock. Runs in its own test process (integration
//! test binary) so no other test can install a recorder first.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cqshap_obs::{clock, phase, Counter, Histogram, Span};

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static CTR: Counter = Counter::new(phase::CTR_POLY_SCHOOLBOOK);
static HIST: Histogram = Histogram::new(phase::HIST_POLY_OPERAND_LEN);

#[test]
fn disabled_path_does_no_allocation_and_no_clock_read() {
    assert!(
        !cqshap_obs::enabled(),
        "this test binary must never install a recorder"
    );
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let reads_before = clock::reads();

    (0..10_000).for_each(|i| {
        let _outer = Span::enter(phase::REPORT);
        let _inner = Span::enter(phase::RECOUNT);
        CTR.incr();
        CTR.add(3);
        HIST.record(i);
        cqshap_obs::counter(phase::CTR_CLASS_MEMO_HIT, 1);
        cqshap_obs::histogram(phase::HIST_ANYTIME_STRATUM_DRAWS, i);
        cqshap_obs::event(phase::EV_DEADLINE_TRIP, "never formatted");
    });

    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let reads = clock::reads() - reads_before;
    assert_eq!(allocs, 0, "disabled obs path allocated {allocs} times");
    assert_eq!(reads, 0, "disabled obs path read the clock {reads} times");

    // The local counter/histogram state still advanced — sessions read
    // `ReportStats` from these values with no recorder installed.
    assert_eq!(CTR.get(), 4 * 10_000);
    assert_eq!(HIST.count(), 10_000);

    // Disabled spans never touch the thread-local stack either.
    assert_eq!(cqshap_obs::span_depth(), 0);
    assert_eq!(cqshap_obs::span_current(), None);
}
