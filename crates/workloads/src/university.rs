//! The running example (Figure 1) and scalable university databases.

use cqshap_db::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The exact database of Figure 1: exogenous `Stud`, `Course`, `Adv`;
/// endogenous `TA` and `Reg`.
pub fn figure_1_database() -> Database {
    Database::parse(
        "# Figure 1 of the paper.\n\
         exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
         endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
         exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
         endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
         endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
         exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
         exo Adv(Michael, David)\n",
    )
    .expect("the static example parses")
}

/// A deterministic university workload with *exactly* `m` endogenous
/// facts, for the all-facts report benchmarks (`bench-report` in the
/// `cqshap-bench` harness): each of the `m / 4` students contributes
/// one endogenous `TA` fact and three endogenous `Reg` facts, so the
/// hierarchical `q1` recursion sees `m / 4` root groups of four facts.
///
/// # Panics
/// Panics unless `m` is a positive multiple of 4.
pub fn report_benchmark_db(m: usize) -> Database {
    assert!(
        m > 0 && m.is_multiple_of(4),
        "report_benchmark_db needs a positive multiple of 4, got {m}"
    );
    let students = m / 4;
    let courses = (students / 2).max(4);
    let mut db = Database::new();
    for c in 0..courses {
        db.add_exo("Course", &[&format!("c{c}"), &format!("f{}", c % 3)])
            .expect("distinct");
    }
    for s in 0..students {
        let name = format!("s{s}");
        db.add_exo("Stud", &[&name]).expect("distinct");
        db.add_exo("Adv", &[&format!("adv{}", s % 5), &name])
            .expect("distinct");
        db.add_endo("TA", &[&name]).expect("distinct");
        for j in 0..3 {
            db.add_endo("Reg", &[&name, &format!("c{}", (s + j) % courses)])
                .expect("distinct");
        }
    }
    db
}

/// A deterministic two-scenario workload with *exactly* `m` endogenous
/// facts for the union report benchmarks (`bench-report --ucq`): the
/// first half is the [`report_benchmark_db`] student side (`TA`/`Reg`),
/// the second half a disjoint lab side (`Asst`/`Closed`) with the same
/// group shape, so the 2-disjunct union
/// [`crate::queries::union_benchmark`] is hierarchical disjunct-wise
/// *and* in every intersection (the sides share no relation).
///
/// # Panics
/// Panics unless `m` is a positive multiple of 8.
pub fn union_benchmark_db(m: usize) -> Database {
    assert!(
        m > 0 && m.is_multiple_of(8),
        "union_benchmark_db needs a positive multiple of 8, got {m}"
    );
    let mut db = report_benchmark_db(m / 2);
    let labs = m / 8;
    for l in 0..labs {
        let lab = format!("l{l}");
        db.add_exo("Lab", &[&lab]).expect("distinct");
        db.add_endo("Closed", &[&lab]).expect("distinct");
        for j in 0..3 {
            db.add_endo("Asst", &[&lab, &format!("a{l}_{j}")])
                .expect("distinct");
        }
    }
    db
}

/// Parameters for scalable university databases.
#[derive(Debug, Clone)]
pub struct UniversityConfig {
    /// Number of students.
    pub students: usize,
    /// Number of courses.
    pub courses: usize,
    /// Number of faculties (course attribute).
    pub faculties: usize,
    /// Probability a student is a TA.
    pub ta_fraction: f64,
    /// Registrations per student (distinct courses).
    pub regs_per_student: usize,
    /// Declare `Stud`, `Course`, `Adv` as exogenous relations (the
    /// Section 4 setting).
    pub declare_exogenous: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            students: 20,
            courses: 8,
            faculties: 3,
            ta_fraction: 0.4,
            regs_per_student: 2,
            declare_exogenous: true,
            seed: 1,
        }
    }
}

impl UniversityConfig {
    /// Generates the database: exogenous `Stud`/`Course`/`Adv` facts,
    /// endogenous `TA`/`Reg` facts.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        let stud = db.add_relation("Stud", 1).expect("fresh schema");
        let course = db.add_relation("Course", 2).expect("fresh schema");
        let adv = db.add_relation("Adv", 2).expect("fresh schema");
        db.add_relation("TA", 1).expect("fresh schema");
        db.add_relation("Reg", 2).expect("fresh schema");
        if self.declare_exogenous {
            db.declare_exogenous_relation(stud).expect("no facts yet");
            db.declare_exogenous_relation(course).expect("no facts yet");
            db.declare_exogenous_relation(adv).expect("no facts yet");
        }
        for c in 0..self.courses {
            let f = rng.gen_range(0..self.faculties.max(1));
            db.add_exo("Course", &[&format!("c{c}"), &format!("f{f}")])
                .expect("distinct");
        }
        for s in 0..self.students {
            let name = format!("s{s}");
            db.add_exo("Stud", &[&name]).expect("distinct");
            db.add_exo("Adv", &[&format!("adv{}", s % 5), &name])
                .expect("distinct");
            if rng.gen_bool(self.ta_fraction) {
                db.add_endo("TA", &[&name]).expect("distinct");
            }
            let mut picked = Vec::new();
            while picked.len() < self.regs_per_student.min(self.courses) {
                let c = rng.gen_range(0..self.courses);
                if !picked.contains(&c) {
                    picked.push(c);
                    db.add_endo("Reg", &[&name, &format!("c{c}")])
                        .expect("distinct");
                }
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_shape() {
        let db = figure_1_database();
        assert_eq!(db.endo_count(), 8);
        assert_eq!(db.fact_count(), 20);
        assert!(db.find_fact("Reg", &["Caroline", "IC"]).is_some());
    }

    #[test]
    fn report_benchmark_db_has_exact_endo_count() {
        for m in [4usize, 64, 256] {
            let db = report_benchmark_db(m);
            assert_eq!(db.endo_count(), m, "m = {m}");
        }
    }

    #[test]
    fn union_benchmark_db_has_exact_endo_count_and_disjoint_sides() {
        for m in [8usize, 64, 256] {
            let db = union_benchmark_db(m);
            assert_eq!(db.endo_count(), m, "m = {m}");
            let asst = db.schema().id("Asst").unwrap();
            assert_eq!(db.relation_facts(asst).len(), 3 * (m / 8));
            let ta = db.schema().id("TA").unwrap();
            assert_eq!(db.relation_facts(ta).len(), m / 8);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = UniversityConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn generator_respects_config() {
        let cfg = UniversityConfig {
            students: 10,
            courses: 5,
            regs_per_student: 3,
            declare_exogenous: true,
            seed: 7,
            ..Default::default()
        };
        let db = cfg.generate();
        let stud = db.schema().id("Stud").unwrap();
        assert!(db.is_exogenous_relation(stud));
        assert_eq!(db.relation_facts(stud).len(), 10);
        let reg = db.schema().id("Reg").unwrap();
        assert_eq!(db.relation_facts(reg).len(), 30);
        // Different seeds differ.
        let other = UniversityConfig { seed: 8, ..cfg }.generate();
        assert_ne!(db.to_string(), other.to_string());
    }
}
