//! The paper's query catalog, by name.
//!
//! Centralizes every query the paper displays, so the experiments and
//! examples can reference them without re-typing (and re-typo-ing) the
//! datalog.

use cqshap_query::{parse_cq, parse_ucq, ConjunctiveQuery, UnionQuery};

/// `q1` of Example 2.2 (hierarchical).
pub fn q1() -> ConjunctiveQuery {
    parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").expect("static query")
}

/// `q2` of Example 2.2 (non-hierarchical; tractable once `Stud` and
/// `Course` are exogenous).
pub fn q2() -> ConjunctiveQuery {
    parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").expect("static query")
}

/// `q3` of Example 2.2 (self-joins, polarity consistent).
pub fn q3() -> ConjunctiveQuery {
    parse_cq("q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, 'IC'), Reg(z, 'DB')")
        .expect("static query")
}

/// `q4` of Example 2.2 (self-joins, not polarity consistent).
pub fn q4() -> ConjunctiveQuery {
    parse_cq("q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)")
        .expect("static query")
}

/// `q_RST`, the classic hard query.
pub fn qrst() -> ConjunctiveQuery {
    parse_cq("qRST() :- R(x), S(x, y), T(y)").expect("static query")
}

/// `q_¬RS¬T`.
pub fn qnrsnt() -> ConjunctiveQuery {
    parse_cq("qnRSnT() :- !R(x), S(x, y), !T(y)").expect("static query")
}

/// `q_R¬ST`.
pub fn qrnst() -> ConjunctiveQuery {
    parse_cq("qRnST() :- R(x), !S(x, y), T(y)").expect("static query")
}

/// `q_RS¬T`.
pub fn qrsnt() -> ConjunctiveQuery {
    parse_cq("qRSnT() :- R(x), S(x, y), !T(y)").expect("static query")
}

/// The introduction's equation (1).
pub fn farmer_exports() -> ConjunctiveQuery {
    crate::exports::exports_query()
}

/// Example 4.1's citations query.
pub fn citations() -> ConjunctiveQuery {
    crate::academic::citations_query()
}

/// Section 4.1's tractable example `q` (with `X = {S, P}`).
pub fn section_4_1_tractable() -> ConjunctiveQuery {
    parse_cq("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)").expect("static query")
}

/// Section 4.1's intractable twin `q'`.
pub fn section_4_1_hard() -> ConjunctiveQuery {
    parse_cq("qp() :- !R(x, w), S(z, x), !P(z, y), T(y, w)").expect("static query")
}

/// Example 4.2's first query (has a non-hierarchical path when
/// `X = {Q, S, U, P}`).
pub fn example_4_2_q() -> ConjunctiveQuery {
    parse_cq("q() :- !R(x), Q(x, v), S(x, z), U(z, w), !P(w, y), T(y, v)").expect("static query")
}

/// Example 4.2's second query (no non-hierarchical path when
/// `X = {R, S, O, P, V}`).
pub fn example_4_2_qprime() -> ConjunctiveQuery {
    parse_cq("qp() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
        .expect("static query")
}

/// Section 5.1's gap-property query.
pub fn gap_query() -> ConjunctiveQuery {
    parse_cq("q() :- R(x), S(x, y), !R(y)").expect("static query")
}

/// Proposition 5.5's query `q_RST¬R`.
pub fn qrst_nr() -> ConjunctiveQuery {
    cqshap_gadgets::prop55::qrst_nr_query()
}

/// Proposition 5.8's union `q_SAT`.
pub fn qsat() -> UnionQuery {
    cqshap_gadgets::prop58::qsat_query()
}

/// Example 5.3's symmetric self-join query.
pub fn example_5_3() -> ConjunctiveQuery {
    parse_cq("q() :- R(x, y), !R(y, x)").expect("static query")
}

/// Theorem B.5's "married couple, both unemployed" query.
pub fn unemployed_couple() -> ConjunctiveQuery {
    parse_cq("q() :- Unemployed(x), Married(x, y), Unemployed(y)").expect("static query")
}

/// Theorem B.5's "married couple, neither a citizen" query.
pub fn non_citizen_couple() -> ConjunctiveQuery {
    parse_cq("q() :- !Citizen(x), Married(x, y), !Citizen(y)").expect("static query")
}

/// A polarity-consistent UCQ¬ (tractable relevance, Section 5.2).
pub fn polarity_consistent_union() -> UnionQuery {
    parse_ucq("qa() :- R(x), !S(x); qb() :- R(x), T(x)").expect("static query")
}

/// The 2-disjunct hierarchical union of the `bench-report --ucq`
/// workload ([`crate::union_benchmark_db`]): `q1` on the student side,
/// a structurally identical rule on the disjoint lab side, so every
/// disjunct intersection stays self-join-free and hierarchical.
pub fn union_benchmark() -> UnionQuery {
    parse_ucq(
        "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
         q2() :- Lab(l), Asst(l, s), !Closed(l)",
    )
    .expect("static query")
}

/// The aggregate of the `bench-report --aggregate` workload: the
/// per-course count of registrations by non-TA students over
/// [`crate::report_benchmark_db`]. Every residual query `q[c ↦ const]`
/// is hierarchical, so the aggregate decomposition runs entirely on the
/// compiled engines.
pub fn per_course_count() -> ConjunctiveQuery {
    parse_cq("qc(c) :- Stud(s), !TA(s), Reg(s, c)").expect("static query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::{classify, ExactComplexity};

    #[test]
    fn catalog_parses_and_classifies() {
        assert_eq!(classify(&q1()), ExactComplexity::TractableHierarchical);
        for q in [
            q2(),
            qrst(),
            qnrsnt(),
            qrnst(),
            qrsnt(),
            farmer_exports(),
            citations(),
        ] {
            assert!(
                matches!(classify(&q), ExactComplexity::FpSharpPComplete { .. }),
                "{q}"
            );
        }
        for q in [unemployed_couple(), non_citizen_couple()] {
            assert!(
                matches!(classify(&q), ExactComplexity::SelfJoinHard { .. }),
                "{q}"
            );
        }
        // q3's only non-hierarchical triplets run through Adv, which
        // occurs twice, so Theorem B.5 is silent; q4, Example 5.3 and the
        // gap query mix polarities.
        for q in [q3(), q4(), example_5_3(), gap_query()] {
            assert!(
                matches!(classify(&q), ExactComplexity::OpenSelfJoins),
                "{q}"
            );
        }
        assert_eq!(qsat().disjuncts().len(), 4);
    }
}
