//! Random CNF formulas in the fragments used by the relevance
//! reductions.

use cqshap_gadgets::{Clause, CnfFormula, Literal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random 3CNF formula.
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    assert!(num_vars >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            Clause(
                (0..3)
                    .map(|_| Literal {
                        var: rng.gen_range(0..num_vars),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect(),
            )
        })
        .collect();
    CnfFormula::new(num_vars, clauses)
}

/// A random `(2+,2−,4+−)` formula (Proposition 5.5's fragment),
/// guaranteed to contain at least one positive 2-clause, as the
/// reduction requires.
pub fn random_224(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    assert!(num_vars >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    fn v(rng: &mut StdRng, num_vars: usize) -> usize {
        rng.gen_range(0..num_vars)
    }
    let mut clauses = vec![Clause(vec![
        Literal::pos(v(&mut rng, num_vars)),
        Literal::pos(v(&mut rng, num_vars)),
    ])];
    for _ in 1..num_clauses.max(1) {
        let kind: u8 = rng.gen_range(0..3);
        clauses.push(match kind {
            0 => Clause(vec![
                Literal::pos(v(&mut rng, num_vars)),
                Literal::pos(v(&mut rng, num_vars)),
            ]),
            1 => Clause(vec![
                Literal::neg(v(&mut rng, num_vars)),
                Literal::neg(v(&mut rng, num_vars)),
            ]),
            _ => Clause(vec![
                Literal::pos(v(&mut rng, num_vars)),
                Literal::pos(v(&mut rng, num_vars)),
                Literal::neg(v(&mut rng, num_vars)),
                Literal::neg(v(&mut rng, num_vars)),
            ]),
        });
    }
    let f = CnfFormula::new(num_vars, clauses);
    debug_assert!(f.is_224_shape());
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        for seed in 0..10 {
            assert!(random_3sat(5, 12, seed).is_3sat_shape());
            assert!(random_224(5, 8, seed).is_224_shape());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_3sat(4, 9, 3), random_3sat(4, 9, 3));
        assert_eq!(random_224(4, 9, 3), random_224(4, 9, 3));
    }

    #[test]
    fn prop55_reduction_accepts_generated_formulas() {
        for seed in 0..5 {
            let f = random_224(4, 6, seed);
            assert!(cqshap_gadgets::prop55::build_relevance_instance(&f).is_ok());
        }
    }
}
