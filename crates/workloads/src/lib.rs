//! Seeded synthetic workloads for the `cqshap` experiments.
//!
//! Every generator is deterministic given its seed, so experiment tables
//! are reproducible run-to-run. The module layout follows the paper's
//! scenarios:
//!
//! * [`university`] — the running example (Figure 1) and scalable
//!   versions of it;
//! * [`exports`] — the farmer/export/grows scenario of the introduction;
//! * [`academic`] — the publications scenario of Example 4.1;
//! * [`queries`] — the paper's query catalog, by name;
//! * [`random_db`] — random databases matched to an arbitrary query;
//! * [`graphs`] — random bipartite graphs and ordinary graphs;
//! * [`formulas`] — random CNF formulas in the fragments the relevance
//!   reductions need.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod academic;
pub mod exports;
pub mod formulas;
pub mod graphs;
pub mod queries;
pub mod random_db;
pub mod university;

pub use university::{
    figure_1_database, report_benchmark_db, union_benchmark_db, UniversityConfig,
};
