//! The Example 4.1 scenario: researcher contribution to citation counts,
//! with exogenous publication data.

use cqshap_db::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the academic-publications scenario.
#[derive(Debug, Clone)]
pub struct AcademicConfig {
    /// Number of authors (endogenous `Author` facts).
    pub authors: usize,
    /// Number of institutions.
    pub institutions: usize,
    /// Publications per author (exogenous `Pub`).
    pub pubs_per_author: usize,
    /// Probability a publication has a `Citations` record (exogenous).
    pub cited_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AcademicConfig {
    fn default() -> Self {
        AcademicConfig {
            authors: 12,
            institutions: 3,
            pubs_per_author: 2,
            cited_fraction: 0.7,
            seed: 3,
        }
    }
}

impl AcademicConfig {
    /// Generates the database with `Pub` and `Citations` declared
    /// exogenous, matching Example 4.1's assumption.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        db.add_relation("Author", 2).expect("fresh schema");
        let pb = db.add_relation("Pub", 2).expect("fresh schema");
        let ci = db.add_relation("Citations", 2).expect("fresh schema");
        db.declare_exogenous_relation(pb).expect("no facts yet");
        db.declare_exogenous_relation(ci).expect("no facts yet");
        let mut pub_id = 0usize;
        for a in 0..self.authors {
            let name = format!("auth{a}");
            let inst = format!("inst{}", rng.gen_range(0..self.institutions.max(1)));
            db.add_endo("Author", &[&name, &inst]).expect("distinct");
            for _ in 0..self.pubs_per_author {
                let p = format!("pub{pub_id}");
                pub_id += 1;
                db.add_exo("Pub", &[&name, &p]).expect("distinct");
                if rng.gen_bool(self.cited_fraction) {
                    let c = format!("{}", rng.gen_range(1..100));
                    db.add_exo("Citations", &[&p, &c]).expect("distinct");
                }
            }
        }
        db
    }
}

/// Example 4.1's query.
pub fn citations_query() -> cqshap_query::ConjunctiveQuery {
    cqshap_query::parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)")
        .expect("static query parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn example_4_1_classification_flips_with_exogenous_knowledge() {
        use cqshap_query::{classify, classify_with_exo, ExactComplexity};
        let q = citations_query();
        assert!(matches!(
            classify(&q),
            ExactComplexity::FpSharpPComplete { .. }
        ));
        let db = AcademicConfig::default().generate();
        let exo: HashSet<String> = db.exogenous_relation_names().into_iter().collect();
        assert_eq!(
            classify_with_exo(&q, &exo),
            ExactComplexity::TractableViaExoShap
        );
    }

    #[test]
    fn shape_and_determinism() {
        let cfg = AcademicConfig::default();
        let db = cfg.generate();
        assert_eq!(db.endo_count(), cfg.authors);
        assert_eq!(db.to_string(), cfg.generate().to_string());
    }
}
