//! The introduction's scenario: farmers exporting products to countries
//! where they do not grow.
//!
//! ```text
//! q() :- Farmer(m), Export(m, p, c), ¬Grows(c, p)
//! Count{c | Farmer(m), Export(m, p, c), ¬Grows(c, p)}
//! ```

use cqshap_db::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the exports scenario.
#[derive(Debug, Clone)]
pub struct ExportsConfig {
    /// Number of farmers (endogenous `Farmer` facts).
    pub farmers: usize,
    /// Number of products.
    pub products: usize,
    /// Number of countries.
    pub countries: usize,
    /// Number of export triples (exogenous).
    pub exports: usize,
    /// Probability that a (country, product) pair grows (endogenous).
    pub grows_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExportsConfig {
    fn default() -> Self {
        ExportsConfig {
            farmers: 6,
            products: 4,
            countries: 4,
            exports: 10,
            grows_density: 0.3,
            seed: 2,
        }
    }
}

impl ExportsConfig {
    /// Generates the database: endogenous `Farmer` and `Grows`,
    /// exogenous `Export`.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        db.add_relation("Farmer", 1).expect("fresh schema");
        db.add_relation("Export", 3).expect("fresh schema");
        db.add_relation("Grows", 2).expect("fresh schema");
        for m in 0..self.farmers {
            db.add_endo("Farmer", &[&format!("m{m}")])
                .expect("distinct");
        }
        let mut inserted = 0usize;
        let mut guard = 0usize;
        while inserted < self.exports && guard < self.exports * 20 {
            guard += 1;
            let m = rng.gen_range(0..self.farmers.max(1));
            let p = rng.gen_range(0..self.products.max(1));
            let c = rng.gen_range(0..self.countries.max(1));
            if db
                .add_exo(
                    "Export",
                    &[&format!("m{m}"), &format!("p{p}"), &format!("c{c}")],
                )
                .is_ok()
            {
                inserted += 1;
            }
        }
        for c in 0..self.countries {
            for p in 0..self.products {
                if rng.gen_bool(self.grows_density) {
                    db.add_endo("Grows", &[&format!("c{c}"), &format!("p{p}")])
                        .expect("distinct");
                }
            }
        }
        db
    }
}

/// The Boolean query of equation (1) in the introduction.
pub fn exports_query() -> cqshap_query::ConjunctiveQuery {
    cqshap_query::parse_cq("q() :- Farmer(m), Export(m, p, c), !Grows(c, p)")
        .expect("static query parses")
}

/// The aggregate-ready variant with the country in the head.
pub fn exports_count_query() -> cqshap_query::ConjunctiveQuery {
    cqshap_query::parse_cq("qc(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)")
        .expect("static query parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = ExportsConfig::default();
        let db = cfg.generate();
        let farmer = db.schema().id("Farmer").unwrap();
        assert_eq!(db.relation_facts(farmer).len(), 6);
        let export = db.schema().id("Export").unwrap();
        assert_eq!(db.relation_facts(export).len(), 10);
        // Farmer and Grows facts are the endogenous ones.
        for &f in db.endo_facts() {
            let rel = db.schema().name(db.fact(f).rel);
            assert!(rel == "Farmer" || rel == "Grows");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = ExportsConfig {
            seed: 5,
            ..Default::default()
        };
        assert_eq!(cfg.generate().to_string(), cfg.generate().to_string());
    }

    #[test]
    fn queries_parse_and_classify() {
        use cqshap_query::{classify, ExactComplexity};
        let q = exports_query();
        // Equation (1) "falls on the hardness side" (Section 1).
        assert!(matches!(
            classify(&q),
            ExactComplexity::FpSharpPComplete { .. }
        ));
    }
}
