//! Random graph generators for the hardness experiments.

use cqshap_gadgets::{BipartiteGraph, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random bipartite graph with the given sides and edge probability.
pub fn random_bipartite(left: usize, right: usize, edge_prob: f64, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..left {
        for b in 0..right {
            if rng.gen_bool(edge_prob) {
                edges.push((a, b));
            }
        }
    }
    BipartiteGraph::new(left, right, edges)
}

/// A random simple graph with the given vertex count and edge
/// probability.
pub fn random_graph(n: usize, edge_prob: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(edge_prob) {
                edges.push((a, b));
            }
        }
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_shape_and_determinism() {
        let g = random_bipartite(3, 4, 0.5, 9);
        assert_eq!(g.left(), 3);
        assert_eq!(g.right(), 4);
        let h = random_bipartite(3, 4, 0.5, 9);
        assert_eq!(g, h);
        assert_ne!(g, random_bipartite(3, 4, 0.5, 10));
    }

    #[test]
    fn graph_edge_probability_extremes() {
        assert!(random_graph(5, 0.0, 1).edges().is_empty());
        assert_eq!(random_graph(5, 1.0, 1).edges().len(), 10);
    }
}
