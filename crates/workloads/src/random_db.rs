//! Random databases matched to an arbitrary query's schema.
//!
//! Used by the cross-validation property tests (exact algorithms vs
//! brute force on random inputs) and by the scaling benchmarks.

use cqshap_db::{Database, Provenance};
use cqshap_query::{Atom, ConjunctiveQuery, Term, UnionQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random database generation.
#[derive(Debug, Clone)]
pub struct RandomDbConfig {
    /// Active-domain size.
    pub domain: usize,
    /// Facts attempted per relation of the query.
    pub facts_per_relation: usize,
    /// Probability a generated fact is endogenous (facts of declared
    /// exogenous relations are always exogenous).
    pub endo_prob: f64,
    /// Relations to declare exogenous (members of `X`).
    pub exogenous_relations: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDbConfig {
    fn default() -> Self {
        RandomDbConfig {
            domain: 4,
            facts_per_relation: 5,
            endo_prob: 0.6,
            exogenous_relations: Vec::new(),
            seed: 4,
        }
    }
}

impl RandomDbConfig {
    /// Generates a database over exactly the relations of `q` (with the
    /// query's constants included in the domain so constant atoms can
    /// match).
    pub fn generate(&self, q: &ConjunctiveQuery) -> Database {
        self.generate_for_atoms(&q.atoms().iter().collect::<Vec<_>>())
    }

    /// [`RandomDbConfig::generate`] over the relations of *every*
    /// disjunct of a union.
    pub fn generate_union(&self, u: &UnionQuery) -> Database {
        let atoms: Vec<&Atom> = u.disjuncts().iter().flat_map(|d| d.atoms()).collect();
        self.generate_for_atoms(&atoms)
    }

    fn generate_for_atoms(&self, atoms: &[&Atom]) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        let mut constants: Vec<String> = (0..self.domain).map(|i| format!("d{i}")).collect();
        for atom in atoms {
            for t in &atom.terms {
                if let Term::Const(c) = t {
                    if !constants.contains(c) {
                        constants.push(c.clone());
                    }
                }
            }
        }
        for atom in atoms {
            let rel = db
                .add_relation(&atom.relation, atom.terms.len())
                .expect("consistent");
            if self.exogenous_relations.contains(&atom.relation) {
                let _ = db.declare_exogenous_relation(rel);
            }
        }
        for atom in atoms {
            let rel = db.schema().id(&atom.relation).expect("registered");
            let arity = db.schema().arity(rel);
            for _ in 0..self.facts_per_relation {
                let tuple: Vec<String> = (0..arity)
                    .map(|_| constants[rng.gen_range(0..constants.len())].clone())
                    .collect();
                let refs: Vec<&str> = tuple.iter().map(|s| &**s).collect();
                let provenance = if db.is_exogenous_relation(rel) || !rng.gen_bool(self.endo_prob) {
                    Provenance::Exogenous
                } else {
                    Provenance::Endogenous
                };
                // Duplicates are simply skipped.
                let _ = db.insert(&atom.relation, &refs, provenance);
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    #[test]
    fn respects_exogenous_declarations() {
        let q = parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        let cfg = RandomDbConfig {
            exogenous_relations: vec!["Pub".into(), "Citations".into()],
            ..Default::default()
        };
        let db = cfg.generate(&q);
        for name in ["Pub", "Citations"] {
            let rel = db.schema().id(name).unwrap();
            assert!(db.is_exogenous_relation(rel));
            for &f in db.relation_facts(rel) {
                assert!(!db.fact(f).provenance.is_endogenous());
            }
        }
    }

    #[test]
    fn includes_query_constants() {
        let q = parse_cq("q() :- Course(x, 'CS')").unwrap();
        let db = RandomDbConfig::default().generate(&q);
        assert!(db.interner().get("CS").is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let q = parse_cq("q() :- R(x), S(x, y), !T(y)").unwrap();
        let cfg = RandomDbConfig {
            seed: 11,
            ..Default::default()
        };
        assert_eq!(cfg.generate(&q).to_string(), cfg.generate(&q).to_string());
    }
}
