//! Deadline/budget plumbing for the exact engines.
//!
//! The resource types themselves ([`Budget`], [`CancelToken`]) live in
//! `cqshap-numeric` so the polynomial kernels can poll the same token
//! the engines arm; this module re-exports them and provides the one
//! core-side convention: converting a tripped token into
//! [`CoreError::DeadlineExceeded`] with a named pipeline phase.
//!
//! Every long-running loop in the crate calls the crate-private
//! `check` (or the batched-progress variant `check_partial`) at
//! group/convolution granularity. The cancelled kernels may have produced placeholder
//! values (see `cqshap_numeric::poly`'s `*_cancel` functions) — the
//! sticky flag guarantees a checkpoint *after* any placeholder
//! production fails before the placeholder can escape an engine.
//!
//! Phase labels are the `&'static str` keys of [`cqshap_obs::phase`],
//! so a `DeadlineExceeded { phase }` error and the observability spans
//! name the same moment identically, and every trip emits a
//! `deadline.trip` event to the installed recorder.

pub use cqshap_numeric::cancel::{Budget, CancelToken, Stopwatch};

use crate::error::CoreError;

/// Converts a tripped `token` into [`CoreError::DeadlineExceeded`];
/// `Ok(())` while the budget holds.
pub(crate) fn check(token: &CancelToken, phase: &'static str) -> Result<(), CoreError> {
    check_partial(token, phase, None)
}

/// [`check`] for batched phases: `partial` reports how many per-item
/// units were already completed when the budget tripped. Callers that
/// hold the finished answers attach them afterwards with
/// [`CoreError::with_partial_answers`].
pub(crate) fn check_partial(
    token: &CancelToken,
    phase: &'static str,
    partial: Option<usize>,
) -> Result<(), CoreError> {
    if token.should_stop() {
        cqshap_obs::event(cqshap_obs::phase::EV_DEADLINE_TRIP, phase);
        return Err(CoreError::DeadlineExceeded {
            phase: phase.to_string(),
            elapsed: token.elapsed(),
            partial: partial.map(|completed| crate::error::PartialProgress {
                completed,
                answers: Vec::new(),
            }),
        });
    }
    Ok(())
}
