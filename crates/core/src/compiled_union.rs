//! The batched all-facts Shapley engine for UCQ¬s: inclusion–exclusion
//! over compiled per-subset structures.
//!
//! For a union `U = q₁ ∨ ⋯ ∨ q_d`, a world satisfies `U` iff it
//! satisfies some disjunct, so the satisfying-coalition counts obey
//!
//! ```text
//! |Sat(D, U, k)| = Σ_{∅ ≠ S ⊆ [d]} (−1)^{|S|+1} |Sat(D, ⋀_{i∈S} qᵢ, k)|
//! ```
//!
//! and the Shapley reduction, being *linear* in the count differences
//! `N⁺_k − N_k`, splits over the same signed sum:
//!
//! ```text
//! Shapley(D, U, f) = Σ_S (−1)^{|S|+1} · Shapley(D, ⋀_{i∈S} qᵢ, f).
//! ```
//!
//! [`CompiledUnionCount`] therefore compiles [`CompiledCount`] engines
//! for the non-empty subsets of disjuncts — each conjunction built by
//! [`cqshap_query::conjoin_disjuncts`] with variables renamed apart —
//! and answers every fact by the signed sum of the subset engines'
//! masked recounts. Contradictory conjunctions (a ground atom asserted
//! and denied) contribute identically zero and are skipped at compile
//! time; conjunctions outside the compiled fragment (an induced
//! self-join or a non-hierarchical join structure) abort compilation
//! with [`CoreError::IntractableIntersection`] naming the offending
//! intersection, so strategy routing can fall back or report precisely.
//!
//! Distinct subsets routinely conjoin to the *same* query — a disjunct
//! absorbed by another (shared ground atoms merge) makes `S` and
//! `S ∪ {i}` collide, and structurally repeated disjuncts collide
//! wholesale. Compiling each collision class once, the engines are
//! keyed by a canonical form of the conjunction and carry the *net*
//! signed coefficient `Σ_S (−1)^{|S|+1}` of their class; classes whose
//! coefficients cancel to zero are dropped before compilation. The
//! signed sum over `2^d − 1` subsets thus runs over (often far) fewer
//! compiled engines without changing a single term of the identity.
//!
//! Everything stays exact: each engine's value is a reduced rational
//! over `m!`, and the signed sum is exact rational arithmetic, so the
//! result is bit-identical to the per-fact reference paths.

use std::collections::HashMap;
use std::sync::OnceLock;

use cqshap_db::{Database, FactId};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_query::{
    conjoin_disjuncts, is_hierarchical, self_join_witness, subset_label, ConjunctiveQuery,
    DisjunctConjunction, Term as QueryTerm, UnionQuery,
};

use crate::budget::{self, CancelToken};
use crate::compiled::{CompiledCount, EngineUpdate};
use crate::error::CoreError;

/// One signed inclusion–exclusion term: the compiled engine shared by a
/// class of structurally identical subset conjunctions, with the class's
/// net signed coefficient.
struct SignedTerm {
    /// `Σ_S (−1)^{|S|+1}` over the subsets whose conjunctions share this
    /// engine's canonical form. Never zero — cancelled classes are
    /// dropped before compilation.
    coeff: i64,
    engine: CompiledCount,
}

/// A term of [`canonical_key`]: constants verbatim, variables by rank of
/// first occurrence over the canonically ordered atoms.
#[derive(Clone, PartialEq, Eq, Hash)]
enum CanonTerm {
    Var(u32),
    Const(String),
}

/// A structural canonical form for a *self-join-free* conjunction: atoms
/// sorted by `(negated, relation)` — unique, since no relation repeats —
/// with variables renamed by first occurrence over that order. Two
/// subset conjunctions with equal keys count exactly the same worlds
/// (they differ only in query name and variable names), so one compiled
/// engine serves both.
fn canonical_key(q: &ConjunctiveQuery) -> Vec<(bool, String, Vec<CanonTerm>)> {
    let mut atoms: Vec<_> = q.atoms().iter().collect();
    atoms.sort_by_key(|a| (a.negated, a.relation.clone()));
    let mut rank: HashMap<u32, u32> = HashMap::new();
    atoms
        .into_iter()
        .map(|a| {
            let terms = a
                .terms
                .iter()
                .map(|t| match t {
                    QueryTerm::Const(c) => CanonTerm::Const(c.clone()),
                    QueryTerm::Var(v) => {
                        let next = rank.len() as u32;
                        CanonTerm::Var(*rank.entry(v.0).or_insert(next))
                    }
                })
                .collect();
            (a.negated, a.relation.clone(), terms)
        })
        .collect()
}

/// A `(db, union)` pair compiled for batched all-facts Shapley
/// computation via inclusion–exclusion. Shared immutably across report
/// worker threads, like [`CompiledCount`] — and, like it, free of any
/// database borrow: query-time methods take `&Database`, and
/// [`CompiledUnionCount::update`] maintains every subset engine across
/// an in-place database update.
pub struct CompiledUnionCount {
    terms: Vec<SignedTerm>,
    /// Dense combined bucket id per endogenous fact plus the bucket
    /// count (see [`CompiledUnionCount::bucket_of`]), built lazily on
    /// first use — the single-fact value paths never consult it.
    bucket_index: OnceLock<(HashMap<FactId, usize>, usize)>,
}

impl CompiledUnionCount {
    /// Cap on the number of disjuncts (the engine compiles `2^d − 1`
    /// subset conjunctions).
    pub const MAX_DISJUNCTS: usize = 10;

    /// Enumerates the non-empty subset conjunctions of `u`, skipping the
    /// unsatisfiable ones. Returns `(negative-sign, label, query)`
    /// triples; the label names the intersection for diagnostics.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] beyond [`Self::MAX_DISJUNCTS`]
    /// disjuncts, [`CoreError::Query`] if a conjunction fails to build.
    pub(crate) fn subset_conjunctions(
        u: &UnionQuery,
    ) -> Result<Vec<(bool, String, ConjunctiveQuery)>, CoreError> {
        let d = u.disjuncts().len();
        if d > Self::MAX_DISJUNCTS {
            return Err(CoreError::Unsupported(format!(
                "union has {d} disjuncts; the inclusion–exclusion engine compiles 2^d − 1 \
                 conjunctions and caps d at {}",
                Self::MAX_DISJUNCTS
            )));
        }
        let mut out = Vec::with_capacity((1usize << d) - 1);
        for mask in 1usize..(1usize << d) {
            let subset: Vec<&ConjunctiveQuery> = u
                .disjuncts()
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, q)| q)
                .collect();
            let label = subset_label(u.disjuncts(), mask);
            let name = format!("{}_cap{mask:x}", u.name());
            match conjoin_disjuncts(&name, &subset)? {
                DisjunctConjunction::Unsatisfiable => continue,
                DisjunctConjunction::Query(q) => {
                    out.push((mask.count_ones() % 2 == 0, label, q));
                }
            }
        }
        Ok(out)
    }

    /// Checks that a subset conjunction lies in the compiled fragment,
    /// converting failures into [`CoreError::IntractableIntersection`]
    /// naming the intersection.
    pub(crate) fn check_tractable(label: &str, q: &ConjunctiveQuery) -> Result<(), CoreError> {
        if let Some(rel) = self_join_witness(q) {
            return Err(CoreError::IntractableIntersection {
                intersection: label.to_string(),
                reason: format!("the conjunction has a self-join on relation {rel}"),
            });
        }
        if !is_hierarchical(q) {
            return Err(CoreError::IntractableIntersection {
                intersection: label.to_string(),
                reason: "the conjunction is not hierarchical".to_string(),
            });
        }
        Ok(())
    }

    /// Compiles `u` against `db`: one [`CompiledCount`] per satisfiable
    /// non-empty subset conjunction.
    ///
    /// # Errors
    /// [`CoreError::IntractableIntersection`] when some conjunction
    /// leaves the compiled fragment (the message names the intersection),
    /// plus anything [`CompiledCount::compile`] raises.
    pub fn compile(db: &Database, u: &UnionQuery) -> Result<Self, CoreError> {
        Self::compile_with_threads(db, u, 0)
    }

    /// [`CompiledUnionCount::compile`] with an explicit worker cap for
    /// each subset engine's parallel product trees (`0` = all available
    /// cores); the cap sticks across maintenance.
    ///
    /// # Errors
    /// As [`CompiledUnionCount::compile`].
    pub fn compile_with_threads(
        db: &Database,
        u: &UnionQuery,
        threads: usize,
    ) -> Result<Self, CoreError> {
        Self::compile_impl(db, u, threads, None)
    }

    /// [`CompiledUnionCount::compile_with_threads`] polling `cancel`
    /// between (and inside) the per-class subset compiles: a tripped
    /// budget aborts with [`CoreError::DeadlineExceeded`] whose
    /// `partial` reports how many subset engines had compiled.
    ///
    /// # Errors
    /// As [`CompiledUnionCount::compile`], plus
    /// [`CoreError::DeadlineExceeded`].
    pub fn compile_with_cancel(
        db: &Database,
        u: &UnionQuery,
        threads: usize,
        cancel: CancelToken,
    ) -> Result<Self, CoreError> {
        Self::compile_impl(db, u, threads, Some(cancel))
    }

    fn compile_impl(
        db: &Database,
        u: &UnionQuery,
        threads: usize,
        cancel: Option<CancelToken>,
    ) -> Result<Self, CoreError> {
        let _span = cqshap_obs::Span::enter(cqshap_obs::phase::UNION_COMPILE);
        // Bucket the subset conjunctions by canonical form first: one
        // engine per class, weighted by the class's net coefficient.
        // Tractability is checked per subset so the error still names
        // the offending intersection, not its class representative.
        let mut classes: HashMap<Vec<(bool, String, Vec<CanonTerm>)>, usize> = HashMap::new();
        let mut pending: Vec<(i64, ConjunctiveQuery)> = Vec::new();
        for (negative, label, q) in Self::subset_conjunctions(u)? {
            Self::check_tractable(&label, &q)?;
            let sign = if negative { -1 } else { 1 };
            let next = pending.len();
            match classes.entry(canonical_key(&q)) {
                // cqshap-lint: allow(no-panic-index) -- the entry's stored index was pushed into pending when the class was created
                std::collections::hash_map::Entry::Occupied(e) => pending[*e.get()].0 += sign,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(next);
                    pending.push((sign, q));
                }
            }
        }
        let mut terms = Vec::new();
        for (coeff, q) in pending {
            if coeff == 0 {
                continue;
            }
            let engine = match &cancel {
                Some(token) => {
                    budget::check_partial(
                        token,
                        cqshap_obs::phase::UNION_COMPILE,
                        Some(terms.len()),
                    )?;
                    CompiledCount::compile_with_cancel(db, &q, threads, token.clone())?
                }
                None => CompiledCount::compile_with_threads(db, &q, threads)?,
            };
            terms.push(SignedTerm { coeff, engine });
        }
        Ok(CompiledUnionCount {
            terms,
            bucket_index: OnceLock::new(),
        })
    }

    /// Patches every subset engine after one in-place database update
    /// (the database must already be mutated). Returns `Ok(false)` when
    /// any subset engine reports structural drift — the caller must
    /// recompile the whole union engine.
    ///
    /// # Errors
    /// Anything [`CompiledCount::update`] raises.
    pub fn update(&mut self, db: &Database, change: EngineUpdate) -> Result<bool, CoreError> {
        for t in &mut self.terms {
            if !t.engine.update(db, change)? {
                return Ok(false);
            }
        }
        self.bucket_index = OnceLock::new();
        Ok(true)
    }

    /// Combined bucket layout: facts sharing every subset engine's
    /// bucket share recount state across the whole signed sum, so the
    /// report fan-out keeps them on one thread.
    fn bucket_index(&self, db: &Database) -> &(HashMap<FactId, usize>, usize) {
        self.bucket_index.get_or_init(|| {
            let mut key_ids: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut bucket_ids = HashMap::with_capacity(db.endo_count());
            for &f in db.endo_facts() {
                let key: Vec<usize> = self.terms.iter().map(|t| t.engine.bucket_of(f)).collect();
                let next = key_ids.len();
                let id = *key_ids.entry(key).or_insert(next);
                bucket_ids.insert(f, id);
            }
            (bucket_ids, key_ids.len().max(1))
        })
    }

    /// Number of compiled inclusion–exclusion terms: satisfiable subset
    /// conjunctions after merging structurally identical ones and
    /// dropping classes whose signed coefficients cancel.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Is `f`'s Shapley value known to be zero without any recounting in
    /// *every* subset engine?
    pub fn is_structurally_null(&self, f: FactId) -> bool {
        self.terms.iter().all(|t| t.engine.is_structurally_null(f))
    }

    /// An opaque bucket id grouping facts that share recount state
    /// across all subset engines (see [`CompiledCount::bucket_of`]).
    pub fn bucket_of(&self, db: &Database, f: FactId) -> usize {
        self.bucket_index(db).0.get(&f).copied().unwrap_or(0)
    }

    /// Total number of bucket ids (all in `0..buckets()`).
    pub fn buckets(&self, db: &Database) -> usize {
        self.bucket_index(db).1
    }

    /// The exact Shapley value of `f` under the union: the signed sum of
    /// the subset engines' values, accumulated over the shared `m!`
    /// numerator domain (every subset engine counts the same `Dn`) and
    /// normalized once.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn value(&self, db: &Database, f: FactId) -> Result<BigRational, CoreError> {
        let num = self.shapley_numerator(db, f)?;
        Ok(self.normalize_numerator(num))
    }

    /// The signed numerator sum over the common denominator `m!` — see
    /// [`CompiledCount::shapley_numerator`].
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn shapley_numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError> {
        if db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: db.render_fact(f),
            });
        }
        let mut acc = BigInt::zero();
        for t in &self.terms {
            let n = t.engine.shapley_numerator(db, f)?;
            if !n.is_zero() {
                acc += &(n * BigInt::from_i64(t.coeff));
            }
        }
        Ok(acc)
    }

    /// `num / m!` in lowest terms, through the first subset engine's
    /// memoized reduction (all engines share `m`).
    pub fn normalize_numerator(&self, num: BigInt) -> BigRational {
        match self.terms.first() {
            Some(t) => t.engine.normalize_numerator(num),
            None => {
                debug_assert!(num.is_zero(), "no terms, no contributions");
                BigRational::zero()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anyquery::AnyQuery;
    use crate::satcount::{BruteForceCounter, SatCountOracle};
    use crate::shapley::shapley_via_counts;
    use cqshap_db::FactMask;
    use cqshap_numeric::BigInt;
    use cqshap_query::parse_ucq;

    fn db_two_sides() -> Database {
        Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\n\
             endo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nexo Lab(l2)\n\
             endo Asst(l1, a)\nendo Asst(l2, b)\nendo Closed(l1)\n",
        )
        .unwrap()
    }

    fn union_two_sides() -> UnionQuery {
        parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap()
    }

    /// Batched union values must be bit-identical to brute force on
    /// the union itself.
    fn agrees_with_brute_force(db: &Database, u: &UnionQuery) {
        let compiled = CompiledUnionCount::compile(db, u).unwrap();
        let brute = BruteForceCounter::new();
        for &f in db.endo_facts() {
            let want = shapley_via_counts(db, AnyQuery::Union(u), f, &brute).unwrap();
            let got = compiled.value(db, f).unwrap();
            assert_eq!(got, want, "{} for {u}", db.render_fact(f));
        }
    }

    #[test]
    fn two_disjunct_union_matches_brute_force() {
        let db = db_two_sides();
        agrees_with_brute_force(&db, &union_two_sides());
    }

    #[test]
    fn overlapping_ground_disjuncts() {
        let db = Database::parse("endo R(a)\nendo S(b)\nendo T(c)\n").unwrap();
        for text in [
            "q1() :- R('a'); q2() :- S('b')",
            "q1() :- R('a'); q2() :- R('a'), S('b')", // shared ground atom merges
            "q1() :- R('a'), !S('b'); q2() :- S('b'), T('c')", // contradictory pair drops
            "q1() :- R(x); q2() :- S(x); q3() :- T(x)",
        ] {
            agrees_with_brute_force(&db, &parse_ucq(text).unwrap());
        }
    }

    #[test]
    fn absorbed_disjuncts_share_engines() {
        let db = Database::parse("endo R(a)\nendo S(b)\nendo T(c)\n").unwrap();
        // q2 absorbs q1's atom, so {2} and {1,2} conjoin to the same
        // query with opposite signs: the class cancels and only {1}
        // survives — one engine for three subsets.
        let u = parse_ucq("q1() :- R('a'); q2() :- R('a'), S('b')").unwrap();
        assert_eq!(
            CompiledUnionCount::subset_conjunctions(&u).unwrap().len(),
            3
        );
        let compiled = CompiledUnionCount::compile(&db, &u).unwrap();
        assert_eq!(compiled.term_count(), 1);
        agrees_with_brute_force(&db, &u);
        // Structurally repeated disjuncts (same shape up to renaming)
        // collapse wholesale: {1}, {2} and {1,2}·(−1)... the pairwise
        // conjunction R(x) ∧ R(x') would self-join, so use ground atoms.
        let v = parse_ucq("q1() :- R('a'), !T('c'); q2() :- R('a'), !T('c')").unwrap();
        let compiled = CompiledUnionCount::compile(&db, &v).unwrap();
        // All three subsets conjoin to R('a') ∧ ¬T('c'); net 1 − ... =
        // +1 +1 −1 = 1 → a single engine with coefficient one.
        assert_eq!(compiled.term_count(), 1);
        agrees_with_brute_force(&db, &v);
    }

    #[test]
    fn single_disjunct_union_matches_cq_engine() {
        let db = db_two_sides();
        let u = parse_ucq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledUnionCount::compile(&db, &u).unwrap();
        let cq_engine = CompiledCount::compile(&db, &u.disjuncts()[0]).unwrap();
        for &f in db.endo_facts() {
            assert_eq!(
                compiled.value(&db, f).unwrap(),
                cq_engine.value(&db, f).unwrap()
            );
        }
    }

    #[test]
    fn intersection_self_join_is_named() {
        let db = Database::parse("endo R(a)\nendo S(b)\n").unwrap();
        let u = parse_ucq("qa() :- R(x); qb() :- R(y), S(z)").unwrap();
        let Err(err) = CompiledUnionCount::compile(&db, &u).map(|_| ()) else {
            panic!("intersection with a self-join must be rejected");
        };
        match err {
            CoreError::IntractableIntersection {
                intersection,
                reason,
            } => {
                assert_eq!(intersection, "qa ∧ qb");
                assert!(reason.contains('R'), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn counts_recombine_via_inclusion_exclusion() {
        // Cross-check the identity at the level of raw counts too:
        // |Sat(U)| from the signed sum of subset totals vs brute force.
        let db = db_two_sides();
        let u = union_two_sides();
        let m = db.endo_count();
        let mut signed = vec![BigInt::zero(); m + 1];
        for (negative, _, q) in CompiledUnionCount::subset_conjunctions(&u).unwrap() {
            let engine = CompiledCount::compile(&db, &q).unwrap();
            for (k, c) in engine.total_counts().iter().enumerate() {
                let c = BigInt::from_biguint(c.clone());
                if negative {
                    signed[k] -= &c;
                } else {
                    signed[k] += &c;
                }
            }
        }
        let brute = BruteForceCounter::new()
            .counts_masked(&db, AnyQuery::Union(&u), FactMask::None)
            .unwrap();
        for (k, want) in brute.iter().enumerate() {
            assert_eq!(
                signed[k],
                BigInt::from_biguint(want.clone()),
                "k = {k} of {u}"
            );
        }
    }

    #[test]
    fn buckets_cover_all_facts() {
        let db = db_two_sides();
        let compiled = CompiledUnionCount::compile(&db, &union_two_sides()).unwrap();
        assert!(compiled.term_count() >= 2);
        for &f in db.endo_facts() {
            assert!(compiled.bucket_of(&db, f) < compiled.buckets(&db));
        }
        // Facts of the two sides never share recount state with the
        // other side's grouped facts... but structural nulls can share
        // bucket 0; just check nulls are consistent.
        for &f in db.endo_facts() {
            if compiled.is_structurally_null(f) {
                assert!(compiled.value(&db, f).unwrap().is_zero());
            }
        }
    }

    #[test]
    fn non_endogenous_fact_rejected() {
        let db = db_two_sides();
        let compiled = CompiledUnionCount::compile(&db, &union_two_sides()).unwrap();
        let stud = db.find_fact("Stud", &["a"]).unwrap();
        assert!(matches!(
            compiled.value(&db, stud),
            Err(CoreError::FactNotEndogenous { .. })
        ));
    }
}
