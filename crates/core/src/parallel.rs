//! The one scoped-thread fan-out used by the report paths, the
//! compile-stage weight correlations, and (via
//! [`crate::satcount::BruteForceCounter`] / `approx`) every other
//! worker pool in the crate. The `thread-discipline` lint rule pins
//! this file and `poly.rs` as the only places allowed to touch
//! `std::thread` directly, so [`crate::ShapleyOptions::threads`] is
//! guaranteed to cap every fan-out.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The payload of a worker panic contained by [`try_par_map_with`].
pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;

/// Maps `f` over `0..n` across worker threads, preserving order, with
/// an explicit worker cap: `threads == 0` means "all available cores,
/// capped at 16", any other value pins the fan-out — the knob behind
/// [`crate::ShapleyOptions::threads`]. Falls back to a plain sequential
/// map for trivial sizes. A worker panic is re-raised on the calling
/// thread with its original payload.
pub(crate) fn par_map_with<T: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    match try_par_map_with(threads, n, f) {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// [`par_map_with`] with worker panics *contained*: the first panic
/// payload is returned as `Err` instead of crossing the thread scope,
/// so callers with a no-panic contract (the sampling paths) can report
/// it as a typed error.
// The one sanctioned `thread::scope` in the crate (see clippy.toml).
#[allow(clippy::disallowed_methods)]
pub(crate) fn try_par_map_with<T: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Result<Vec<T>, PanicPayload> {
    let threads = resolve_thread_cap(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()));
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Result<Vec<T>, PanicPayload>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let f = &f;
            let lo = t * chunk;
            let hi = (lo + chunk).min(n);
            handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        out = handles.into_iter().map(|h| h.join()).collect();
    });
    let mut flat = Vec::with_capacity(n);
    for chunk in out {
        flat.extend(chunk?);
    }
    Ok(flat)
}

/// Resolves a requested thread count: `0` → available parallelism,
/// capped at 16. Delegates to [`cqshap_numeric::poly::resolve_threads`]
/// so the policy cannot drift between the core fan-outs and the
/// numeric product trees.
pub(crate) fn resolve_thread_cap(threads: usize) -> usize {
    cqshap_numeric::poly::resolve_threads(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_index() {
        for n in [0usize, 1, 2, 17, 100] {
            assert_eq!(
                par_map_with(0, n, |i| i * 2),
                (0..n).map(|i| i * 2).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn explicit_thread_caps_preserve_results() {
        for threads in [0usize, 1, 2, 5] {
            for n in [0usize, 1, 17] {
                assert_eq!(
                    par_map_with(threads, n, |i| i + 1),
                    (0..n).map(|i| i + 1).collect::<Vec<_>>()
                );
            }
        }
        assert_eq!(resolve_thread_cap(3), 3);
        assert!(resolve_thread_cap(0) >= 1);
    }

    #[test]
    fn worker_panics_are_contained_by_try_variant() {
        for threads in [1usize, 4] {
            let r = try_par_map_with(threads, 8, |i| {
                if i == 5 {
                    panic!("boom {i}");
                }
                i
            });
            let payload = r.expect_err("panic must be contained");
            let text = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(text.contains("boom"), "{text}");
        }
    }
}
