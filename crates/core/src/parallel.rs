//! The one scoped-thread fan-out used by the report paths and the
//! compile-stage weight correlations.

/// Maps `f` over `0..n` across worker threads, preserving order, with
/// an explicit worker cap: `threads == 0` means "all available cores,
/// capped at 16", any other value pins the fan-out — the knob behind
/// [`crate::ShapleyOptions::threads`]. Falls back to a plain sequential
/// map for trivial sizes.
pub(crate) fn par_map_with<T: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = resolve_thread_cap(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let f = &f;
            let lo = t * chunk;
            let hi = (lo + chunk).min(n);
            handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        out = handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

/// Resolves a requested thread count: `0` → available parallelism,
/// capped at 16. Delegates to [`cqshap_numeric::poly::resolve_threads`]
/// so the policy cannot drift between the core fan-outs and the
/// numeric product trees.
pub(crate) fn resolve_thread_cap(threads: usize) -> usize {
    cqshap_numeric::poly::resolve_threads(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_index() {
        for n in [0usize, 1, 2, 17, 100] {
            assert_eq!(
                par_map_with(0, n, |i| i * 2),
                (0..n).map(|i| i * 2).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn explicit_thread_caps_preserve_results() {
        for threads in [0usize, 1, 2, 5] {
            for n in [0usize, 1, 17] {
                assert_eq!(
                    par_map_with(threads, n, |i| i + 1),
                    (0..n).map(|i| i + 1).collect::<Vec<_>>()
                );
            }
        }
        assert_eq!(resolve_thread_cap(3), 3);
        assert!(resolve_thread_cap(0) >= 1);
    }
}
