//! The one scoped-thread fan-out used by the report paths and the
//! compile-stage weight correlations.

/// Maps `f` over `0..n` across worker threads (capped at 16 and the
/// available parallelism), preserving order. Falls back to a plain
/// sequential map for trivial sizes.
pub(crate) fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
        .min(16);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let f = &f;
            let lo = t * chunk;
            let hi = (lo + chunk).min(n);
            handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        out = handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_index() {
        for n in [0usize, 1, 2, 17, 100] {
            assert_eq!(
                par_map(n, |i| i * 2),
                (0..n).map(|i| i * 2).collect::<Vec<_>>()
            );
        }
    }
}
