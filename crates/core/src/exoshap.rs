//! The `ExoShap` rewriting (Algorithm 1, Section 4.2).
//!
//! Given a self-join-free CQ¬ `q` over a schema with exogenous relations
//! `X`, and assuming `q` has no non-hierarchical path, three
//! Shapley-preserving rewriting steps produce a *hierarchical* query:
//!
//! 1. **Complementation** (Lemma C.3) — every negated exogenous atom is
//!    replaced by a positive atom over the complement relation,
//!    materialized over the active domain (extended with the query's
//!    constants).
//! 2. **Component merging** (Lemma 4.6) — each connected component of
//!    the exogenous atom graph `g_x(q)` is joined into a single fresh
//!    exogenous relation; afterwards every exogenous variable occurs in
//!    exactly one atom. Components without non-exogenous variables are
//!    constant under `E`: they are evaluated once and either dropped or
//!    short-circuit the query to *false*.
//! 3. **Projection and padding** (Lemma 4.8) — exogenous variables are
//!    projected away, and each exogenous atom is padded (by a Cartesian
//!    product with the domain) to exactly the variables of a covering
//!    non-exogenous atom, which exists by Lemma 4.4.
//!
//! The output database only ever *adds* relations, so fact ids are
//! preserved — the Shapley value of every endogenous fact is unchanged,
//! and `cqshap-probdb` reuses the same rewriting for Theorem 4.10.
// cqshap-lint: allow-file(no-panic-index) -- rewrite tables are indexed by positions computed from the same atom

use std::collections::{BTreeSet, HashSet};

use cqshap_db::{complement::complement_tuples, ConstId, Database, Provenance, Tuple, World};
use cqshap_engine::answers;
use cqshap_query::{
    has_self_join, is_hierarchical, non_hierarchical_path, Atom, ConjunctiveQuery, QueryBuilder,
    Term, Var,
};

use crate::error::CoreError;

/// The result of the rewriting.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten database (a superset of the input: fresh exogenous
    /// relations added, nothing removed — fact ids are stable).
    pub db: Database,
    /// The rewritten, hierarchical query. Meaningless when
    /// [`RewriteOutcome::always_false`] is set.
    pub query: ConjunctiveQuery,
    /// Set when a fully-exogenous component evaluated to *false*: the
    /// query is unsatisfiable whatever `E` is, so every Shapley value is
    /// zero and [`RewriteOutcome::query`] must not be used.
    pub always_false: bool,
    /// Human-readable rendering of the query after each stage, mirroring
    /// Figure 3 of the paper.
    pub stages: Vec<String>,
}

/// Applies the `ExoShap` rewriting. The set `X` is taken from `db`'s
/// declared exogenous relations.
///
/// # Errors
/// * [`CoreError::NotSelfJoinFree`] — precondition;
/// * [`CoreError::HasNonHierarchicalPath`] — the query is in the hard
///   case of Theorem 4.3 and cannot be rewritten;
/// * [`CoreError::Db`] with [`cqshap_db::DbError::BudgetExceeded`] —
///   a materialization exceeded `tuple_budget`.
pub fn rewrite(
    db: &Database,
    q: &ConjunctiveQuery,
    tuple_budget: usize,
) -> Result<RewriteOutcome, CoreError> {
    if has_self_join(q) {
        return Err(CoreError::NotSelfJoinFree {
            query: q.to_string(),
        });
    }
    let mut exo_names: HashSet<String> = db.exogenous_relation_names().into_iter().collect();
    if let Some(p) = non_hierarchical_path(q, &exo_names) {
        let path: Vec<&str> = p.path.iter().map(|&v| q.var_name(v)).collect();
        return Err(CoreError::HasNonHierarchicalPath {
            witness: format!("path {}", path.join("-")),
        });
    }

    let mut work = db.clone();
    let mut stages = vec![format!("input: {q}")];

    // Domain: active domain extended with the query's constants, so that
    // complements behave identically to the original negated atoms even
    // for constants absent from the data.
    for atom in q.atoms() {
        for t in &atom.terms {
            if let Term::Const(c) = t {
                work.intern(c);
            }
        }
    }
    let mut domain = work.active_domain();
    for atom in q.atoms() {
        for t in &atom.terms {
            if let Term::Const(c) = t {
                // cqshap-lint: allow(no-panic) -- the constant was interned earlier in this rewrite pass
                let id = work.interner().get(c).expect("interned above");
                if !domain.contains(&id) {
                    domain.push(id);
                }
            }
        }
    }

    // Make sure every query relation exists in the working database.
    for atom in q.atoms() {
        work.add_relation(&atom.relation, atom.terms.len())?;
    }

    let mut atoms: Vec<Atom> = q.atoms().to_vec();

    // ---- Step 1: complement negated exogenous atoms (Lemma C.3) ----
    for atom in atoms.iter_mut() {
        if !atom.negated || !exo_names.contains(&atom.relation) {
            continue;
        }
        // cqshap-lint: allow(no-panic) -- the relation was registered earlier in this rewrite pass
        let rel = work.schema().id(&atom.relation).expect("registered above");
        let comp = complement_tuples(&work, rel, &domain, tuple_budget)?;
        let comp_name = work.schema().fresh_name(&format!("Not{}", atom.relation));
        let comp_rel = work.add_relation(&comp_name, atom.terms.len())?;
        work.declare_exogenous_relation(comp_rel)?;
        for t in comp {
            work.insert_tuple(comp_rel, t, Provenance::Exogenous)?;
        }
        exo_names.insert(comp_name.clone());
        atom.relation = comp_name;
        atom.negated = false;
    }
    stages.push(format!("after complementation: {}", render(q, &atoms)));

    // ---- Step 2: merge the components of g_x(q) (Lemma 4.6) ----
    let components = atom_components(q, &atoms, &exo_names);
    let mut always_false = false;
    let mut remove: BTreeSet<usize> = BTreeSet::new();
    let mut replacements: Vec<(usize, Atom)> = Vec::new();
    for comp in components {
        // Variables of the component in first-occurrence order.
        let mut comp_vars: Vec<Var> = Vec::new();
        for &i in &comp {
            for t in &atoms[i].terms {
                if let Term::Var(v) = t {
                    if !comp_vars.contains(v) {
                        comp_vars.push(*v);
                    }
                }
            }
        }
        let exo_vs = exogenous_variables(q, &atoms, &exo_names);
        let non_exo_vars: Vec<Var> = comp_vars
            .iter()
            .copied()
            .filter(|v| !exo_vs.contains(v))
            .collect();

        // Join the component over the (exogenous) data.
        let sub_atoms: Vec<Atom> = comp
            .iter()
            .map(|&i| Atom {
                negated: false,
                ..atoms[i].clone()
            })
            .collect();
        let tuples = join_component(&work, q, &sub_atoms, &comp_vars, tuple_budget)?;

        if non_exo_vars.is_empty() {
            // Constant under E: drop or short-circuit.
            if tuples.is_empty() {
                always_false = true;
            }
            remove.extend(comp.iter().copied());
            continue;
        }

        let merged_name = work.schema().fresh_name("Join");
        let merged_rel = work.add_relation(&merged_name, comp_vars.len())?;
        work.declare_exogenous_relation(merged_rel)?;
        for t in tuples {
            work.insert_tuple(merged_rel, Tuple::from(t), Provenance::Exogenous)?;
        }
        exo_names.insert(merged_name.clone());
        replacements.push((
            comp[0],
            Atom {
                relation: merged_name,
                terms: comp_vars.iter().map(|&v| Term::Var(v)).collect(),
                negated: false,
            },
        ));
        remove.extend(comp.iter().skip(1).copied());
    }
    for (idx, atom) in replacements {
        atoms[idx] = atom;
    }
    let mut atoms: Vec<Atom> = atoms
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !remove.contains(i))
        .map(|(_, a)| a)
        .collect();
    stages.push(format!("after component merging: {}", render(q, &atoms)));

    if always_false {
        return Ok(RewriteOutcome {
            db: work,
            query: q.clone(),
            always_false: true,
            stages,
        });
    }

    // ---- Step 3: project exogenous variables away and pad (Lemma 4.8) ----
    let exo_vs = exogenous_variables(q, &atoms, &exo_names);
    let non_exo_atoms: Vec<Atom> = atoms
        .iter()
        .filter(|a| !exo_names.contains(&a.relation))
        .cloned()
        .collect();
    for atom in atoms.iter_mut() {
        if !exo_names.contains(&atom.relation) {
            continue;
        }
        let atom_vars: Vec<Var> = distinct_vars(atom);
        let keep: Vec<Var> = atom_vars
            .iter()
            .copied()
            .filter(|v| !exo_vs.contains(v))
            .collect();
        debug_assert!(
            !keep.is_empty(),
            "fully exogenous components were dropped in step 2"
        );
        // A covering non-exogenous atom exists by Lemma 4.4.
        let beta = non_exo_atoms
            .iter()
            .find(|b| {
                let bv = distinct_vars(b);
                keep.iter().all(|v| bv.contains(v))
            })
            .ok_or_else(|| {
                CoreError::Unsupported(
                    "no covering non-exogenous atom: query has a non-hierarchical path".into(),
                )
            })?;
        let target: Vec<Var> = distinct_vars(beta);
        // Project the atom's relation onto `keep`.
        // cqshap-lint: allow(no-panic) -- the rewrite that emitted this atom registered its relation
        let rel = work.schema().id(&atom.relation).expect("exists");
        let keep_positions: Vec<usize> = keep
            .iter()
            .map(|v| {
                atom.terms
                    .iter()
                    .position(|t| *t == Term::Var(*v))
                    // cqshap-lint: allow(no-panic) -- kept variables are drawn from this atom's own variable set
                    .expect("kept variable occurs in atom")
            })
            .collect();
        let mut projected: BTreeSet<Vec<ConstId>> = BTreeSet::new();
        for &fid in work.relation_facts(rel) {
            let vals = work.fact(fid).tuple.values();
            projected.insert(keep_positions.iter().map(|&p| vals[p]).collect());
        }
        // Pad with every combination of domain values for the extra vars.
        let extra: Vec<Var> = target
            .iter()
            .copied()
            .filter(|v| !keep.contains(v))
            .collect();
        let needed = projected.len().saturating_mul(
            domain
                .len()
                .checked_pow(extra.len() as u32)
                .unwrap_or(usize::MAX),
        );
        if needed > tuple_budget {
            return Err(CoreError::Db(cqshap_db::DbError::BudgetExceeded {
                context: format!("padding of {}", atom.relation),
                budget: tuple_budget,
                required: needed,
            }));
        }
        let padded_name = work.schema().fresh_name(&format!("Pad{}", atom.relation));
        let padded_rel = work.add_relation(&padded_name, target.len())?;
        work.declare_exogenous_relation(padded_rel)?;
        if !extra.is_empty() && domain.is_empty() {
            // No domain values to pad with: the padded relation is empty.
            projected.clear();
        }
        for p in &projected {
            let mut combo = vec![0usize; extra.len()];
            loop {
                let tuple: Vec<ConstId> = target
                    .iter()
                    .map(|v| match keep.iter().position(|k| k == v) {
                        Some(i) => p[i],
                        None => {
                            // cqshap-lint: allow(no-panic) -- v was selected from extra by the enclosing loop
                            let e = extra.iter().position(|x| x == v).expect("var is extra");
                            domain[combo[e]]
                        }
                    })
                    .collect();
                work.insert_tuple(padded_rel, Tuple::from(tuple), Provenance::Exogenous)?;
                // Odometer over `extra`.
                let mut pos = extra.len();
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    combo[pos] += 1;
                    if combo[pos] < domain.len() {
                        break;
                    }
                    combo[pos] = 0;
                    if pos == 0 {
                        break;
                    }
                }
                if extra.is_empty() || combo.iter().all(|&c| c == 0) {
                    break;
                }
            }
        }
        exo_names.insert(padded_name.clone());
        *atom = Atom {
            relation: padded_name,
            terms: target.iter().map(|&v| Term::Var(v)).collect(),
            negated: false,
        };
    }
    stages.push(format!("after projection/padding: {}", render(q, &atoms)));

    // ---- Rebuild the final query ----
    let mut builder = QueryBuilder::new(format!("{}_exoshap", q.name()));
    for atom in &atoms {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(builder.var(q.var_name(*v))),
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect();
        if atom.negated {
            builder.neg(&atom.relation, terms);
        } else {
            builder.pos(&atom.relation, terms);
        }
    }
    let query = builder.build()?;
    if !is_hierarchical(&query) {
        return Err(CoreError::Unsupported(format!(
            "internal: rewriting produced a non-hierarchical query {query}"
        )));
    }
    Ok(RewriteOutcome {
        db: work,
        query,
        always_false: false,
        stages,
    })
}

fn distinct_vars(atom: &Atom) -> Vec<Var> {
    let mut out = Vec::new();
    for t in &atom.terms {
        if let Term::Var(v) = t {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }
    out
}

fn render(q: &ConjunctiveQuery, atoms: &[Atom]) -> String {
    let parts: Vec<String> = atoms
        .iter()
        .map(|a| {
            let args: Vec<String> = a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => q.var_name(*v).to_string(),
                    Term::Const(c) => format!("'{c}'"),
                })
                .collect();
            format!(
                "{}{}({})",
                if a.negated { "!" } else { "" },
                a.relation,
                args.join(", ")
            )
        })
        .collect();
    parts.join(", ")
}

/// Variables occurring only in exogenous atoms (over the *current* atom
/// list, which may differ from `q.atoms()` mid-rewrite).
fn exogenous_variables(
    q: &ConjunctiveQuery,
    atoms: &[Atom],
    exo_names: &HashSet<String>,
) -> BTreeSet<Var> {
    let mut exo: BTreeSet<Var> = BTreeSet::new();
    let mut non_exo: BTreeSet<Var> = BTreeSet::new();
    for atom in atoms {
        let target = if exo_names.contains(&atom.relation) {
            &mut exo
        } else {
            &mut non_exo
        };
        for t in &atom.terms {
            if let Term::Var(v) = t {
                target.insert(*v);
            }
        }
    }
    let _ = q;
    exo.difference(&non_exo).copied().collect()
}

/// Connected components of the exogenous atom graph over the current
/// atom list: exogenous atoms joined by shared *exogenous* variables.
#[allow(clippy::needless_range_loop)] // union-find over index pairs
fn atom_components(
    q: &ConjunctiveQuery,
    atoms: &[Atom],
    exo_names: &HashSet<String>,
) -> Vec<Vec<usize>> {
    let exo_vs = exogenous_variables(q, atoms, exo_names);
    let idx: Vec<usize> = atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| exo_names.contains(&a.relation))
        .map(|(i, _)| i)
        .collect();
    let mut parent: Vec<usize> = (0..idx.len()).collect();
    fn find(parent: &mut Vec<usize>, a: usize) -> usize {
        if parent[a] == a {
            a
        } else {
            let r = find(parent, parent[a]);
            parent[a] = r;
            r
        }
    }
    for i in 0..idx.len() {
        for j in i + 1..idx.len() {
            let vi: BTreeSet<Var> = distinct_vars(&atoms[idx[i]]).into_iter().collect();
            let shared = distinct_vars(&atoms[idx[j]])
                .into_iter()
                .any(|v| vi.contains(&v) && exo_vs.contains(&v));
            if shared {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut comps: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..idx.len() {
        let r = find(&mut parent, i);
        comps.entry(r).or_default().push(idx[i]);
    }
    comps.into_values().collect()
}

/// Joins a component's (positive, exogenous) atoms over the database,
/// returning the distinct tuples over `comp_vars`.
fn join_component(
    work: &Database,
    q: &ConjunctiveQuery,
    sub_atoms: &[Atom],
    comp_vars: &[Var],
    tuple_budget: usize,
) -> Result<Vec<Vec<ConstId>>, CoreError> {
    let mut builder = QueryBuilder::new("qc");
    let mut head = Vec::new();
    for &v in comp_vars {
        head.push(builder.var(q.var_name(v)));
    }
    for atom in sub_atoms {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(builder.var(q.var_name(*v))),
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect();
        builder.pos(&atom.relation, terms);
    }
    builder.head(head);
    let qc = builder.build()?;
    // Exogenous relations hold only exogenous facts, so the empty world
    // sees exactly the right data.
    let result = answers(work, &World::empty(work), &qc);
    if result.len() > tuple_budget {
        return Err(CoreError::Db(cqshap_db::DbError::BudgetExceeded {
            context: "component join".into(),
            budget: tuple_budget,
            required: result.len(),
        }));
    }
    Ok(result.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    /// Example 4.1's publications database, at a small scale.
    fn publications() -> Database {
        let mut db = Database::parse(
            "exorel Pub\nexorel Citations\n\
             endo Author(alice, inst1)\nendo Author(bob, inst2)\n\
             exo Pub(alice, p1)\nexo Pub(alice, p2)\nexo Pub(bob, p3)\nexo Pub(carol, p4)\n\
             exo Citations(p1, c10)\nexo Citations(p3, c5)\n",
        )
        .unwrap();
        db.add_relation("__unused", 1).unwrap();
        db
    }

    #[test]
    fn example_4_1_rewrites_to_hierarchical() {
        let db = publications();
        let q = parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        let out = rewrite(&db, &q, 1_000_000).unwrap();
        assert!(!out.always_false);
        assert!(is_hierarchical(&out.query));
        assert_eq!(out.stages.len(), 4);
        // Endogenous facts preserved with identical ids.
        assert_eq!(out.db.endo_count(), db.endo_count());
        for &f in db.endo_facts() {
            assert_eq!(out.db.render_fact(f), db.render_fact(f));
        }
    }

    #[test]
    fn negated_exogenous_atom_is_complemented() {
        // q2 of the running example with Stud, Course exogenous.
        let db = Database::parse(
            "exorel Stud\nexorel Course\n\
             exo Stud(Adam)\nexo Stud(Caroline)\n\
             endo TA(Adam)\n\
             exo Course(OS, EE)\nexo Course(DB, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Caroline, DB)\n",
        )
        .unwrap();
        let q = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let out = rewrite(&db, &q, 1_000_000).unwrap();
        assert!(is_hierarchical(&out.query));
        // The negated non-exogenous atom ¬TA(x) must survive negated.
        let negs: Vec<&str> = out
            .query
            .atoms()
            .iter()
            .filter(|a| a.negated)
            .map(|a| a.relation.as_str())
            .collect();
        assert_eq!(negs, vec!["TA"]);
    }

    #[test]
    fn unsatisfiable_component_short_circuits() {
        // R is exogenous and empty; the component {R(u)} has no
        // non-exogenous variable and no tuples → always false.
        let mut db = Database::parse("endo S(a)\n").unwrap();
        let r = db.add_relation("R", 1).unwrap();
        db.declare_exogenous_relation(r).unwrap();
        let q = parse_cq("q() :- S(x), R(u)").unwrap();
        let out = rewrite(&db, &q, 1000).unwrap();
        assert!(out.always_false);
    }

    #[test]
    fn satisfied_constant_component_is_dropped() {
        let db = Database::parse("exorel R\nexo R(c)\nendo S(a)\n").unwrap();
        let q = parse_cq("q() :- S(x), R(u)").unwrap();
        let out = rewrite(&db, &q, 1000).unwrap();
        assert!(!out.always_false);
        let rels: Vec<&str> = out
            .query
            .atoms()
            .iter()
            .map(|a| a.relation.as_str())
            .collect();
        assert_eq!(rels, vec!["S"]);
    }

    #[test]
    fn hard_query_is_refused() {
        let db = Database::parse("endo R(a)\nexo S(a, b)\nendo T(b)\n").unwrap();
        let q = parse_cq("q() :- R(x), S(x, y), T(y)").unwrap();
        let err = rewrite(&db, &q, 1000).unwrap_err();
        assert!(matches!(err, CoreError::HasNonHierarchicalPath { .. }));
    }

    #[test]
    fn self_join_is_refused() {
        let db = Database::parse("endo R(a, b)\n").unwrap();
        let q = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        assert!(matches!(
            rewrite(&db, &q, 1000),
            Err(CoreError::NotSelfJoinFree { .. })
        ));
    }

    #[test]
    fn budget_propagates() {
        // Hierarchical query with an exogenous negated binary atom whose
        // complement (|domain|² tuples) exceeds a tiny budget.
        let mut db = Database::new();
        let p = db.add_relation("P", 2).unwrap();
        db.declare_exogenous_relation(p).unwrap();
        db.add_exo("P", &["c0", "c1"]).unwrap();
        for i in 0..6 {
            db.add_endo("R", &[&format!("c{i}"), &format!("c{}", (i + 1) % 6)])
                .unwrap();
        }
        let q = parse_cq("q() :- R(x, y), !P(x, y)").unwrap();
        let err = rewrite(&db, &q, 10).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Db(cqshap_db::DbError::BudgetExceeded { .. })
        ));
        // With a sufficient budget the same rewrite succeeds.
        assert!(rewrite(&db, &q, 100).is_ok());
    }
}
