//! The batched all-facts Shapley engine: compile-once `CntSat` with
//! incremental per-fact recounting and incremental maintenance across
//! database updates.
//!
//! [`crate::shapley::shapley_via_counts`] answers one fact by running
//! the full hierarchical DP twice; an all-facts report over `m`
//! endogenous facts therefore repeats atom resolution, relation
//! scoping, and the convolution of every *unchanged* root group `2m`
//! times. [`CompiledCount`] does that shared work **once per
//! `(db, query)`** and then answers each fact from the pieces that
//! actually change:
//!
//! 1. **Compile** — resolve the query's atoms, build per-relation
//!    scopes, split into connected components, and group each
//!    component's facts by their root value (the structure of Lemma
//!    3.2's recursion, materialized).
//! 2. **Cache** — every component's satisfying-count polynomial and
//!    every root group's unsatisfying-count polynomial, plus
//!    *leave-one-out environments* (prefix/suffix convolutions of all
//!    the other groups' polynomials, combined divide-and-conquer) and
//!    their correlations with the Shapley weight numerators
//!    `k!·(m−1−k)!`.
//! 3. **Recount** — for fact `f`, recompute only `f`'s root group under
//!    the two [`FactMask`] views (`f` removed, `f` exogenized; no
//!    database clones), and contract the short difference vector
//!    against the cached weight environment. Facts outside every scope
//!    ("free") and facts whose root value lacks positive support
//!    ("junk") are answered as exact zeros without any recounting.
//!
//! The per-fact cost drops from `O(m)` full-database DP work (plus two
//! database clones) to amortized `O(|group|)` — the recount touches one
//! root group and a dot product of its length.
//!
//! ## Incremental maintenance
//!
//! The engine does not borrow the database: every query-time method
//! takes `&Database`, and [`CompiledCount::update`] *patches* the
//! compiled state after an in-place database update
//! ([`Database::retract_fact`] / [`Database::set_fact_provenance`] /
//! an insertion) instead of recompiling. The key observation is that a
//! root group's cached leave-one-out environment
//! `genv_g = binom(junk) ⊛ ⊛_{h≠g} unsat_h` is a *product of the other
//! groups' polynomials*: a single-group change is a factor swap, served
//! by one exact polynomial division and one short convolution per
//! environment — `O(|group| · m)` small-coefficient work — rather than
//! re-running the divide-and-conquer product tree (the
//! large-coefficient stage that dominates compilation; compile runs it
//! through [`cqshap_numeric::poly`]'s scoped-thread trees with
//! size-dispatched Karatsuba/NTT convolution, and the junk binomial
//! factors are `O(n)` Pascal shifts).
//! Only the touched group's counting recursion is re-run; the weight
//! correlations (embarrassingly parallel, shared with compile) are then
//! refreshed against the new `k!·(m−1−k)!` numerators. Structural
//! drift — a root group appearing or dying, a query atom resolving
//! differently — makes `update` report that a full recompile is needed.
//!
//! The resulting values are *bit-identical* to the per-fact oracle: the
//! weighted sums are accumulated as exact integers over the common
//! denominator `m!` and normalized once, and every maintained
//! polynomial is recomputed exactly (division of exact factors), so a
//! maintained engine agrees bit-for-bit with a freshly compiled one.
// cqshap-lint: allow-file(no-panic-index) -- counting kernels index component scopes and weight tables sized in the same function

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cqshap_db::{ConstId, Database, FactId, FactMask, RelId};
use cqshap_numeric::{BigInt, BigRational, BigUint, FactorialTable};
use cqshap_obs::{phase as obs_phase, Counter, Span};
use cqshap_query::{ConjunctiveQuery, Term};

use crate::budget::{self, CancelToken};
use crate::domain::{eval_rec, CountingDomain, EvalDomain, FactProbabilities, ProbabilityDomain};
use crate::error::CoreError;
use crate::parallel::par_map_with;
use crate::satcount::{
    connected_components, find_root_var, resolve_query, root_candidates, root_group_scopes,
    scope_endo_count, MaskedDb, PAtom, ResolvedQuery,
};

// Cache-effectiveness counters: the iso-class memo of the compile
// recursion and the masked-recount memo of the report path. Locally
// readable for tests, forwarded to the installed recorder when tracing.
static CLASS_MEMO_HIT: Counter = Counter::new(obs_phase::CTR_CLASS_MEMO_HIT);
static CLASS_MEMO_MISS: Counter = Counter::new(obs_phase::CTR_CLASS_MEMO_MISS);
static RECOUNT_CACHE_HIT: Counter = Counter::new(obs_phase::CTR_RECOUNT_CACHE_HIT);
static RECOUNT_CACHE_MISS: Counter = Counter::new(obs_phase::CTR_RECOUNT_CACHE_MISS);

/// One in-place database change, as seen by a compiled engine.
///
/// The database must be mutated *first*; the engine then patches its
/// caches from the post-update state (retracted facts stay readable
/// through their tombstones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUpdate {
    /// A freshly inserted fact.
    Inserted(FactId),
    /// A fact retracted in place ([`Database::retract_fact`]).
    Retracted(FactId),
    /// A fact whose provenance flipped in either direction
    /// ([`Database::set_fact_provenance`]).
    ProvenanceFlipped(FactId),
}

impl EngineUpdate {
    fn fact(self) -> FactId {
        match self {
            EngineUpdate::Inserted(f)
            | EngineUpdate::Retracted(f)
            | EngineUpdate::ProvenanceFlipped(f) => f,
        }
    }
}

/// Where an endogenous fact lives in the compiled structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In a ground (variable-free) component.
    Ground { comp: usize },
    /// In the root group `group` of component `comp`.
    Grouped { comp: usize, group: usize },
    /// In component `comp`'s scopes, but with a root value that lacks
    /// full positive support: a free "junk" choice, value exactly zero.
    Junk { comp: usize },
}

/// One root-value group of a connected component: the sub-query with
/// the root substituted, its fact scopes, and its cached values in the
/// engine's evaluation domain (`V = D::Value`).
struct RootGroup<V> {
    /// The root value of the group.
    value: ConstId,
    /// Endogenous facts in the group.
    endo: usize,
    /// The component's atoms with the root variable substituted.
    atoms: Vec<PAtom>,
    /// Per-atom scopes restricted to this root value.
    scopes: Vec<Vec<FactId>>,
    /// The group's unsatisfying value `complement(sat, endo)` on the
    /// unmodified db (counting: `[C(endo,j) − sat_j]`; probability:
    /// `1 − P_c`).
    unsat: V,
    /// The leave-one-out environment `free(junk) ⊛ ⊛_{h≠g} unsat_h` —
    /// cached so updates can maintain it by factor swaps. Isomorphic
    /// groups (equal `unsat`) may share one allocation, so a swap
    /// patches each *distinct* environment once.
    genv: Arc<V>,
    /// Canonical form of the group's atoms and scope facts (constants
    /// renamed by first occurrence, endogeneity flags included): groups
    /// with equal forms are isomorphic, so their counting recounts
    /// coincide role-for-role and share one cache entry (probabilities
    /// do *not* — see [`EvalDomain::canon_determines_value`]).
    canon: Arc<Vec<u32>>,
}

/// The shape of one connected component.
enum CompKind<V> {
    /// Entirely ground: recounted wholesale (a single base-case fold).
    Ground,
    /// Connected with a root variable: one [`RootGroup`] per root value
    /// with full positive support.
    Rooted {
        junk_endo: usize,
        /// `⊛_g unsat_g` — shared by all junk-fact value queries.
        unsat_all: V,
        groups: Vec<RootGroup<V>>,
    },
}

/// A connected component of the query with its cached values.
struct Component<V> {
    /// The component's atom patterns (before root substitution).
    atoms: Vec<PAtom>,
    /// The relation of each atom (for locating updated facts).
    rels: Vec<RelId>,
    /// Per-atom scopes of the whole component (groups + junk).
    scopes: Vec<Vec<FactId>>,
    /// The root variable (rooted components only).
    root: Option<u32>,
    /// Endogenous facts in the component's scopes.
    endo: usize,
    /// Satisfying value on the unmodified database.
    sat: V,
    /// `⊛_{j≠i} sat_j ⊛ free(free_endo)` — everything outside the
    /// component.
    env: V,
    kind: CompKind<V>,
}

/// Where an updated fact landed during [`CompiledEngine::update`].
enum Placement {
    Free,
    Component { comp: usize, atom: usize },
}

/// A `(db, query)` pair compiled through Lemma 3.2's recursion into
/// resolution / scope / component / root-group structure, with every
/// cached value generic over the [`EvalDomain`]. This is the shared
/// kernel behind [`CompiledCount`] (exact Shapley counting) and
/// [`CompiledProbability`] (tuple-independent lifted inference): one
/// compile, incremental maintenance, per-fact masked re-evaluation —
/// the arithmetic is the only thing that differs.
struct CompiledEngine<D: EvalDomain> {
    dom: D,
    /// The compiled query (kept for update-time re-resolution checks).
    query: ConjunctiveQuery,
    /// Which atoms resolved (relation known, constants known) — any
    /// drift here after an update forces a recompile.
    fingerprint: Vec<(bool, bool)>,
    m: usize,
    /// `false` iff some positive atom can never match: the zero value.
    satisfiable: bool,
    /// The full-database value (counting: `[|Sat(D,q,k)|]`, length
    /// `m+1`; probability: `Pr[q]`).
    total: D::Value,
    /// Endogenous facts outside every atom scope.
    free_endo: usize,
    /// `⊛_i sat_i` over all components (without the free factor).
    all_sat: D::Value,
    components: Vec<Component<D::Value>>,
    locs: HashMap<FactId, Loc>,
    /// Per-component offset of its groups' bucket ids (see
    /// [`CompiledEngine::bucket_of`]).
    group_bucket_base: Vec<usize>,
    buckets: usize,
    /// Worker cap for the parallel product trees (`0` = all available
    /// cores) — plumbed from [`crate::ShapleyOptions::threads`].
    threads: usize,
}

/// A `(db, query)` pair compiled for batched all-facts Shapley
/// computation: the domain-generic engine instantiated at the exact
/// counting domain, plus the Shapley-specific machinery (the
/// `k!·(m−1−k)!` weight correlations, the factorial table, and the
/// reduction/recount memos). Shared immutably across report worker
/// threads; does not borrow the database — query-time methods take
/// `&Database`, and [`CompiledCount::update`] maintains the caches
/// across in-place database updates.
pub struct CompiledCount {
    eng: CompiledEngine<CountingDomain>,
    table: FactorialTable,
    /// Per-component `W[j] = Σ_t w[j+t] · env[t]` with
    /// `w[k] = k!(m−1−k)!`.
    comp_weights: Vec<Vec<BigUint>>,
    /// Per-component, per-group `W2[j] = Σ_t W_comp[j+t] · genv[t]`.
    /// Contracting the group's masked difference vector with `W2`
    /// yields the Shapley numerator directly. Ground components hold an
    /// empty inner vector.
    group_weights: Vec<Vec<Vec<BigUint>>>,
    /// Numerator → reduced value memo: facts of isomorphic root groups
    /// share their Shapley numerator, so the factorial-denominator
    /// reduction runs once per *distinct* numerator per (db, m) state.
    /// Cleared on every refresh (the denominator `m!` moves with `m`).
    reduce_cache: Mutex<HashMap<BigInt, BigRational>>,
    /// `(group canonical form, masked fact's role)` → the two masked
    /// count vectors of the reduction: the per-fact recount runs once
    /// per isomorphism class and role instead of once per fact.
    pair_cache: PairCache,
}

/// Lifted inference for a tuple-independent probabilistic database,
/// served from the *same* compiled structure as [`CompiledCount`]: the
/// domain-generic engine instantiated at the exact-rational probability
/// domain. `Pr[q]` is the engine's cached total; conditionals
/// `Pr[q | f present/absent]` are per-fact masked re-evaluations; and
/// [`CompiledProbability::update`] maintains the compile across
/// database updates exactly like the counting engine (a declined
/// update means the caller recompiles).
pub struct CompiledProbability {
    eng: CompiledEngine<ProbabilityDomain>,
}

/// Cache key: a group's canonical form plus the masked fact's role
/// (atom index, position within that atom's scope).
type PairKey = (Arc<Vec<u32>>, usize, usize);
type PairCache = Mutex<HashMap<PairKey, (Vec<BigUint>, Vec<BigUint>)>>;

/// The canonical form of `(atoms, scopes)`: atom patterns and scope
/// tuples with all constants renamed by first occurrence and each
/// fact's endogeneity recorded. Equal forms ⟹ the groups are related
/// by a constant-and-fact bijection that the counting recursion cannot
/// distinguish.
fn canonical_form(db: &Database, atoms: &[PAtom], scopes: &[Vec<FactId>]) -> Vec<u32> {
    use crate::satcount::PTerm;
    let mut rename: HashMap<ConstId, u32> = HashMap::new();
    let mut out: Vec<u32> = Vec::new();
    let canon = |c: ConstId, rename: &mut HashMap<ConstId, u32>| -> u32 {
        let next = rename.len() as u32;
        *rename.entry(c).or_insert(next)
    };
    for (atom, scope) in atoms.iter().zip(scopes) {
        out.push(u32::MAX);
        out.push(atom.negated as u32);
        for t in &atom.terms {
            match t {
                PTerm::Var(v) => {
                    out.push(u32::MAX - 1);
                    out.push(*v);
                }
                PTerm::Const(c) => {
                    out.push(u32::MAX - 2);
                    out.push(canon(*c, &mut rename));
                }
            }
        }
        for &f in scope {
            let fact = db.fact(f);
            out.push(u32::MAX - 3);
            out.push(fact.provenance.is_endogenous() as u32);
            for &c in fact.tuple.values() {
                out.push(canon(c, &mut rename));
            }
        }
    }
    out
}

/// Which atoms of `q` resolve against `db` (relation known, every
/// constant interned). Updates that change this change the resolved
/// atom list itself, which is beyond incremental maintenance.
fn resolution_fingerprint(db: &Database, q: &ConjunctiveQuery) -> Vec<(bool, bool)> {
    q.atoms()
        .iter()
        .map(|a| {
            (
                db.schema().id(&a.relation).is_some(),
                a.terms.iter().all(|t| match t {
                    Term::Const(name) => db.interner().get(name).is_some(),
                    Term::Var(_) => true,
                }),
            )
        })
        .collect()
}

impl<D: EvalDomain> CompiledEngine<D> {
    /// Compiles `q` against `db` in domain `dom` with a worker cap for
    /// the parallel product trees (`0` = all available cores).
    ///
    /// Root groups with equal canonical forms are isomorphic; when the
    /// domain's values are canon-determined (counting), the recursion
    /// runs once per isomorphism class and the result is shared across
    /// the class instead of being recomputed per group.
    fn compile(
        db: &Database,
        q: &ConjunctiveQuery,
        threads: usize,
        dom: D,
    ) -> Result<Self, CoreError> {
        let m = db.endo_count();
        let fingerprint = resolution_fingerprint(db, q);
        let view = MaskedDb::new(db, FactMask::None);
        let (atoms, rels, scopes) = match resolve_query(db, q)? {
            ResolvedQuery::Unsatisfiable => {
                let total = dom.zero(m);
                let all_sat = dom.one();
                return Ok(CompiledEngine {
                    dom,
                    query: q.clone(),
                    fingerprint,
                    m,
                    satisfiable: false,
                    total,
                    free_endo: m,
                    all_sat,
                    components: Vec::new(),
                    locs: HashMap::new(),
                    group_bucket_base: Vec::new(),
                    buckets: 1,
                    threads,
                });
            }
            ResolvedQuery::Atoms {
                atoms,
                rels,
                scopes,
            } => (atoms, rels, scopes),
        };

        let mut components: Vec<Component<D::Value>> = Vec::new();
        let mut locs: HashMap<FactId, Loc> = HashMap::new();
        // Per-isomorphism-class memo of the group recursion (only
        // consulted when the domain's values are canon-determined).
        let mut class_sat: HashMap<Vec<u32>, D::Value> = HashMap::new();
        for idxs in connected_components(&atoms) {
            let ci = components.len();
            let sub_atoms: Vec<PAtom> = idxs.iter().map(|&i| atoms[i].clone()).collect();
            let sub_rels: Vec<RelId> = idxs.iter().map(|&i| rels[i]).collect();
            let sub_scopes: Vec<Vec<FactId>> = idxs.iter().map(|&i| scopes[i].clone()).collect();
            let endo = scope_endo_count(view, &sub_scopes);
            if sub_atoms.iter().all(|a| !a.has_vars()) {
                let sat = eval_rec(&dom, view, &sub_atoms, &sub_scopes)?;
                for &f in sub_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(f, Loc::Ground { comp: ci });
                    }
                }
                components.push(Component {
                    atoms: sub_atoms,
                    rels: sub_rels,
                    scopes: sub_scopes,
                    root: None,
                    endo,
                    sat,
                    env: dom.one(),
                    kind: CompKind::Ground,
                });
                continue;
            }
            let root = find_root_var(&sub_atoms).ok_or_else(|| {
                CoreError::Unsupported(
                    "no root variable in a connected sub-query: the query is not hierarchical"
                        .into(),
                )
            })?;
            let candidates = root_candidates(view, root, &sub_atoms, &sub_scopes)?;
            let mut groups: Vec<RootGroup<D::Value>> = Vec::new();
            let mut grouped_endo = 0usize;
            for &c in &candidates {
                let _group_span = Span::enter(obs_phase::COMPILE);
                let g_atoms: Vec<PAtom> = sub_atoms.iter().map(|a| a.substitute(root, c)).collect();
                let g_scopes = root_group_scopes(view, root, c, &sub_atoms, &sub_scopes);
                let g_endo = scope_endo_count(view, &g_scopes);
                let canon = Arc::new(canonical_form(db, &g_atoms, &g_scopes));
                let sat_c = if dom.canon_determines_value() {
                    match class_sat.get(canon.as_ref()) {
                        Some(v) => {
                            CLASS_MEMO_HIT.incr();
                            v.clone()
                        }
                        None => {
                            CLASS_MEMO_MISS.incr();
                            let v = eval_rec(&dom, view, &g_atoms, &g_scopes)?;
                            class_sat.insert(canon.as_ref().clone(), v.clone());
                            v
                        }
                    }
                } else {
                    eval_rec(&dom, view, &g_atoms, &g_scopes)?
                };
                for &f in g_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(
                            f,
                            Loc::Grouped {
                                comp: ci,
                                group: groups.len(),
                            },
                        );
                    }
                }
                grouped_endo += g_endo;
                let unsat = dom.complement(&sat_c, g_endo);
                groups.push(RootGroup {
                    value: c,
                    endo: g_endo,
                    atoms: g_atoms,
                    scopes: g_scopes,
                    unsat,
                    genv: Arc::new(dom.one()),
                    canon,
                });
            }
            let junk_endo = endo - grouped_endo;
            for &f in sub_scopes.iter().flatten() {
                if view.is_endo(f) {
                    locs.entry(f).or_insert(Loc::Junk { comp: ci });
                }
            }
            let unsat_refs: Vec<&D::Value> = groups.iter().map(|g| &g.unsat).collect();
            let unsat_all = dom.product(&unsat_refs, threads);
            let comp_unsat = dom.combine(&unsat_all, &dom.free(junk_endo));
            let sat = dom.complement(&comp_unsat, endo);
            components.push(Component {
                atoms: sub_atoms,
                rels: sub_rels,
                scopes: sub_scopes,
                root: Some(root),
                endo,
                sat,
                env: dom.one(),
                kind: CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    groups,
                },
            });
        }

        let free_endo = m - components.iter().map(|c| c.endo).sum::<usize>();

        // Group-level leave-one-out environments, computed once by the
        // work-stealing divide-and-conquer product tree and *cached*
        // (updates maintain them by factor swaps instead of re-running
        // the tree).
        for comp in &mut components {
            if let CompKind::Rooted {
                junk_endo, groups, ..
            } = &mut comp.kind
            {
                let unsat_refs: Vec<&D::Value> = groups.iter().map(|g| &g.unsat).collect();
                // Isomorphic groups (equal `unsat`) may share one
                // `Arc`'d environment straight out of the subsystem, so
                // update-time factor swaps patch each distinct value
                // once.
                let genv = dom.leave_one_out_shared(&unsat_refs, &dom.free(*junk_endo), threads);
                for (group, env) in groups.iter_mut().zip(genv) {
                    group.genv = env;
                }
            }
        }

        // Bucket layout: 0 = all zero-valued facts (free + junk), then
        // one bucket per ground component, then one per root group.
        let mut group_bucket_base = Vec::with_capacity(components.len());
        let mut next = 1 + components.len();
        for comp in &components {
            group_bucket_base.push(next);
            if let CompKind::Rooted { groups, .. } = &comp.kind {
                next += groups.len();
            }
        }

        // Placeholders; `refresh_envs` computes the real values.
        let total = dom.one();
        let all_sat = dom.one();
        let mut engine = CompiledEngine {
            dom,
            query: q.clone(),
            fingerprint,
            m,
            satisfiable: true,
            total,
            free_endo,
            all_sat,
            components,
            locs,
            group_bucket_base,
            buckets: next,
            threads,
        };
        engine.refresh_envs();
        // The cancelled polynomial kernels return placeholders and trip
        // the sticky flag; this checkpoint keeps them from escaping.
        if let Some(token) = engine.dom.cancel_token() {
            budget::check(token, cqshap_obs::phase::COMPILE)?;
        }
        Ok(engine)
    }

    /// Recomputes everything downstream of the per-group values: the
    /// component/total values and the cross-component leave-one-out
    /// environments. Shared by [`CompiledEngine::compile`] and
    /// [`CompiledEngine::update`].
    fn refresh_envs(&mut self) {
        let sats: Vec<&D::Value> = self.components.iter().map(|c| &c.sat).collect();
        self.all_sat = self.dom.product(&sats, self.threads);
        self.total = self
            .dom
            .combine(&self.all_sat, &self.dom.free(self.free_endo));

        // Component-level leave-one-out environments. Components are
        // bounded by the query's atom count, so this stage is cheap
        // next to the group-level work.
        let envs = self
            .dom
            .leave_one_out(&sats, &self.dom.free(self.free_endo), self.threads);
        for (comp, env) in self.components.iter_mut().zip(envs) {
            comp.env = env;
        }
    }

    /// Patches the compiled caches after one in-place database update
    /// (the database must already be mutated). Returns `Ok(false)` when
    /// the change shifts the compiled *structure* — an atom resolving
    /// differently, a root group appearing or dying, a degenerate
    /// always-satisfied group — in which case the caller must compile
    /// afresh; results after a successful update are bit-identical to
    /// that fresh compile.
    ///
    /// # Errors
    /// Anything the evaluation recursion raises while re-evaluating the
    /// touched root group.
    fn update(&mut self, db: &Database, change: EngineUpdate) -> Result<bool, CoreError> {
        let _span = Span::enter(obs_phase::UPDATE);
        if resolution_fingerprint(db, &self.query) != self.fingerprint {
            return Ok(false);
        }
        let f = change.fact();
        if !self.satisfiable {
            // Still unsatisfiable (the fingerprint pinned the unknown
            // positive atom): only the zero-value shell tracks m.
            if self.m != db.endo_count() {
                self.m = db.endo_count();
                self.total = self.dom.zero(self.m);
                self.free_endo = self.m;
            }
            return Ok(true);
        }
        let endo_now = db.endo_index(f).is_some();
        let ok = match change {
            EngineUpdate::Inserted(_) => self.apply_insert(db, f)?,
            EngineUpdate::Retracted(_) => self.apply_retract(db, f)?,
            EngineUpdate::ProvenanceFlipped(_) => self.apply_flip(db, f, endo_now)?,
        };
        if !ok {
            return Ok(false);
        }
        self.m = db.endo_count();
        self.free_endo = self.m - self.components.iter().map(|c| c.endo).sum::<usize>();
        self.refresh_envs();
        if let Some(token) = self.dom.cancel_token() {
            budget::check(token, cqshap_obs::phase::UPDATE)?;
        }
        Ok(true)
    }

    /// Which component/atom (if any) matches fact `f`'s pattern.
    /// Self-join-freeness makes the match unique.
    fn place(&self, db: &Database, f: FactId) -> Placement {
        let fact = db.fact(f);
        for (ci, comp) in self.components.iter().enumerate() {
            for (ai, (&rel, atom)) in comp.rels.iter().zip(&comp.atoms).enumerate() {
                if rel == fact.rel && atom.matches(fact.tuple.values()) {
                    return Placement::Component { comp: ci, atom: ai };
                }
            }
        }
        Placement::Free
    }

    /// Re-runs the evaluation recursion for one root group and swaps
    /// the updated `unsat` factor into every cached environment of the
    /// component. Returns `false` when the swap is impossible (the old
    /// factor was identically zero: an always-satisfied group zeroed
    /// every environment, so nothing can be recovered incrementally).
    fn recount_group(&mut self, db: &Database, ci: usize, gi: usize) -> Result<bool, CoreError> {
        let _span = Span::enter(obs_phase::RECOUNT);
        let view = MaskedDb::new(db, FactMask::None);
        let dom = &self.dom;
        let comp = &mut self.components[ci];
        let (new_endo, comp_unsat) = {
            let CompKind::Rooted {
                junk_endo,
                unsat_all,
                groups,
            } = &mut comp.kind
            else {
                // cqshap-lint: allow(no-panic) -- structural invariant: recount_group only targets components rooted at compile time
                unreachable!("recount_group targets rooted components");
            };
            let g = &mut groups[gi];
            g.endo = scope_endo_count(view, &g.scopes);
            g.canon = Arc::new(canonical_form(db, &g.atoms, &g.scopes));
            let sat_c = eval_rec(dom, view, &g.atoms, &g.scopes)?;
            let unsat_new = dom.complement(&sat_c, g.endo);
            let unsat_old = std::mem::replace(&mut g.unsat, unsat_new.clone());
            if dom.is_zero(&unsat_old) {
                return Ok(false);
            }
            let Some(quotient) = dom.try_divide(unsat_all, &unsat_old) else {
                return Ok(false);
            };
            *unsat_all = dom.combine(&quotient, &unsat_new);
            // Swap the updated factor into every *distinct* environment
            // (shared Arcs make the per-group pass a pointer lookup).
            let mut patched: HashMap<*const D::Value, Arc<D::Value>> = HashMap::new();
            for (hi, h) in groups.iter_mut().enumerate() {
                if hi == gi {
                    continue;
                }
                if let Some(done) = patched.get(&Arc::as_ptr(&h.genv)) {
                    h.genv = done.clone();
                    continue;
                }
                let Some(quotient) = dom.try_divide(&h.genv, &unsat_old) else {
                    return Ok(false);
                };
                let swapped = Arc::new(dom.combine(&quotient, &unsat_new));
                patched.insert(Arc::as_ptr(&h.genv), swapped.clone());
                h.genv = swapped;
            }
            (
                groups.iter().map(|g| g.endo).sum::<usize>() + *junk_endo,
                dom.combine(unsat_all, &dom.free(*junk_endo)),
            )
        };
        comp.endo = new_endo;
        comp.sat = self.dom.complement(&comp_unsat, new_endo);
        Ok(true)
    }

    /// Re-runs the base case of a ground component.
    fn recount_ground(&mut self, db: &Database, ci: usize) -> Result<(), CoreError> {
        let view = MaskedDb::new(db, FactMask::None);
        let comp = &mut self.components[ci];
        comp.endo = scope_endo_count(view, &comp.scopes);
        comp.sat = eval_rec(&self.dom, view, &comp.atoms, &comp.scopes)?;
        Ok(())
    }

    /// Shifts a component's junk factor by ±1 endogenous fact:
    /// `free(j+1) = free(j) ⊛ free(1)`, so every group environment
    /// gains or sheds one `free(1)` factor —
    /// [`EvalDomain::push_free`] / [`EvalDomain::pop_free`] (`O(n)`
    /// Pascal shifts for counting, no-ops for probabilities) instead of
    /// generic combination/division.
    fn shift_junk(&mut self, ci: usize, grow: bool) -> bool {
        let dom = &self.dom;
        let comp = &mut self.components[ci];
        let (new_endo, comp_unsat) = {
            let CompKind::Rooted {
                junk_endo,
                unsat_all,
                groups,
            } = &mut comp.kind
            else {
                // cqshap-lint: allow(no-panic) -- structural invariant: junk groups exist only inside rooted components
                unreachable!("junk lives in rooted components");
            };
            let mut patched: HashMap<*const D::Value, Arc<D::Value>> = HashMap::new();
            if grow {
                *junk_endo += 1;
                for g in groups.iter_mut() {
                    if let Some(done) = patched.get(&Arc::as_ptr(&g.genv)) {
                        g.genv = done.clone();
                        continue;
                    }
                    let grown = Arc::new(dom.push_free(&g.genv));
                    patched.insert(Arc::as_ptr(&g.genv), grown.clone());
                    g.genv = grown;
                }
            } else {
                *junk_endo -= 1;
                for g in groups.iter_mut() {
                    if let Some(done) = patched.get(&Arc::as_ptr(&g.genv)) {
                        g.genv = done.clone();
                        continue;
                    }
                    let Some(quotient) = dom.pop_free(&g.genv) else {
                        return false;
                    };
                    let shrunk = Arc::new(quotient);
                    patched.insert(Arc::as_ptr(&g.genv), shrunk.clone());
                    g.genv = shrunk;
                }
            }
            let grouped: usize = groups.iter().map(|g| g.endo).sum();
            (
                grouped + *junk_endo,
                dom.combine(unsat_all, &dom.free(*junk_endo)),
            )
        };
        comp.endo = new_endo;
        comp.sat = self.dom.complement(&comp_unsat, new_endo);
        true
    }

    /// Where `f` sits inside component `ci`: in the root group for its
    /// root value, or in the junk region (no such group).
    fn rooted_slot(
        &self,
        db: &Database,
        ci: usize,
        ai: usize,
        f: FactId,
    ) -> (ConstId, Option<usize>) {
        let comp = &self.components[ci];
        // cqshap-lint: allow(no-panic) -- structural invariant: grouped components have their root assigned at compile time
        let root = comp.root.expect("rooted component");
        let value = comp.atoms[ai].value_of(root, db.fact(f).tuple.values());
        let CompKind::Rooted { groups, .. } = &comp.kind else {
            // cqshap-lint: allow(no-panic) -- structural invariant: grouped components have their root assigned at compile time
            unreachable!("rooted component");
        };
        (value, groups.iter().position(|g| g.value == value))
    }

    fn apply_insert(&mut self, db: &Database, f: FactId) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact: only m / free_endo move
        };
        let endo = db.endo_index(f).is_some();
        if self.components[ci].root.is_none() {
            self.components[ci].scopes[ai].push(f);
            if endo {
                self.locs.insert(f, Loc::Ground { comp: ci });
            }
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (value, slot) = self.rooted_slot(db, ci, ai, f);
        match slot {
            Some(gi) => {
                let comp = &mut self.components[ci];
                comp.scopes[ai].push(f);
                let CompKind::Rooted { groups, .. } = &mut comp.kind else {
                    // cqshap-lint: allow(no-panic) -- structural invariant: grouped components have their root assigned at compile time
                    unreachable!("rooted component");
                };
                groups[gi].scopes[ai].push(f);
                if endo {
                    self.locs.insert(
                        f,
                        Loc::Grouped {
                            comp: ci,
                            group: gi,
                        },
                    );
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                // `f` itself supports its (positive) atom; if every
                // other positive atom already has a fact with this root
                // value, a brand-new root group forms — recompile.
                let comp = &self.components[ci];
                // cqshap-lint: allow(no-panic) -- structural invariant: grouped components have their root assigned at compile time
                let root = comp.root.expect("rooted component");
                let supported =
                    comp.atoms
                        .iter()
                        .zip(&comp.scopes)
                        .enumerate()
                        .all(|(i, (atom, scope))| {
                            atom.negated
                                || i == ai
                                || scope.iter().any(|&x| {
                                    atom.value_of(root, db.fact(x).tuple.values()) == value
                                })
                        });
                if supported && !self.components[ci].atoms[ai].negated {
                    return Ok(false);
                }
                self.components[ci].scopes[ai].push(f);
                if endo {
                    self.locs.insert(f, Loc::Junk { comp: ci });
                    Ok(self.shift_junk(ci, true))
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn apply_retract(&mut self, db: &Database, f: FactId) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact
        };
        let was_endo = self.locs.remove(&f).is_some();
        if self.components[ci].root.is_none() {
            self.components[ci].scopes[ai].retain(|&x| x != f);
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (_, slot) = self.rooted_slot(db, ci, ai, f);
        self.components[ci].scopes[ai].retain(|&x| x != f);
        match slot {
            Some(gi) => {
                let dies = {
                    let CompKind::Rooted { groups, .. } = &mut self.components[ci].kind else {
                        // cqshap-lint: allow(no-panic) -- structural invariant: grouped components have their root assigned at compile time
                        unreachable!("rooted component");
                    };
                    let g = &mut groups[gi];
                    g.scopes[ai].retain(|&x| x != f);
                    !g.atoms[ai].negated && g.scopes[ai].is_empty()
                };
                if dies {
                    return Ok(false); // the root group lost its support
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                if was_endo {
                    Ok(self.shift_junk(ci, false))
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn apply_flip(&mut self, db: &Database, f: FactId, endo_now: bool) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact
        };
        if self.components[ci].root.is_none() {
            if endo_now {
                self.locs.insert(f, Loc::Ground { comp: ci });
            } else {
                self.locs.remove(&f);
            }
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (_, slot) = self.rooted_slot(db, ci, ai, f);
        match slot {
            Some(gi) => {
                if endo_now {
                    self.locs.insert(
                        f,
                        Loc::Grouped {
                            comp: ci,
                            group: gi,
                        },
                    );
                } else {
                    self.locs.remove(&f);
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                if endo_now {
                    self.locs.insert(f, Loc::Junk { comp: ci });
                } else {
                    self.locs.remove(&f);
                }
                Ok(self.shift_junk(ci, endo_now))
            }
        }
    }

    /// Is `f`'s influence known to be zero without any re-evaluation?
    /// (True for facts outside every atom scope and for junk facts.)
    fn is_structurally_null(&self, f: FactId) -> bool {
        !self.satisfiable || matches!(self.locs.get(&f), None | Some(Loc::Junk { .. }))
    }

    /// An opaque bucket id grouping facts that share recount state: all
    /// structurally-null facts map to bucket 0, and every root group
    /// (resp. ground component) gets its own bucket. Chunking a report's
    /// fan-out by bucket keeps each group's work on one thread.
    fn bucket_of(&self, f: FactId) -> usize {
        if !self.satisfiable {
            return 0;
        }
        match self.locs.get(&f) {
            None | Some(Loc::Junk { .. }) => 0,
            Some(&Loc::Ground { comp }) => 1 + comp,
            Some(&Loc::Grouped { comp, group }) => self.group_bucket_base[comp] + group,
        }
    }

    /// The masked value pair of `f` — the full-query value of `D ∖ {f}`
    /// and of `D` with `f` exogenized (counting: the `(N_k, N⁺_k)`
    /// count vectors of the reduction, each of length `m`; probability:
    /// the conditionals `Pr[q | f absent]` / `Pr[q | f present]`).
    /// Equals what the per-fact oracles compute on the materialized
    /// modified databases.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    fn value_pair(&self, db: &Database, f: FactId) -> Result<(D::Value, D::Value), CoreError> {
        self.check_endogenous(db, f)?;
        if !self.satisfiable {
            let z = self.dom.zero(self.m - 1);
            return Ok((z.clone(), z));
        }
        match self.locs.get(&f) {
            None => {
                let v = self
                    .dom
                    .combine(&self.all_sat, &self.dom.free(self.free_endo - 1));
                Ok((v.clone(), v))
            }
            Some(&Loc::Junk { comp }) => {
                let c = &self.components[comp];
                let CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    ..
                } = &c.kind
                else {
                    // cqshap-lint: allow(no-panic) -- structural invariant: junk locs always point at rooted components
                    unreachable!("junk loc points at a rooted component");
                };
                let comp_unsat = self.dom.combine(unsat_all, &self.dom.free(junk_endo - 1));
                let comp_sat = self.dom.complement(&comp_unsat, c.endo - 1);
                let v = self.dom.combine(&c.env, &comp_sat);
                Ok((v.clone(), v))
            }
            Some(&Loc::Ground { comp }) => {
                let c = &self.components[comp];
                let (sat_minus, sat_plus) = self.masked_sat_pair(db, &c.atoms, &c.scopes, f)?;
                Ok((
                    self.dom.combine(&c.env, &sat_minus),
                    self.dom.combine(&c.env, &sat_plus),
                ))
            }
            Some(&Loc::Grouped { comp, group }) => {
                let (sat_minus, sat_plus) = {
                    let CompKind::Rooted { groups, .. } = &self.components[comp].kind else {
                        // cqshap-lint: allow(no-panic) -- structural invariant: grouped locs always point at rooted components
                        unreachable!("grouped loc points at a rooted component");
                    };
                    let g = &groups[group];
                    self.masked_sat_pair(db, &g.atoms, &g.scopes, f)?
                };
                Ok(self.lift_group_pair(comp, group, (sat_minus, sat_plus)))
            }
        }
    }

    /// Lifts a group-local masked pair to full-query values through the
    /// group's environment and the component's environment.
    fn lift_group_pair(
        &self,
        ci: usize,
        gi: usize,
        pair: (D::Value, D::Value),
    ) -> (D::Value, D::Value) {
        let c = &self.components[ci];
        let CompKind::Rooted { groups, .. } = &c.kind else {
            // cqshap-lint: allow(no-panic) -- structural invariant: lift_group_pair targets grouped, hence rooted, components
            unreachable!("lift_group_pair targets rooted components");
        };
        let g = &groups[gi];
        let lift = |sat: &D::Value| {
            let unsat = self.dom.complement(sat, g.endo - 1);
            let comp_unsat = self.dom.combine(&g.genv, &unsat);
            let comp_sat = self.dom.complement(&comp_unsat, c.endo - 1);
            self.dom.combine(&c.env, &comp_sat)
        };
        (lift(&pair.0), lift(&pair.1))
    }

    /// Runs the group/component recursion under the two per-fact masks:
    /// returns `(sat with f removed, sat with f exogenized)` (for
    /// counting, both of length `endo` — the group's endogenous count
    /// drops by one).
    fn masked_sat_pair(
        &self,
        db: &Database,
        atoms: &[PAtom],
        scopes: &[Vec<FactId>],
        f: FactId,
    ) -> Result<(D::Value, D::Value), CoreError> {
        let removed: Vec<Vec<FactId>> = scopes
            .iter()
            .map(|s| s.iter().copied().filter(|&x| x != f).collect())
            .collect();
        let sat_minus = eval_rec(
            &self.dom,
            MaskedDb::new(db, FactMask::Removed(f)),
            atoms,
            &removed,
        )?;
        let sat_plus = eval_rec(
            &self.dom,
            MaskedDb::new(db, FactMask::Exogenous(f)),
            atoms,
            scopes,
        )?;
        Ok((sat_minus, sat_plus))
    }

    fn check_endogenous(&self, db: &Database, f: FactId) -> Result<(), CoreError> {
        if db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: db.render_fact(f),
            });
        }
        Ok(())
    }
}

impl CompiledCount {
    /// Compiles `q` against `db` with the default thread budget (all
    /// available cores).
    ///
    /// # Errors
    /// The same structural errors as
    /// [`crate::satcount::count_sat_hierarchical`]:
    /// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`].
    pub fn compile(db: &Database, q: &ConjunctiveQuery) -> Result<Self, CoreError> {
        Self::compile_with_threads(db, q, 0)
    }

    /// [`CompiledCount::compile`] with an explicit worker cap for the
    /// parallel product trees and weight correlations (`0` = all
    /// available cores). The cap sticks to the engine: maintenance and
    /// recount paths reuse it.
    ///
    /// # Errors
    /// As [`CompiledCount::compile`].
    pub fn compile_with_threads(
        db: &Database,
        q: &ConjunctiveQuery,
        threads: usize,
    ) -> Result<Self, CoreError> {
        Self::compile_with_domain(db, q, threads, CountingDomain::new())
    }

    /// [`CompiledCount::compile_with_threads`] polling `cancel` from
    /// the counting recursion and the polynomial kernels: a tripped
    /// budget aborts the compile with [`CoreError::DeadlineExceeded`].
    ///
    /// # Errors
    /// As [`CompiledCount::compile`], plus
    /// [`CoreError::DeadlineExceeded`].
    pub fn compile_with_cancel(
        db: &Database,
        q: &ConjunctiveQuery,
        threads: usize,
        cancel: CancelToken,
    ) -> Result<Self, CoreError> {
        Self::compile_with_domain(db, q, threads, CountingDomain::with_cancel(cancel))
    }

    fn compile_with_domain(
        db: &Database,
        q: &ConjunctiveQuery,
        threads: usize,
        dom: CountingDomain,
    ) -> Result<Self, CoreError> {
        let eng = CompiledEngine::compile(db, q, threads, dom)?;
        let table = FactorialTable::new(eng.m);
        let mut compiled = CompiledCount {
            eng,
            table,
            comp_weights: Vec::new(),
            group_weights: Vec::new(),
            reduce_cache: Mutex::new(HashMap::new()),
            pair_cache: Mutex::new(HashMap::new()),
        };
        compiled.refresh_weights();
        Ok(compiled)
    }

    /// Recomputes the weight correlations against `w[k] = k!·(m−1−k)!`
    /// from the engine's refreshed environments. Shared by
    /// [`CompiledCount::compile`] and [`CompiledCount::update`]; the
    /// expensive part (the per-group correlations) fans out across
    /// threads.
    fn refresh_weights(&mut self) {
        self.reduce_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.pair_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        if !self.eng.satisfiable {
            self.comp_weights.clear();
            self.group_weights.clear();
            return;
        }
        let m = self.eng.m;
        let threads = self.eng.threads;

        // The Shapley weight numerators w[k] = k!·(m−1−k)!.
        let w: Vec<BigUint> = (0..m)
            .map(|k| self.table.shapley_weight_numerator(m, k))
            .collect();

        let comps = &self.eng.components;
        self.comp_weights = par_map_with(threads, comps.len(), |i| {
            correlate(&w, &comps[i].env, comps[i].endo)
        });
        let comp_weights = &self.comp_weights;
        self.group_weights = comps
            .iter()
            .enumerate()
            .map(|(ci, comp)| match &comp.kind {
                CompKind::Ground => Vec::new(),
                CompKind::Rooted { groups, .. } => {
                    // Groups with equal `unsat` polynomials are
                    // isomorphic: their leave-one-out environments
                    // (products over the *other* groups) and weight
                    // correlations coincide, so one representative
                    // correlation serves the whole class. Uniform
                    // workloads (many structurally identical groups)
                    // collapse to a handful of correlations.
                    let n = groups.len();
                    let mut class_of = vec![0usize; n];
                    let mut reps: Vec<usize> = Vec::new();
                    {
                        let mut seen: HashMap<&[BigUint], usize> = HashMap::new();
                        for (g, group) in groups.iter().enumerate() {
                            let next = reps.len();
                            let c = *seen.entry(group.unsat.as_slice()).or_insert(next);
                            if c == next {
                                reps.push(g);
                            }
                            class_of[g] = c;
                        }
                    }
                    let rep_weights = par_map_with(threads, reps.len(), |r| {
                        let g = &groups[reps[r]];
                        correlate(&comp_weights[ci], &g.genv, g.endo)
                    });
                    (0..n).map(|g| rep_weights[class_of[g]].clone()).collect()
                }
            })
            .collect();
    }

    /// Patches the compiled caches after one in-place database update
    /// (the database must already be mutated). Returns `Ok(false)` when
    /// the change shifts the compiled *structure* — an atom resolving
    /// differently, a root group appearing or dying, a degenerate
    /// always-satisfied group — in which case the caller must
    /// [`CompiledCount::compile`] afresh; results after a successful
    /// update are bit-identical to that fresh compile.
    ///
    /// # Errors
    /// Anything the counting recursion raises while re-counting the
    /// touched root group.
    pub fn update(&mut self, db: &Database, change: EngineUpdate) -> Result<bool, CoreError> {
        if !self.eng.update(db, change)? {
            return Ok(false);
        }
        if self.table.max_n() != self.eng.m {
            self.table = FactorialTable::new(self.eng.m);
        }
        self.refresh_weights();
        Ok(true)
    }

    /// `|Dn|` of the compiled database.
    pub fn endo_count(&self) -> usize {
        self.eng.m
    }

    /// The compiled query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.eng.query
    }

    /// `[|Sat(D,q,k)|]_{k=0..m}` for the unmodified database — what
    /// [`crate::satcount::count_sat_hierarchical`] computes.
    pub fn total_counts(&self) -> &[BigUint] {
        &self.eng.total
    }

    /// Is `f`'s Shapley value known to be zero without any recounting?
    /// (True for facts outside every atom scope and for junk facts.)
    pub fn is_structurally_null(&self, f: FactId) -> bool {
        self.eng.is_structurally_null(f)
    }

    /// An opaque bucket id grouping facts that share recount state: all
    /// structurally-null facts map to bucket 0, and every root group
    /// (resp. ground component) gets its own bucket. Chunking a report's
    /// fan-out by bucket keeps each group's work on one thread.
    pub fn bucket_of(&self, f: FactId) -> usize {
        self.eng.bucket_of(f)
    }

    /// Total number of bucket ids (all in `0..buckets()`).
    pub fn buckets(&self) -> usize {
        self.eng.buckets
    }

    /// The exact Shapley value of `f`.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn value(&self, db: &Database, f: FactId) -> Result<BigRational, CoreError> {
        let num = self.shapley_numerator(db, f)?;
        Ok(self.normalize_numerator(num))
    }

    /// The Shapley numerator of `f` over the common denominator `m!`:
    /// `value(f) = shapley_numerator(f) / m!`. Report paths accumulate
    /// these with plain integer additions (totals, inclusion–exclusion
    /// sums) and normalize once instead of reducing per operation.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn shapley_numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError> {
        self.eng.check_endogenous(db, f)?;
        if self.is_structurally_null(f) {
            return Ok(BigInt::zero());
        }
        let (weight, (sat_minus, sat_plus)) =
            // cqshap-lint: allow(no-panic) -- the structurally-null check above guarantees f is in the loc map
            match *self.eng.locs.get(&f).expect("checked non-null") {
                Loc::Ground { comp } => {
                    let c = &self.eng.components[comp];
                    (
                        &self.comp_weights[comp],
                        self.eng.masked_sat_pair(db, &c.atoms, &c.scopes, f)?,
                    )
                }
                Loc::Grouped { comp, group } => (
                    &self.group_weights[comp][group],
                    self.cached_group_pair(db, comp, group, f)?,
                ),
                // cqshap-lint: allow(no-panic) -- junk facts are structurally null and were returned above
                Loc::Junk { .. } => unreachable!("junk is structurally null"),
            };
        debug_assert_eq!(sat_minus.len(), sat_plus.len());
        debug_assert_eq!(weight.len(), sat_plus.len());
        let mut num = BigInt::zero();
        for ((p, mi), wj) in sat_plus.iter().zip(&sat_minus).zip(weight) {
            let d = BigInt::signed_diff(p, mi);
            if !d.is_zero() {
                num += &(d * BigInt::from_biguint(wj.clone()));
            }
        }
        Ok(num)
    }

    /// `num / m!` in lowest terms, memoized per distinct numerator
    /// (facts of isomorphic root groups share theirs).
    pub fn normalize_numerator(&self, num: BigInt) -> BigRational {
        if let Some(v) = self
            .reduce_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&num)
        {
            return v.clone();
        }
        let reduced = self.table.reduce_over_factorial(num.clone(), self.eng.m);
        self.reduce_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(num, reduced.clone());
        reduced
    }

    /// The `(N_k, N⁺_k)` count vectors of the reduction for `f` — the
    /// counts of `D ∖ {f}` and of `D` with `f` exogenized, each of
    /// length `m`. Equals what the per-fact oracles compute on the
    /// materialized modified databases; used for cross-checking.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn counts_pair(
        &self,
        db: &Database,
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        self.eng.value_pair(db, f)
    }

    /// [`CompiledEngine::masked_sat_pair`] for a grouped fact, memoized
    /// by `(group isomorphism class, role of f)`: uniform workloads
    /// recount one representative per class instead of every fact. The
    /// memo is sound because counting values are canon-determined —
    /// probability evaluation must not (and does not) use it.
    fn cached_group_pair(
        &self,
        db: &Database,
        ci: usize,
        gi: usize,
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        let CompKind::Rooted { groups, .. } = &self.eng.components[ci].kind else {
            // cqshap-lint: allow(no-panic) -- structural invariant: grouped locs always point at rooted components
            unreachable!("grouped loc points at a rooted component");
        };
        let g = &groups[gi];
        let role = g
            .scopes
            .iter()
            .enumerate()
            .find_map(|(ai, scope)| scope.iter().position(|&x| x == f).map(|pos| (ai, pos)))
            // cqshap-lint: allow(no-panic) -- a grouped fact appears in its own component scope by construction
            .expect("grouped fact sits in one scope");
        let key = (g.canon.clone(), role.0, role.1);
        // Block-scoped lookup: the guard is a temporary dropped at the
        // end of the block, so the miss path below runs lock-free.
        let cached = {
            self.pair_cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(&key)
                .cloned()
        };
        if let Some(pair) = cached {
            RECOUNT_CACHE_HIT.incr();
            return Ok(pair);
        }
        RECOUNT_CACHE_MISS.incr();
        let pair = {
            let _span = Span::enter(obs_phase::RECOUNT);
            self.eng.masked_sat_pair(db, &g.atoms, &g.scopes, f)?
        };
        self.pair_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, pair.clone());
        Ok(pair)
    }
}

impl CompiledProbability {
    /// Compiles `q` against `db` for lifted inference at `probs`, with
    /// the default thread budget.
    ///
    /// # Errors
    /// The same structural errors as [`CompiledCount::compile`].
    pub fn compile(
        db: &Database,
        q: &ConjunctiveQuery,
        probs: FactProbabilities,
    ) -> Result<Self, CoreError> {
        Self::compile_with_threads(db, q, probs, 0)
    }

    /// [`CompiledProbability::compile`] with an explicit worker cap.
    ///
    /// # Errors
    /// As [`CompiledProbability::compile`].
    pub fn compile_with_threads(
        db: &Database,
        q: &ConjunctiveQuery,
        probs: FactProbabilities,
        threads: usize,
    ) -> Result<Self, CoreError> {
        Ok(CompiledProbability {
            eng: CompiledEngine::compile(db, q, threads, ProbabilityDomain::new(probs))?,
        })
    }

    /// [`CompiledProbability::compile_with_threads`] polling `cancel`
    /// from the lifted-inference recursion.
    ///
    /// # Errors
    /// As [`CompiledProbability::compile`], plus
    /// [`CoreError::DeadlineExceeded`].
    pub fn compile_with_cancel(
        db: &Database,
        q: &ConjunctiveQuery,
        probs: FactProbabilities,
        threads: usize,
        cancel: CancelToken,
    ) -> Result<Self, CoreError> {
        Ok(CompiledProbability {
            eng: CompiledEngine::compile(
                db,
                q,
                threads,
                ProbabilityDomain::with_cancel(probs, cancel),
            )?,
        })
    }

    /// `Pr[q]` under the compiled per-fact probabilities — served from
    /// the cache, no traversal.
    pub fn probability(&self) -> &BigRational {
        &self.eng.total
    }

    /// The per-fact probabilities the engine was compiled at.
    pub fn probabilities(&self) -> &FactProbabilities {
        self.eng.dom.probabilities()
    }

    /// `|Dn|` of the compiled database.
    pub fn endo_count(&self) -> usize {
        self.eng.m
    }

    /// The compiled query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.eng.query
    }

    /// Is `f`'s presence irrelevant to `Pr[q]` by structure alone?
    pub fn is_structurally_null(&self, f: FactId) -> bool {
        self.eng.is_structurally_null(f)
    }

    /// The conditionals `(Pr[q | f absent], Pr[q | f present])`, by
    /// masked re-evaluation of `f`'s root group only.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn conditioned_pair(
        &self,
        db: &Database,
        f: FactId,
    ) -> Result<(BigRational, BigRational), CoreError> {
        self.eng.value_pair(db, f)
    }

    /// The expected influence of `f` on the query answer:
    /// `Pr[q | f present] − Pr[q | f absent]` — the probabilistic
    /// analogue of the Shapley reduction's masked difference.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn expected_marginal(&self, db: &Database, f: FactId) -> Result<BigRational, CoreError> {
        let (absent, present) = self.eng.value_pair(db, f)?;
        Ok(present - absent)
    }

    /// Patches the compiled caches after one in-place database update —
    /// identical contract to [`CompiledCount::update`]: `Ok(false)`
    /// means the structure shifted and the caller must compile afresh.
    /// A fact inserted while the engine is live evaluates at the
    /// compiled default probability until the caller rebuilds with an
    /// override.
    ///
    /// # Errors
    /// Anything the evaluation recursion raises while re-evaluating the
    /// touched root group.
    pub fn update(&mut self, db: &Database, change: EngineUpdate) -> Result<bool, CoreError> {
        self.eng.update(db, change)
    }
}

/// The weight correlation `out[j] = Σ_t weights[j+t] · env[t]` for
/// `j = 0..out_len`. Contracting a difference vector against `out` is
/// the same as convolving it with `env` first and weighting afterwards.
fn correlate(weights: &[BigUint], env: &[BigUint], out_len: usize) -> Vec<BigUint> {
    (0..out_len)
        .map(|j| {
            let mut acc = BigUint::zero();
            for (t, e) in env.iter().enumerate() {
                if !e.is_zero() {
                    acc += &(&weights[j + t] * e);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anyquery::AnyQuery;
    use crate::satcount::{count_sat_hierarchical, HierarchicalCounter, SatCountOracle};
    use crate::shapley::shapley_via_counts;
    use cqshap_db::Provenance;
    use cqshap_query::parse_cq;

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    /// Batched values and count pairs must be bit-identical to the
    /// per-fact oracle on the materialized modified databases.
    fn agrees_with_per_fact(db: &Database, q: &ConjunctiveQuery) {
        let compiled = CompiledCount::compile(db, q).unwrap();
        assert_eq!(
            compiled.total_counts(),
            &count_sat_hierarchical(db, q).unwrap()[..],
            "total counts for {q}"
        );
        let oracle = HierarchicalCounter;
        for &f in db.endo_facts() {
            let want = shapley_via_counts(db, AnyQuery::Cq(q), f, &oracle).unwrap();
            let got = compiled.value(db, f).unwrap();
            assert_eq!(got, want, "{} for {q} on\n{db}", db.render_fact(f));
            let (n_minus, n_plus) = compiled.counts_pair(db, f).unwrap();
            let want_minus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Removed(f))
                .unwrap();
            let want_plus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Exogenous(f))
                .unwrap();
            assert_eq!(n_minus, want_minus, "{} N_k", db.render_fact(f));
            assert_eq!(n_plus, want_plus, "{} N⁺_k", db.render_fact(f));
        }
    }

    /// A maintained engine must agree (bit-identically) with a fresh
    /// compile of the updated database, falling back when told to.
    fn assert_update_matches_fresh(
        db: &Database,
        compiled: &mut CompiledCount,
        q: &ConjunctiveQuery,
        change: EngineUpdate,
    ) {
        if !compiled.update(db, change).unwrap() {
            *compiled = CompiledCount::compile(db, q).unwrap();
        }
        let fresh = CompiledCount::compile(db, q).unwrap();
        assert_eq!(
            compiled.total_counts(),
            fresh.total_counts(),
            "totals after {change:?} for {q}"
        );
        for &f in db.endo_facts() {
            assert_eq!(
                compiled.value(db, f).unwrap(),
                fresh.value(db, f).unwrap(),
                "{} after {change:?} for {q}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn example_2_3_batched() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let expect = [
            ("TA", vec!["Adam"], "-3/28"),
            ("TA", vec!["Ben"], "-2/35"),
            ("TA", vec!["David"], "0"),
            ("Reg", vec!["Adam", "OS"], "37/210"),
            ("Reg", vec!["Adam", "AI"], "37/210"),
            ("Reg", vec!["Ben", "OS"], "27/140"),
            ("Reg", vec!["Caroline", "DB"], "13/42"),
            ("Reg", vec!["Caroline", "IC"], "13/42"),
        ];
        for (rel, args, want) in expect {
            let refs: Vec<&str> = args.to_vec();
            let f = db.find_fact(rel, &refs).unwrap();
            assert_eq!(compiled.value(&db, f).unwrap().to_string(), want);
        }
    }

    #[test]
    fn agrees_across_query_shapes() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn structural_nulls() {
        let db = university();
        // TA(David) never joins a Reg fact: junk (no positive support
        // for root value David in Reg) — exactly zero, no recount.
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let david = db.find_fact("TA", &["David"]).unwrap();
        assert!(compiled.is_structurally_null(david));
        assert_eq!(compiled.bucket_of(david), 0);
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        assert!(!compiled.is_structurally_null(adam));
        // Facts outside every scope are free.
        let q_ta = parse_cq("q() :- TA(x)").unwrap();
        let c2 = CompiledCount::compile(&db, &q_ta).unwrap();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        assert!(c2.is_structurally_null(reg));
        assert_eq!(c2.value(&db, reg).unwrap(), BigRational::zero());
    }

    #[test]
    fn buckets_partition_by_group() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        // Same student → same root group → same bucket.
        let f1 = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        let f2 = db.find_fact("Reg", &["Adam", "AI"]).unwrap();
        let f3 = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f2));
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f3));
        let g1 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert_ne!(compiled.bucket_of(f1), compiled.bucket_of(g1));
        assert!(compiled.bucket_of(g1) < compiled.buckets());
    }

    #[test]
    fn non_endogenous_fact_rejected() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            compiled.value(&db, stud),
            Err(CoreError::FactNotEndogenous { .. })
        ));
    }

    #[test]
    fn rejects_non_hierarchical() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y), Course(y, z)").unwrap();
        assert!(matches!(
            CompiledCount::compile(&db, &q),
            Err(CoreError::NotHierarchical { .. })
        ));
    }

    #[test]
    fn repeated_variable_patterns_batched() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        db.add_endo("E", &["b", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        for text in ["q() :- E(x, x)", "q() :- R(x), !E(x, x)"] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn explicit_thread_caps_change_nothing() {
        // The worker cap steers the parallel trees only — results are
        // bit-identical across caps.
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let reference = CompiledCount::compile(&db, &q1).unwrap();
        for threads in [1usize, 2, 4] {
            let capped = CompiledCount::compile_with_threads(&db, &q1, threads).unwrap();
            assert_eq!(capped.total_counts(), reference.total_counts());
            for &f in db.endo_facts() {
                assert_eq!(
                    capped.value(&db, f).unwrap(),
                    reference.value(&db, f).unwrap(),
                    "{} with {threads} threads",
                    db.render_fact(f)
                );
            }
        }
    }

    #[test]
    fn incremental_updates_match_fresh_compiles() {
        let mut db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q1).unwrap();

        // Insert into an existing root group.
        let f = db.add_endo("Reg", &["Adam", "DB"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(f));
        // Exogenize a grouped fact.
        let ben = db.find_fact("TA", &["Ben"]).unwrap();
        db.set_fact_provenance(ben, Provenance::Exogenous).unwrap();
        assert_update_matches_fresh(
            &db,
            &mut compiled,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        // Flip it back.
        db.set_fact_provenance(ben, Provenance::Endogenous).unwrap();
        assert_update_matches_fresh(
            &db,
            &mut compiled,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        // Retract a grouped fact (group keeps support through Reg(Adam, OS/AI)).
        db.retract_fact(f).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Retracted(f));
        // Insert a free fact (outside every scope).
        let free = db.add_endo("Unrelated", &["z"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(free));
        // Insert a junk fact (root value without Reg support).
        let junk = db.add_endo("TA", &["Nadia"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(junk));
        // Retract the junk fact again.
        db.retract_fact(junk).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Retracted(junk));
    }

    #[test]
    fn structural_updates_request_recompile() {
        let mut db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q1).unwrap();
        // A new student with both Stud and Reg support forms a brand-new
        // root group → incremental maintenance must decline.
        db.add_exo("Stud", &["Eve"]).unwrap();
        let eve_stud = db.find_fact("Stud", &["Eve"]).unwrap();
        assert!(compiled
            .update(&db, EngineUpdate::Inserted(eve_stud))
            .unwrap());
        let f = db.add_endo("Reg", &["Eve", "OS"]).unwrap();
        assert!(!compiled.update(&db, EngineUpdate::Inserted(f)).unwrap());
        compiled = CompiledCount::compile(&db, &q1).unwrap();
        // Retracting the only Reg fact of a group kills the group.
        let ben_os = db.find_fact("Reg", &["Ben", "OS"]).unwrap();
        db.retract_fact(ben_os).unwrap();
        assert!(!compiled
            .update(&db, EngineUpdate::Retracted(ben_os))
            .unwrap());
        // A fact over a relation unknown at compile time changes atom
        // resolution (the fingerprint catches it).
        let mut db2 = Database::parse("endo R(a)\n").unwrap();
        let q2 = parse_cq("q() :- R(x), !Ghost(x)").unwrap();
        let mut c2 = CompiledCount::compile(&db2, &q2).unwrap();
        let g = db2.add_exo("Ghost", &["a"]).unwrap();
        assert!(!c2.update(&db2, EngineUpdate::Inserted(g)).unwrap());
    }

    #[test]
    fn unsatisfiable_engine_tracks_m_across_updates() {
        let mut db = Database::parse("endo R(a)\n").unwrap();
        let q = parse_cq("q() :- Ghost(x), R(y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q).unwrap();
        let f = db.add_endo("R", &["b"]).unwrap();
        assert!(compiled.update(&db, EngineUpdate::Inserted(f)).unwrap());
        let fresh = CompiledCount::compile(&db, &q).unwrap();
        assert_eq!(compiled.total_counts(), fresh.total_counts());
        assert_eq!(
            compiled.value(&db, f).unwrap(),
            fresh.value(&db, f).unwrap()
        );
    }

    // -----------------------------------------------------------------
    // Probability-domain instantiation
    // -----------------------------------------------------------------

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    /// The probability-cycle fixture mirrors `cqshap-probdb`'s tests.
    fn cycled_probs(db: &Database) -> FactProbabilities {
        let cycle = [
            rat(1, 10),
            rat(3, 10),
            rat(1, 2),
            rat(7, 10),
            rat(9, 10),
            rat(1, 4),
            rat(3, 4),
            rat(3, 5),
        ];
        let mut probs = FactProbabilities::uniform(rat(1, 2));
        for (i, &f) in db.endo_facts().iter().enumerate() {
            probs.set(f, cycle[i % cycle.len()].clone());
        }
        probs
    }

    #[test]
    fn probability_engine_matches_enumeration_across_shapes() {
        let db = university();
        let probs = cycled_probs(&db);
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            let q = parse_cq(text).unwrap();
            let engine = CompiledProbability::compile(&db, &q, probs.clone()).unwrap();
            let brute =
                crate::domain::probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, None, 26)
                    .unwrap();
            assert_eq!(engine.probability(), &brute, "{text}");
            for &f in db.endo_facts() {
                let (absent, present) = engine.conditioned_pair(&db, f).unwrap();
                let want_absent = crate::domain::probability_by_enumeration(
                    &db,
                    AnyQuery::Cq(&q),
                    &probs,
                    Some((f, false)),
                    26,
                )
                .unwrap();
                let want_present = crate::domain::probability_by_enumeration(
                    &db,
                    AnyQuery::Cq(&q),
                    &probs,
                    Some((f, true)),
                    26,
                )
                .unwrap();
                assert_eq!(absent, want_absent, "{} absent {text}", db.render_fact(f));
                assert_eq!(
                    present,
                    want_present,
                    "{} present {text}",
                    db.render_fact(f)
                );
                assert_eq!(
                    engine.expected_marginal(&db, f).unwrap(),
                    want_present - want_absent,
                    "{} marginal {text}",
                    db.render_fact(f)
                );
            }
        }
    }

    /// A maintained probability engine must agree bit-identically with a
    /// fresh compile of the updated database at the same probabilities.
    fn assert_prob_update_matches_fresh(
        db: &Database,
        engine: &mut CompiledProbability,
        q: &ConjunctiveQuery,
        change: EngineUpdate,
    ) {
        let probs = engine.probabilities().clone();
        if !engine.update(db, change).unwrap() {
            *engine = CompiledProbability::compile(db, q, probs.clone()).unwrap();
        }
        let fresh = CompiledProbability::compile(db, q, probs).unwrap();
        assert_eq!(
            engine.probability(),
            fresh.probability(),
            "Pr[q] after {change:?} for {q}"
        );
        for &f in db.endo_facts() {
            assert_eq!(
                engine.conditioned_pair(db, f).unwrap(),
                fresh.conditioned_pair(db, f).unwrap(),
                "{} after {change:?} for {q}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn probability_updates_match_fresh_compiles() {
        let mut db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut engine = CompiledProbability::compile(&db, &q1, cycled_probs(&db)).unwrap();

        // Insert into an existing root group (evaluates at the default
        // probability until the caller rebuilds with an override).
        let f = db.add_endo("Reg", &["Adam", "DB"]).unwrap();
        assert_prob_update_matches_fresh(&db, &mut engine, &q1, EngineUpdate::Inserted(f));
        // Exogenize a grouped fact: its probability pins to 1.
        let ben = db.find_fact("TA", &["Ben"]).unwrap();
        db.set_fact_provenance(ben, Provenance::Exogenous).unwrap();
        assert_prob_update_matches_fresh(
            &db,
            &mut engine,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        db.set_fact_provenance(ben, Provenance::Endogenous).unwrap();
        assert_prob_update_matches_fresh(
            &db,
            &mut engine,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        // Retraction with surviving group support.
        db.retract_fact(f).unwrap();
        assert_prob_update_matches_fresh(&db, &mut engine, &q1, EngineUpdate::Retracted(f));
        // Free and junk facts.
        let free = db.add_endo("Unrelated", &["z"]).unwrap();
        assert_prob_update_matches_fresh(&db, &mut engine, &q1, EngineUpdate::Inserted(free));
        let junk = db.add_endo("TA", &["Nadia"]).unwrap();
        assert_prob_update_matches_fresh(&db, &mut engine, &q1, EngineUpdate::Inserted(junk));
        // Structural change: a brand-new root group declines maintenance.
        db.add_exo("Stud", &["Eve"]).unwrap();
        let eve_stud = db.find_fact("Stud", &["Eve"]).unwrap();
        assert_prob_update_matches_fresh(&db, &mut engine, &q1, EngineUpdate::Inserted(eve_stud));
        let eve_reg = db.add_endo("Reg", &["Eve", "OS"]).unwrap();
        assert!(!engine.update(&db, EngineUpdate::Inserted(eve_reg)).unwrap());
    }

    #[test]
    fn update_sequences_on_varied_queries() {
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
        ] {
            let q = parse_cq(text).unwrap();
            let mut db = university();
            let mut compiled = CompiledCount::compile(&db, &q).unwrap();
            let adam_os = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
            db.set_fact_provenance(adam_os, Provenance::Exogenous)
                .unwrap();
            assert_update_matches_fresh(
                &db,
                &mut compiled,
                &q,
                EngineUpdate::ProvenanceFlipped(adam_os),
            );
            let ic = db.find_fact("Reg", &["Caroline", "IC"]).unwrap();
            db.retract_fact(ic).unwrap();
            assert_update_matches_fresh(&db, &mut compiled, &q, EngineUpdate::Retracted(ic));
            let back = db.add_endo("Reg", &["Caroline", "IC"]).unwrap();
            assert_update_matches_fresh(&db, &mut compiled, &q, EngineUpdate::Inserted(back));
            db.set_fact_provenance(adam_os, Provenance::Endogenous)
                .unwrap();
            assert_update_matches_fresh(
                &db,
                &mut compiled,
                &q,
                EngineUpdate::ProvenanceFlipped(adam_os),
            );
        }
    }
}
