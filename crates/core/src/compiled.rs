//! The batched all-facts Shapley engine: compile-once `CntSat` with
//! incremental per-fact recounting and incremental maintenance across
//! database updates.
//!
//! [`crate::shapley::shapley_via_counts`] answers one fact by running
//! the full hierarchical DP twice; an all-facts report over `m`
//! endogenous facts therefore repeats atom resolution, relation
//! scoping, and the convolution of every *unchanged* root group `2m`
//! times. [`CompiledCount`] does that shared work **once per
//! `(db, query)`** and then answers each fact from the pieces that
//! actually change:
//!
//! 1. **Compile** — resolve the query's atoms, build per-relation
//!    scopes, split into connected components, and group each
//!    component's facts by their root value (the structure of Lemma
//!    3.2's recursion, materialized).
//! 2. **Cache** — every component's satisfying-count polynomial and
//!    every root group's unsatisfying-count polynomial, plus
//!    *leave-one-out environments* (prefix/suffix convolutions of all
//!    the other groups' polynomials, combined divide-and-conquer) and
//!    their correlations with the Shapley weight numerators
//!    `k!·(m−1−k)!`.
//! 3. **Recount** — for fact `f`, recompute only `f`'s root group under
//!    the two [`FactMask`] views (`f` removed, `f` exogenized; no
//!    database clones), and contract the short difference vector
//!    against the cached weight environment. Facts outside every scope
//!    ("free") and facts whose root value lacks positive support
//!    ("junk") are answered as exact zeros without any recounting.
//!
//! The per-fact cost drops from `O(m)` full-database DP work (plus two
//! database clones) to amortized `O(|group|)` — the recount touches one
//! root group and a dot product of its length.
//!
//! ## Incremental maintenance
//!
//! The engine does not borrow the database: every query-time method
//! takes `&Database`, and [`CompiledCount::update`] *patches* the
//! compiled state after an in-place database update
//! ([`Database::retract_fact`] / [`Database::set_fact_provenance`] /
//! an insertion) instead of recompiling. The key observation is that a
//! root group's cached leave-one-out environment
//! `genv_g = binom(junk) ⊛ ⊛_{h≠g} unsat_h` is a *product of the other
//! groups' polynomials*: a single-group change is a factor swap, served
//! by one exact polynomial division and one short convolution per
//! environment — `O(|group| · m)` small-coefficient work — rather than
//! re-running the divide-and-conquer product tree (the
//! large-coefficient stage that dominates compilation; compile runs it
//! through [`cqshap_numeric::poly`]'s scoped-thread trees with
//! size-dispatched Karatsuba/NTT convolution, and the junk binomial
//! factors are `O(n)` Pascal shifts).
//! Only the touched group's counting recursion is re-run; the weight
//! correlations (embarrassingly parallel, shared with compile) are then
//! refreshed against the new `k!·(m−1−k)!` numerators. Structural
//! drift — a root group appearing or dying, a query atom resolving
//! differently — makes `update` report that a full recompile is needed.
//!
//! The resulting values are *bit-identical* to the per-fact oracle: the
//! weighted sums are accumulated as exact integers over the common
//! denominator `m!` and normalized once, and every maintained
//! polynomial is recomputed exactly (division of exact factors), so a
//! maintained engine agrees bit-for-bit with a freshly compiled one.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cqshap_db::{ConstId, Database, FactId, FactMask, RelId};
use cqshap_numeric::{poly, BigInt, BigRational, BigUint, BinomialCache, FactorialTable};
use cqshap_query::{ConjunctiveQuery, Term};

use crate::error::CoreError;
use crate::parallel::par_map_with;
use crate::satcount::{
    complement_counts, connected_components, convolve, find_root_var, rec, resolve_query,
    root_candidates, root_group_scopes, scope_endo_count, MaskedDb, PAtom, ResolvedQuery,
};

/// One in-place database change, as seen by a compiled engine.
///
/// The database must be mutated *first*; the engine then patches its
/// caches from the post-update state (retracted facts stay readable
/// through their tombstones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUpdate {
    /// A freshly inserted fact.
    Inserted(FactId),
    /// A fact retracted in place ([`Database::retract_fact`]).
    Retracted(FactId),
    /// A fact whose provenance flipped in either direction
    /// ([`Database::set_fact_provenance`]).
    ProvenanceFlipped(FactId),
}

impl EngineUpdate {
    fn fact(self) -> FactId {
        match self {
            EngineUpdate::Inserted(f)
            | EngineUpdate::Retracted(f)
            | EngineUpdate::ProvenanceFlipped(f) => f,
        }
    }
}

/// Where an endogenous fact lives in the compiled structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In a ground (variable-free) component.
    Ground { comp: usize },
    /// In the root group `group` of component `comp`.
    Grouped { comp: usize, group: usize },
    /// In component `comp`'s scopes, but with a root value that lacks
    /// full positive support: a free "junk" choice, value exactly zero.
    Junk { comp: usize },
}

/// One root-value group of a connected component: the sub-query with
/// the root substituted, its fact scopes, and its cached polynomials.
struct RootGroup {
    /// The root value of the group.
    value: ConstId,
    /// Endogenous facts in the group.
    endo: usize,
    /// The component's atoms with the root variable substituted.
    atoms: Vec<PAtom>,
    /// Per-atom scopes restricted to this root value.
    scopes: Vec<Vec<FactId>>,
    /// Unsatisfying counts `[C(endo,j) − sat_j]` on the unmodified db.
    unsat: Vec<BigUint>,
    /// The leave-one-out environment `binom(junk) ⊛ ⊛_{h≠g} unsat_h` —
    /// cached so updates can maintain it by factor swaps. Isomorphic
    /// groups (equal `unsat`) share one allocation, so a swap patches
    /// each *distinct* environment once.
    genv: Arc<Vec<BigUint>>,
    /// `W2[j] = Σ_t W_comp[j+t] · genv[t]`. Contracting the group's
    /// masked difference vector with `W2` yields the Shapley numerator
    /// directly.
    weight: Vec<BigUint>,
    /// Canonical form of the group's atoms and scope facts (constants
    /// renamed by first occurrence, endogeneity flags included): groups
    /// with equal forms are isomorphic, so their per-fact masked
    /// recounts coincide role-for-role and share one cache entry.
    canon: Arc<Vec<u32>>,
}

/// The shape of one connected component.
enum CompKind {
    /// Entirely ground: recounted wholesale (a single binomial).
    Ground,
    /// Connected with a root variable: one [`RootGroup`] per root value
    /// with full positive support.
    Rooted {
        junk_endo: usize,
        /// `⊛_g unsat_g` — shared by all junk-fact count queries.
        unsat_all: Vec<BigUint>,
        groups: Vec<RootGroup>,
    },
}

/// A connected component of the query with its cached polynomials.
struct Component {
    /// The component's atom patterns (before root substitution).
    atoms: Vec<PAtom>,
    /// The relation of each atom (for locating updated facts).
    rels: Vec<RelId>,
    /// Per-atom scopes of the whole component (groups + junk).
    scopes: Vec<Vec<FactId>>,
    /// The root variable (rooted components only).
    root: Option<u32>,
    /// Endogenous facts in the component's scopes.
    endo: usize,
    /// Satisfying counts on the unmodified database (length `endo+1`).
    sat: Vec<BigUint>,
    /// `⊛_{j≠i} sat_j ⊛ binom(free)` — everything outside the component.
    env: Vec<BigUint>,
    /// `W[j] = Σ_t w[j+t] · env[t]` with `w[k] = k!(m−1−k)!`.
    weight: Vec<BigUint>,
    kind: CompKind,
}

/// Where an updated fact landed during [`CompiledCount::update`].
enum Placement {
    Free,
    Component { comp: usize, atom: usize },
}

/// A `(db, query)` pair compiled for batched all-facts Shapley
/// computation. Shared immutably across report worker threads; does
/// not borrow the database — query-time methods take `&Database`, and
/// [`CompiledCount::update`] maintains the caches across in-place
/// database updates.
pub struct CompiledCount {
    /// The compiled query (kept for update-time re-resolution checks).
    query: ConjunctiveQuery,
    /// Which atoms resolved (relation known, constants known) — any
    /// drift here after an update forces a recompile.
    fingerprint: Vec<(bool, bool)>,
    m: usize,
    table: FactorialTable,
    /// `false` iff some positive atom can never match: all counts zero.
    satisfiable: bool,
    /// `[|Sat(D,q,k)|]` for the unmodified database (length `m+1`).
    total: Vec<BigUint>,
    /// Endogenous facts outside every atom scope.
    free_endo: usize,
    /// `⊛_i sat_i` over all components (without the free binomial).
    all_sat: Vec<BigUint>,
    components: Vec<Component>,
    locs: HashMap<FactId, Loc>,
    /// Per-component offset of its groups' bucket ids (see
    /// [`CompiledCount::bucket_of`]).
    group_bucket_base: Vec<usize>,
    buckets: usize,
    /// Numerator → reduced value memo: facts of isomorphic root groups
    /// share their Shapley numerator, so the factorial-denominator
    /// reduction runs once per *distinct* numerator per (db, m) state.
    /// Cleared on every refresh (the denominator `m!` moves with `m`).
    reduce_cache: Mutex<HashMap<BigInt, BigRational>>,
    /// `(group canonical form, masked fact's role)` → the two masked
    /// count vectors of the reduction: the per-fact recount runs once
    /// per isomorphism class and role instead of once per fact.
    pair_cache: PairCache,
    /// Worker cap for the parallel product trees and weight
    /// correlations (`0` = all available cores) — plumbed from
    /// [`crate::ShapleyOptions::threads`].
    threads: usize,
    /// Shared Pascal rows: every free/junk recount and every junk
    /// binomial factor reads `[C(n, k)]_k` from here instead of
    /// rebuilding the row.
    binoms: BinomialCache,
}

/// Cache key: a group's canonical form plus the masked fact's role
/// (atom index, position within that atom's scope).
type PairKey = (Arc<Vec<u32>>, usize, usize);
type PairCache = Mutex<HashMap<PairKey, (Vec<BigUint>, Vec<BigUint>)>>;

/// The canonical form of `(atoms, scopes)`: atom patterns and scope
/// tuples with all constants renamed by first occurrence and each
/// fact's endogeneity recorded. Equal forms ⟹ the groups are related
/// by a constant-and-fact bijection that the counting recursion cannot
/// distinguish.
fn canonical_form(db: &Database, atoms: &[PAtom], scopes: &[Vec<FactId>]) -> Vec<u32> {
    use crate::satcount::PTerm;
    let mut rename: HashMap<ConstId, u32> = HashMap::new();
    let mut out: Vec<u32> = Vec::new();
    let canon = |c: ConstId, rename: &mut HashMap<ConstId, u32>| -> u32 {
        let next = rename.len() as u32;
        *rename.entry(c).or_insert(next)
    };
    for (atom, scope) in atoms.iter().zip(scopes) {
        out.push(u32::MAX);
        out.push(atom.negated as u32);
        for t in &atom.terms {
            match t {
                PTerm::Var(v) => {
                    out.push(u32::MAX - 1);
                    out.push(*v);
                }
                PTerm::Const(c) => {
                    out.push(u32::MAX - 2);
                    out.push(canon(*c, &mut rename));
                }
            }
        }
        for &f in scope {
            let fact = db.fact(f);
            out.push(u32::MAX - 3);
            out.push(fact.provenance.is_endogenous() as u32);
            for &c in fact.tuple.values() {
                out.push(canon(c, &mut rename));
            }
        }
    }
    out
}

/// Which atoms of `q` resolve against `db` (relation known, every
/// constant interned). Updates that change this change the resolved
/// atom list itself, which is beyond incremental maintenance.
fn resolution_fingerprint(db: &Database, q: &ConjunctiveQuery) -> Vec<(bool, bool)> {
    q.atoms()
        .iter()
        .map(|a| {
            (
                db.schema().id(&a.relation).is_some(),
                a.terms.iter().all(|t| match t {
                    Term::Const(name) => db.interner().get(name).is_some(),
                    Term::Var(_) => true,
                }),
            )
        })
        .collect()
}

impl CompiledCount {
    /// Compiles `q` against `db` with the default thread budget (all
    /// available cores).
    ///
    /// # Errors
    /// The same structural errors as
    /// [`crate::satcount::count_sat_hierarchical`]:
    /// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`].
    pub fn compile(db: &Database, q: &ConjunctiveQuery) -> Result<Self, CoreError> {
        Self::compile_with_threads(db, q, 0)
    }

    /// [`CompiledCount::compile`] with an explicit worker cap for the
    /// parallel product trees and weight correlations (`0` = all
    /// available cores). The cap sticks to the engine: maintenance and
    /// recount paths reuse it.
    ///
    /// # Errors
    /// As [`CompiledCount::compile`].
    pub fn compile_with_threads(
        db: &Database,
        q: &ConjunctiveQuery,
        threads: usize,
    ) -> Result<Self, CoreError> {
        let m = db.endo_count();
        let table = FactorialTable::new(m);
        let fingerprint = resolution_fingerprint(db, q);
        let binoms = BinomialCache::new();
        let view = MaskedDb::new(db, FactMask::None);
        let (atoms, rels, scopes) = match resolve_query(db, q)? {
            ResolvedQuery::Unsatisfiable => {
                return Ok(CompiledCount {
                    query: q.clone(),
                    fingerprint,
                    m,
                    table,
                    satisfiable: false,
                    total: vec![BigUint::zero(); m + 1],
                    free_endo: m,
                    all_sat: vec![BigUint::one()],
                    components: Vec::new(),
                    locs: HashMap::new(),
                    group_bucket_base: Vec::new(),
                    buckets: 1,
                    reduce_cache: Mutex::new(HashMap::new()),
                    pair_cache: Mutex::new(HashMap::new()),
                    threads,
                    binoms,
                });
            }
            ResolvedQuery::Atoms {
                atoms,
                rels,
                scopes,
            } => (atoms, rels, scopes),
        };

        let mut components: Vec<Component> = Vec::new();
        let mut locs: HashMap<FactId, Loc> = HashMap::new();
        for idxs in connected_components(&atoms) {
            let ci = components.len();
            let sub_atoms: Vec<PAtom> = idxs.iter().map(|&i| atoms[i].clone()).collect();
            let sub_rels: Vec<RelId> = idxs.iter().map(|&i| rels[i]).collect();
            let sub_scopes: Vec<Vec<FactId>> = idxs.iter().map(|&i| scopes[i].clone()).collect();
            let endo = scope_endo_count(view, &sub_scopes);
            if sub_atoms.iter().all(|a| !a.has_vars()) {
                let sat = rec(view, &sub_atoms, &sub_scopes)?;
                for &f in sub_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(f, Loc::Ground { comp: ci });
                    }
                }
                components.push(Component {
                    atoms: sub_atoms,
                    rels: sub_rels,
                    scopes: sub_scopes,
                    root: None,
                    endo,
                    sat,
                    env: Vec::new(),
                    weight: Vec::new(),
                    kind: CompKind::Ground,
                });
                continue;
            }
            let root = find_root_var(&sub_atoms).ok_or_else(|| {
                CoreError::Unsupported(
                    "no root variable in a connected sub-query: the query is not hierarchical"
                        .into(),
                )
            })?;
            let candidates = root_candidates(view, root, &sub_atoms, &sub_scopes)?;
            let mut groups: Vec<RootGroup> = Vec::new();
            let mut grouped_endo = 0usize;
            for &c in &candidates {
                let g_atoms: Vec<PAtom> = sub_atoms.iter().map(|a| a.substitute(root, c)).collect();
                let g_scopes = root_group_scopes(view, root, c, &sub_atoms, &sub_scopes);
                let g_endo = scope_endo_count(view, &g_scopes);
                let sat_c = rec(view, &g_atoms, &g_scopes)?;
                for &f in g_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(
                            f,
                            Loc::Grouped {
                                comp: ci,
                                group: groups.len(),
                            },
                        );
                    }
                }
                grouped_endo += g_endo;
                let canon = Arc::new(canonical_form(db, &g_atoms, &g_scopes));
                groups.push(RootGroup {
                    value: c,
                    endo: g_endo,
                    atoms: g_atoms,
                    scopes: g_scopes,
                    unsat: complement_counts(&sat_c, g_endo),
                    genv: Arc::new(Vec::new()),
                    weight: Vec::new(),
                    canon,
                });
            }
            let junk_endo = endo - grouped_endo;
            for &f in sub_scopes.iter().flatten() {
                if view.is_endo(f) {
                    locs.entry(f).or_insert(Loc::Junk { comp: ci });
                }
            }
            let unsat_refs: Vec<&[BigUint]> = groups.iter().map(|g| g.unsat.as_slice()).collect();
            let unsat_all = poly::product_tree(&unsat_refs, threads);
            let comp_unsat = convolve(&unsat_all, &binoms.row(junk_endo));
            let sat = complement_counts(&comp_unsat, endo);
            components.push(Component {
                atoms: sub_atoms,
                rels: sub_rels,
                scopes: sub_scopes,
                root: Some(root),
                endo,
                sat,
                env: Vec::new(),
                weight: Vec::new(),
                kind: CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    groups,
                },
            });
        }

        let free_endo = m - components.iter().map(|c| c.endo).sum::<usize>();

        // Group-level leave-one-out environments, computed once by the
        // work-stealing divide-and-conquer product tree and *cached*
        // (updates maintain them by factor swaps instead of re-running
        // the tree).
        for comp in &mut components {
            if let CompKind::Rooted {
                junk_endo, groups, ..
            } = &mut comp.kind
            {
                let unsat_refs: Vec<&[BigUint]> =
                    groups.iter().map(|g| g.unsat.as_slice()).collect();
                // Isomorphic groups (equal `unsat`) share one `Arc`'d
                // environment straight out of the subsystem, so
                // update-time factor swaps patch each distinct
                // polynomial once.
                let genv = poly::leave_one_out_products_shared(
                    &unsat_refs,
                    &binoms.row(*junk_endo),
                    threads,
                );
                for (group, env) in groups.iter_mut().zip(genv) {
                    group.genv = env;
                }
            }
        }

        // Bucket layout: 0 = all zero-valued facts (free + junk), then
        // one bucket per ground component, then one per root group.
        let mut group_bucket_base = Vec::with_capacity(components.len());
        let mut next = 1 + components.len();
        for comp in &components {
            group_bucket_base.push(next);
            if let CompKind::Rooted { groups, .. } = &comp.kind {
                next += groups.len();
            }
        }

        let mut compiled = CompiledCount {
            query: q.clone(),
            fingerprint,
            m,
            table,
            satisfiable: true,
            total: Vec::new(),
            free_endo,
            all_sat: Vec::new(),
            components,
            locs,
            group_bucket_base,
            buckets: next,
            reduce_cache: Mutex::new(HashMap::new()),
            pair_cache: Mutex::new(HashMap::new()),
            threads,
            binoms,
        };
        compiled.refresh_weights();
        Ok(compiled)
    }

    /// Recomputes everything downstream of the per-group polynomials:
    /// the component/total counts, the cross-component environments,
    /// and all weight correlations against `w[k] = k!·(m−1−k)!`.
    /// Shared by [`CompiledCount::compile`] and
    /// [`CompiledCount::update`]; the expensive part (the per-group
    /// correlations) fans out across threads.
    fn refresh_weights(&mut self) {
        self.reduce_cache.lock().expect("cache lock").clear();
        self.pair_cache.lock().expect("cache lock").clear();
        let m = self.m;
        let sats: Vec<&[BigUint]> = self.components.iter().map(|c| c.sat.as_slice()).collect();
        self.all_sat = poly::product_tree(&sats, self.threads);
        self.total = convolve(&self.all_sat, &self.binoms.row(self.free_endo));
        debug_assert_eq!(self.total.len(), m + 1);

        // The Shapley weight numerators w[k] = k!·(m−1−k)!.
        let w: Vec<BigUint> = (0..m)
            .map(|k| self.table.shapley_weight_numerator(m, k))
            .collect();

        // Component-level leave-one-out environments and their weight
        // correlations. Components are bounded by the query's atom
        // count, so this stage is cheap next to the group-level work.
        let envs =
            poly::leave_one_out_products(&sats, &self.binoms.row(self.free_endo), self.threads);
        let comp_endos: Vec<usize> = self.components.iter().map(|c| c.endo).collect();
        let comp_weights = par_map_with(self.threads, self.components.len(), |i| {
            correlate(&w, &envs[i], comp_endos[i])
        });
        for ((comp, env), weight) in self.components.iter_mut().zip(envs).zip(comp_weights) {
            comp.env = env;
            comp.weight = weight;
        }
        for comp in &mut self.components {
            if let CompKind::Rooted { groups, .. } = &mut comp.kind {
                // Groups with equal `unsat` polynomials are isomorphic:
                // their leave-one-out environments (products over the
                // *other* groups) and weight correlations coincide, so
                // one representative correlation serves the whole
                // class. Uniform workloads (many structurally identical
                // groups) collapse to a handful of correlations.
                let n = groups.len();
                let mut class_of = vec![0usize; n];
                let mut reps: Vec<usize> = Vec::new();
                {
                    let mut seen: HashMap<&[BigUint], usize> = HashMap::new();
                    for (g, group) in groups.iter().enumerate() {
                        let next = reps.len();
                        let c = *seen.entry(group.unsat.as_slice()).or_insert(next);
                        if c == next {
                            reps.push(g);
                        }
                        class_of[g] = c;
                    }
                }
                let groups_ref: &Vec<RootGroup> = groups;
                let rep_weights = par_map_with(self.threads, reps.len(), |r| {
                    let g = &groups_ref[reps[r]];
                    correlate(&comp.weight, &g.genv, g.endo)
                });
                for (g, group) in groups.iter_mut().enumerate() {
                    group.weight = rep_weights[class_of[g]].clone();
                }
            }
        }
    }

    /// Patches the compiled caches after one in-place database update
    /// (the database must already be mutated). Returns `Ok(false)` when
    /// the change shifts the compiled *structure* — an atom resolving
    /// differently, a root group appearing or dying, a degenerate
    /// always-satisfied group — in which case the caller must
    /// [`CompiledCount::compile`] afresh; results after a successful
    /// update are bit-identical to that fresh compile.
    ///
    /// # Errors
    /// Anything the counting recursion raises while re-counting the
    /// touched root group.
    pub fn update(&mut self, db: &Database, change: EngineUpdate) -> Result<bool, CoreError> {
        if resolution_fingerprint(db, &self.query) != self.fingerprint {
            return Ok(false);
        }
        let f = change.fact();
        if !self.satisfiable {
            // Still unsatisfiable (the fingerprint pinned the unknown
            // positive atom): only the zero-count shell tracks m.
            if self.m != db.endo_count() {
                self.m = db.endo_count();
                self.table = FactorialTable::new(self.m);
                self.total = vec![BigUint::zero(); self.m + 1];
                self.free_endo = self.m;
            }
            return Ok(true);
        }
        let endo_now = db.endo_index(f).is_some();
        let ok = match change {
            EngineUpdate::Inserted(_) => self.apply_insert(db, f)?,
            EngineUpdate::Retracted(_) => self.apply_retract(db, f)?,
            EngineUpdate::ProvenanceFlipped(_) => self.apply_flip(db, f, endo_now)?,
        };
        if !ok {
            return Ok(false);
        }
        if self.m != db.endo_count() {
            self.m = db.endo_count();
            self.table = FactorialTable::new(self.m);
        }
        self.free_endo = self.m - self.components.iter().map(|c| c.endo).sum::<usize>();
        self.refresh_weights();
        Ok(true)
    }

    /// Which component/atom (if any) matches fact `f`'s pattern.
    /// Self-join-freeness makes the match unique.
    fn place(&self, db: &Database, f: FactId) -> Placement {
        let fact = db.fact(f);
        for (ci, comp) in self.components.iter().enumerate() {
            for (ai, (&rel, atom)) in comp.rels.iter().zip(&comp.atoms).enumerate() {
                if rel == fact.rel && atom.matches(fact.tuple.values()) {
                    return Placement::Component { comp: ci, atom: ai };
                }
            }
        }
        Placement::Free
    }

    /// Re-runs the counting recursion for one root group and swaps the
    /// updated `unsat` factor into every cached environment of the
    /// component. Returns `false` when the swap is impossible (the old
    /// factor was identically zero: an always-satisfied group zeroed
    /// every environment, so nothing can be recovered incrementally).
    fn recount_group(&mut self, db: &Database, ci: usize, gi: usize) -> Result<bool, CoreError> {
        let view = MaskedDb::new(db, FactMask::None);
        let binoms = &self.binoms;
        let comp = &mut self.components[ci];
        let (new_endo, comp_unsat) = {
            let CompKind::Rooted {
                junk_endo,
                unsat_all,
                groups,
            } = &mut comp.kind
            else {
                unreachable!("recount_group targets rooted components");
            };
            let g = &mut groups[gi];
            g.endo = scope_endo_count(view, &g.scopes);
            g.canon = Arc::new(canonical_form(db, &g.atoms, &g.scopes));
            let sat_c = rec(view, &g.atoms, &g.scopes)?;
            let unsat_new = complement_counts(&sat_c, g.endo);
            let unsat_old = std::mem::replace(&mut g.unsat, unsat_new.clone());
            if unsat_old.iter().all(|c| c.is_zero()) {
                return Ok(false);
            }
            let Some(quotient) = poly::exact_div(unsat_all, &unsat_old) else {
                return Ok(false);
            };
            *unsat_all = convolve(&quotient, &unsat_new);
            // Swap the updated factor into every *distinct* environment
            // (shared Arcs make the per-group pass a pointer lookup).
            let mut patched: HashMap<*const Vec<BigUint>, Arc<Vec<BigUint>>> = HashMap::new();
            for (hi, h) in groups.iter_mut().enumerate() {
                if hi == gi {
                    continue;
                }
                if let Some(done) = patched.get(&Arc::as_ptr(&h.genv)) {
                    h.genv = done.clone();
                    continue;
                }
                let Some(quotient) = poly::exact_div(&h.genv, &unsat_old) else {
                    return Ok(false);
                };
                let swapped = Arc::new(convolve(&quotient, &unsat_new));
                patched.insert(Arc::as_ptr(&h.genv), swapped.clone());
                h.genv = swapped;
            }
            (
                groups.iter().map(|g| g.endo).sum::<usize>() + *junk_endo,
                convolve(unsat_all, &binoms.row(*junk_endo)),
            )
        };
        comp.endo = new_endo;
        comp.sat = complement_counts(&comp_unsat, new_endo);
        Ok(true)
    }

    /// Re-runs the base case of a ground component.
    fn recount_ground(&mut self, db: &Database, ci: usize) -> Result<(), CoreError> {
        let view = MaskedDb::new(db, FactMask::None);
        let comp = &mut self.components[ci];
        comp.endo = scope_endo_count(view, &comp.scopes);
        comp.sat = rec(view, &comp.atoms, &comp.scopes)?;
        Ok(())
    }

    /// Shifts a component's junk-binomial factor by ±1 endogenous fact:
    /// `binom(j+1) = binom(j) ⊛ [1, 1]` (Pascal), so every group
    /// environment gains or sheds one `[1, 1]` factor — `O(n)` Pascal
    /// shifts ([`poly::pascal_up`] / [`poly::pascal_down`]) instead of
    /// generic convolution/division.
    fn shift_junk(&mut self, ci: usize, grow: bool) -> bool {
        let binoms = &self.binoms;
        let comp = &mut self.components[ci];
        let (new_endo, comp_unsat) = {
            let CompKind::Rooted {
                junk_endo,
                unsat_all,
                groups,
            } = &mut comp.kind
            else {
                unreachable!("junk lives in rooted components");
            };
            let mut patched: HashMap<*const Vec<BigUint>, Arc<Vec<BigUint>>> = HashMap::new();
            if grow {
                *junk_endo += 1;
                for g in groups.iter_mut() {
                    if let Some(done) = patched.get(&Arc::as_ptr(&g.genv)) {
                        g.genv = done.clone();
                        continue;
                    }
                    let grown = Arc::new(poly::pascal_up(&g.genv));
                    patched.insert(Arc::as_ptr(&g.genv), grown.clone());
                    g.genv = grown;
                }
            } else {
                *junk_endo -= 1;
                for g in groups.iter_mut() {
                    if let Some(done) = patched.get(&Arc::as_ptr(&g.genv)) {
                        g.genv = done.clone();
                        continue;
                    }
                    let Some(quotient) = poly::pascal_down(&g.genv) else {
                        return false;
                    };
                    let shrunk = Arc::new(quotient);
                    patched.insert(Arc::as_ptr(&g.genv), shrunk.clone());
                    g.genv = shrunk;
                }
            }
            let grouped: usize = groups.iter().map(|g| g.endo).sum();
            (
                grouped + *junk_endo,
                convolve(unsat_all, &binoms.row(*junk_endo)),
            )
        };
        comp.endo = new_endo;
        comp.sat = complement_counts(&comp_unsat, new_endo);
        true
    }

    /// Where `f` sits inside component `ci`: in the root group for its
    /// root value, or in the junk region (no such group).
    fn rooted_slot(
        &self,
        db: &Database,
        ci: usize,
        ai: usize,
        f: FactId,
    ) -> (ConstId, Option<usize>) {
        let comp = &self.components[ci];
        let root = comp.root.expect("rooted component");
        let value = comp.atoms[ai].value_of(root, db.fact(f).tuple.values());
        let CompKind::Rooted { groups, .. } = &comp.kind else {
            unreachable!("rooted component");
        };
        (value, groups.iter().position(|g| g.value == value))
    }

    fn apply_insert(&mut self, db: &Database, f: FactId) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact: only m / free_endo move
        };
        let endo = db.endo_index(f).is_some();
        if self.components[ci].root.is_none() {
            self.components[ci].scopes[ai].push(f);
            if endo {
                self.locs.insert(f, Loc::Ground { comp: ci });
            }
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (value, slot) = self.rooted_slot(db, ci, ai, f);
        match slot {
            Some(gi) => {
                let comp = &mut self.components[ci];
                comp.scopes[ai].push(f);
                let CompKind::Rooted { groups, .. } = &mut comp.kind else {
                    unreachable!("rooted component");
                };
                groups[gi].scopes[ai].push(f);
                if endo {
                    self.locs.insert(
                        f,
                        Loc::Grouped {
                            comp: ci,
                            group: gi,
                        },
                    );
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                // `f` itself supports its (positive) atom; if every
                // other positive atom already has a fact with this root
                // value, a brand-new root group forms — recompile.
                let comp = &self.components[ci];
                let root = comp.root.expect("rooted component");
                let supported =
                    comp.atoms
                        .iter()
                        .zip(&comp.scopes)
                        .enumerate()
                        .all(|(i, (atom, scope))| {
                            atom.negated
                                || i == ai
                                || scope.iter().any(|&x| {
                                    atom.value_of(root, db.fact(x).tuple.values()) == value
                                })
                        });
                if supported && !self.components[ci].atoms[ai].negated {
                    return Ok(false);
                }
                self.components[ci].scopes[ai].push(f);
                if endo {
                    self.locs.insert(f, Loc::Junk { comp: ci });
                    Ok(self.shift_junk(ci, true))
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn apply_retract(&mut self, db: &Database, f: FactId) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact
        };
        let was_endo = self.locs.remove(&f).is_some();
        if self.components[ci].root.is_none() {
            self.components[ci].scopes[ai].retain(|&x| x != f);
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (_, slot) = self.rooted_slot(db, ci, ai, f);
        self.components[ci].scopes[ai].retain(|&x| x != f);
        match slot {
            Some(gi) => {
                let dies = {
                    let CompKind::Rooted { groups, .. } = &mut self.components[ci].kind else {
                        unreachable!("rooted component");
                    };
                    let g = &mut groups[gi];
                    g.scopes[ai].retain(|&x| x != f);
                    !g.atoms[ai].negated && g.scopes[ai].is_empty()
                };
                if dies {
                    return Ok(false); // the root group lost its support
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                if was_endo {
                    Ok(self.shift_junk(ci, false))
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn apply_flip(&mut self, db: &Database, f: FactId, endo_now: bool) -> Result<bool, CoreError> {
        let Placement::Component { comp: ci, atom: ai } = self.place(db, f) else {
            return Ok(true); // free fact
        };
        if self.components[ci].root.is_none() {
            if endo_now {
                self.locs.insert(f, Loc::Ground { comp: ci });
            } else {
                self.locs.remove(&f);
            }
            self.recount_ground(db, ci)?;
            return Ok(true);
        }
        let (_, slot) = self.rooted_slot(db, ci, ai, f);
        match slot {
            Some(gi) => {
                if endo_now {
                    self.locs.insert(
                        f,
                        Loc::Grouped {
                            comp: ci,
                            group: gi,
                        },
                    );
                } else {
                    self.locs.remove(&f);
                }
                self.recount_group(db, ci, gi)
            }
            None => {
                if endo_now {
                    self.locs.insert(f, Loc::Junk { comp: ci });
                } else {
                    self.locs.remove(&f);
                }
                Ok(self.shift_junk(ci, endo_now))
            }
        }
    }

    /// `|Dn|` of the compiled database.
    pub fn endo_count(&self) -> usize {
        self.m
    }

    /// The compiled query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// `[|Sat(D,q,k)|]_{k=0..m}` for the unmodified database — what
    /// [`crate::satcount::count_sat_hierarchical`] computes.
    pub fn total_counts(&self) -> &[BigUint] {
        &self.total
    }

    /// Is `f`'s Shapley value known to be zero without any recounting?
    /// (True for facts outside every atom scope and for junk facts.)
    pub fn is_structurally_null(&self, f: FactId) -> bool {
        !self.satisfiable || matches!(self.locs.get(&f), None | Some(Loc::Junk { .. }))
    }

    /// An opaque bucket id grouping facts that share recount state: all
    /// structurally-null facts map to bucket 0, and every root group
    /// (resp. ground component) gets its own bucket. Chunking a report's
    /// fan-out by bucket keeps each group's work on one thread.
    pub fn bucket_of(&self, f: FactId) -> usize {
        if !self.satisfiable {
            return 0;
        }
        match self.locs.get(&f) {
            None | Some(Loc::Junk { .. }) => 0,
            Some(&Loc::Ground { comp }) => 1 + comp,
            Some(&Loc::Grouped { comp, group }) => self.group_bucket_base[comp] + group,
        }
    }

    /// Total number of bucket ids (all in `0..buckets()`).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The exact Shapley value of `f`.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn value(&self, db: &Database, f: FactId) -> Result<BigRational, CoreError> {
        let num = self.shapley_numerator(db, f)?;
        Ok(self.normalize_numerator(num))
    }

    /// The Shapley numerator of `f` over the common denominator `m!`:
    /// `value(f) = shapley_numerator(f) / m!`. Report paths accumulate
    /// these with plain integer additions (totals, inclusion–exclusion
    /// sums) and normalize once instead of reducing per operation.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn shapley_numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError> {
        self.check_endogenous(db, f)?;
        if self.is_structurally_null(f) {
            return Ok(BigInt::zero());
        }
        let (weight, (sat_minus, sat_plus)) = match *self.locs.get(&f).expect("checked non-null") {
            Loc::Ground { comp } => {
                let c = &self.components[comp];
                (&c.weight, self.masked_sat_pair(db, &c.atoms, &c.scopes, f)?)
            }
            Loc::Grouped { comp, group } => {
                let CompKind::Rooted { groups, .. } = &self.components[comp].kind else {
                    unreachable!("grouped loc points at a rooted component");
                };
                let g = &groups[group];
                (&g.weight, self.cached_group_pair(db, g, f)?)
            }
            Loc::Junk { .. } => unreachable!("junk is structurally null"),
        };
        debug_assert_eq!(sat_minus.len(), sat_plus.len());
        debug_assert_eq!(weight.len(), sat_plus.len());
        let mut num = BigInt::zero();
        for ((p, mi), wj) in sat_plus.iter().zip(&sat_minus).zip(weight) {
            let d = BigInt::signed_diff(p, mi);
            if !d.is_zero() {
                num += &(d * BigInt::from_biguint(wj.clone()));
            }
        }
        Ok(num)
    }

    /// `num / m!` in lowest terms, memoized per distinct numerator
    /// (facts of isomorphic root groups share theirs).
    pub fn normalize_numerator(&self, num: BigInt) -> BigRational {
        if let Some(v) = self.reduce_cache.lock().expect("cache lock").get(&num) {
            return v.clone();
        }
        let reduced = self.table.reduce_over_factorial(num.clone(), self.m);
        self.reduce_cache
            .lock()
            .expect("cache lock")
            .insert(num, reduced.clone());
        reduced
    }

    /// The `(N_k, N⁺_k)` count vectors of the reduction for `f` — the
    /// counts of `D ∖ {f}` and of `D` with `f` exogenized, each of
    /// length `m`. Equals what the per-fact oracles compute on the
    /// materialized modified databases; used for cross-checking.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn counts_pair(
        &self,
        db: &Database,
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        self.check_endogenous(db, f)?;
        if !self.satisfiable {
            let zeros = vec![BigUint::zero(); self.m];
            return Ok((zeros.clone(), zeros));
        }
        match self.locs.get(&f) {
            None => {
                let v = convolve(&self.all_sat, &self.binoms.row(self.free_endo - 1));
                Ok((v.clone(), v))
            }
            Some(&Loc::Junk { comp }) => {
                let c = &self.components[comp];
                let CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    ..
                } = &c.kind
                else {
                    unreachable!("junk loc points at a rooted component");
                };
                let comp_unsat = convolve(unsat_all, &self.binoms.row(junk_endo - 1));
                let comp_sat = complement_counts(&comp_unsat, c.endo - 1);
                let v = convolve(&c.env, &comp_sat);
                Ok((v.clone(), v))
            }
            Some(&Loc::Ground { comp }) => {
                let c = &self.components[comp];
                let (sat_minus, sat_plus) = self.masked_sat_pair(db, &c.atoms, &c.scopes, f)?;
                Ok((convolve(&c.env, &sat_minus), convolve(&c.env, &sat_plus)))
            }
            Some(&Loc::Grouped { comp, group }) => {
                let c = &self.components[comp];
                let CompKind::Rooted { groups, .. } = &c.kind else {
                    unreachable!();
                };
                let g = &groups[group];
                let (sat_minus, sat_plus) = self.masked_sat_pair(db, &g.atoms, &g.scopes, f)?;
                let pair = [sat_minus, sat_plus].map(|sat| {
                    let unsat = complement_counts(&sat, g.endo - 1);
                    let comp_unsat = convolve(&g.genv, &unsat);
                    let comp_sat = complement_counts(&comp_unsat, c.endo - 1);
                    convolve(&c.env, &comp_sat)
                });
                let [n_minus, n_plus] = pair;
                Ok((n_minus, n_plus))
            }
        }
    }

    /// [`CompiledCount::masked_sat_pair`] for a grouped fact, memoized
    /// by `(group isomorphism class, role of f)`: uniform workloads
    /// recount one representative per class instead of every fact.
    fn cached_group_pair(
        &self,
        db: &Database,
        g: &RootGroup,
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        let role = g
            .scopes
            .iter()
            .enumerate()
            .find_map(|(ai, scope)| scope.iter().position(|&x| x == f).map(|pos| (ai, pos)))
            .expect("grouped fact sits in one scope");
        let key = (g.canon.clone(), role.0, role.1);
        if let Some(pair) = self.pair_cache.lock().expect("cache lock").get(&key) {
            return Ok(pair.clone());
        }
        let pair = self.masked_sat_pair(db, &g.atoms, &g.scopes, f)?;
        self.pair_cache
            .lock()
            .expect("cache lock")
            .insert(key, pair.clone());
        Ok(pair)
    }

    /// Runs the group/component recursion under the two per-fact masks:
    /// returns `(sat with f removed, sat with f exogenized)`, both of
    /// length `endo` (the group's endogenous count drops by one).
    fn masked_sat_pair(
        &self,
        db: &Database,
        atoms: &[PAtom],
        scopes: &[Vec<FactId>],
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        let removed: Vec<Vec<FactId>> = scopes
            .iter()
            .map(|s| s.iter().copied().filter(|&x| x != f).collect())
            .collect();
        let sat_minus = rec(MaskedDb::new(db, FactMask::Removed(f)), atoms, &removed)?;
        let sat_plus = rec(MaskedDb::new(db, FactMask::Exogenous(f)), atoms, scopes)?;
        Ok((sat_minus, sat_plus))
    }

    fn check_endogenous(&self, db: &Database, f: FactId) -> Result<(), CoreError> {
        if db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: db.render_fact(f),
            });
        }
        Ok(())
    }
}

/// The weight correlation `out[j] = Σ_t weights[j+t] · env[t]` for
/// `j = 0..out_len`. Contracting a difference vector against `out` is
/// the same as convolving it with `env` first and weighting afterwards.
fn correlate(weights: &[BigUint], env: &[BigUint], out_len: usize) -> Vec<BigUint> {
    (0..out_len)
        .map(|j| {
            let mut acc = BigUint::zero();
            for (t, e) in env.iter().enumerate() {
                if !e.is_zero() {
                    acc += &(&weights[j + t] * e);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anyquery::AnyQuery;
    use crate::satcount::{count_sat_hierarchical, HierarchicalCounter, SatCountOracle};
    use crate::shapley::shapley_via_counts;
    use cqshap_db::Provenance;
    use cqshap_query::parse_cq;

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    /// Batched values and count pairs must be bit-identical to the
    /// per-fact oracle on the materialized modified databases.
    fn agrees_with_per_fact(db: &Database, q: &ConjunctiveQuery) {
        let compiled = CompiledCount::compile(db, q).unwrap();
        assert_eq!(
            compiled.total_counts(),
            &count_sat_hierarchical(db, q).unwrap()[..],
            "total counts for {q}"
        );
        let oracle = HierarchicalCounter;
        for &f in db.endo_facts() {
            let want = shapley_via_counts(db, AnyQuery::Cq(q), f, &oracle).unwrap();
            let got = compiled.value(db, f).unwrap();
            assert_eq!(got, want, "{} for {q} on\n{db}", db.render_fact(f));
            let (n_minus, n_plus) = compiled.counts_pair(db, f).unwrap();
            let want_minus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Removed(f))
                .unwrap();
            let want_plus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Exogenous(f))
                .unwrap();
            assert_eq!(n_minus, want_minus, "{} N_k", db.render_fact(f));
            assert_eq!(n_plus, want_plus, "{} N⁺_k", db.render_fact(f));
        }
    }

    /// A maintained engine must agree (bit-identically) with a fresh
    /// compile of the updated database, falling back when told to.
    fn assert_update_matches_fresh(
        db: &Database,
        compiled: &mut CompiledCount,
        q: &ConjunctiveQuery,
        change: EngineUpdate,
    ) {
        if !compiled.update(db, change).unwrap() {
            *compiled = CompiledCount::compile(db, q).unwrap();
        }
        let fresh = CompiledCount::compile(db, q).unwrap();
        assert_eq!(
            compiled.total_counts(),
            fresh.total_counts(),
            "totals after {change:?} for {q}"
        );
        for &f in db.endo_facts() {
            assert_eq!(
                compiled.value(db, f).unwrap(),
                fresh.value(db, f).unwrap(),
                "{} after {change:?} for {q}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn example_2_3_batched() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let expect = [
            ("TA", vec!["Adam"], "-3/28"),
            ("TA", vec!["Ben"], "-2/35"),
            ("TA", vec!["David"], "0"),
            ("Reg", vec!["Adam", "OS"], "37/210"),
            ("Reg", vec!["Adam", "AI"], "37/210"),
            ("Reg", vec!["Ben", "OS"], "27/140"),
            ("Reg", vec!["Caroline", "DB"], "13/42"),
            ("Reg", vec!["Caroline", "IC"], "13/42"),
        ];
        for (rel, args, want) in expect {
            let refs: Vec<&str> = args.to_vec();
            let f = db.find_fact(rel, &refs).unwrap();
            assert_eq!(compiled.value(&db, f).unwrap().to_string(), want);
        }
    }

    #[test]
    fn agrees_across_query_shapes() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn structural_nulls() {
        let db = university();
        // TA(David) never joins a Reg fact: junk (no positive support
        // for root value David in Reg) — exactly zero, no recount.
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let david = db.find_fact("TA", &["David"]).unwrap();
        assert!(compiled.is_structurally_null(david));
        assert_eq!(compiled.bucket_of(david), 0);
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        assert!(!compiled.is_structurally_null(adam));
        // Facts outside every scope are free.
        let q_ta = parse_cq("q() :- TA(x)").unwrap();
        let c2 = CompiledCount::compile(&db, &q_ta).unwrap();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        assert!(c2.is_structurally_null(reg));
        assert_eq!(c2.value(&db, reg).unwrap(), BigRational::zero());
    }

    #[test]
    fn buckets_partition_by_group() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        // Same student → same root group → same bucket.
        let f1 = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        let f2 = db.find_fact("Reg", &["Adam", "AI"]).unwrap();
        let f3 = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f2));
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f3));
        let g1 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert_ne!(compiled.bucket_of(f1), compiled.bucket_of(g1));
        assert!(compiled.bucket_of(g1) < compiled.buckets());
    }

    #[test]
    fn non_endogenous_fact_rejected() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            compiled.value(&db, stud),
            Err(CoreError::FactNotEndogenous { .. })
        ));
    }

    #[test]
    fn rejects_non_hierarchical() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y), Course(y, z)").unwrap();
        assert!(matches!(
            CompiledCount::compile(&db, &q),
            Err(CoreError::NotHierarchical { .. })
        ));
    }

    #[test]
    fn repeated_variable_patterns_batched() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        db.add_endo("E", &["b", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        for text in ["q() :- E(x, x)", "q() :- R(x), !E(x, x)"] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn explicit_thread_caps_change_nothing() {
        // The worker cap steers the parallel trees only — results are
        // bit-identical across caps.
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let reference = CompiledCount::compile(&db, &q1).unwrap();
        for threads in [1usize, 2, 4] {
            let capped = CompiledCount::compile_with_threads(&db, &q1, threads).unwrap();
            assert_eq!(capped.total_counts(), reference.total_counts());
            for &f in db.endo_facts() {
                assert_eq!(
                    capped.value(&db, f).unwrap(),
                    reference.value(&db, f).unwrap(),
                    "{} with {threads} threads",
                    db.render_fact(f)
                );
            }
        }
    }

    #[test]
    fn incremental_updates_match_fresh_compiles() {
        let mut db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q1).unwrap();

        // Insert into an existing root group.
        let f = db.add_endo("Reg", &["Adam", "DB"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(f));
        // Exogenize a grouped fact.
        let ben = db.find_fact("TA", &["Ben"]).unwrap();
        db.set_fact_provenance(ben, Provenance::Exogenous).unwrap();
        assert_update_matches_fresh(
            &db,
            &mut compiled,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        // Flip it back.
        db.set_fact_provenance(ben, Provenance::Endogenous).unwrap();
        assert_update_matches_fresh(
            &db,
            &mut compiled,
            &q1,
            EngineUpdate::ProvenanceFlipped(ben),
        );
        // Retract a grouped fact (group keeps support through Reg(Adam, OS/AI)).
        db.retract_fact(f).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Retracted(f));
        // Insert a free fact (outside every scope).
        let free = db.add_endo("Unrelated", &["z"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(free));
        // Insert a junk fact (root value without Reg support).
        let junk = db.add_endo("TA", &["Nadia"]).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Inserted(junk));
        // Retract the junk fact again.
        db.retract_fact(junk).unwrap();
        assert_update_matches_fresh(&db, &mut compiled, &q1, EngineUpdate::Retracted(junk));
    }

    #[test]
    fn structural_updates_request_recompile() {
        let mut db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q1).unwrap();
        // A new student with both Stud and Reg support forms a brand-new
        // root group → incremental maintenance must decline.
        db.add_exo("Stud", &["Eve"]).unwrap();
        let eve_stud = db.find_fact("Stud", &["Eve"]).unwrap();
        assert!(compiled
            .update(&db, EngineUpdate::Inserted(eve_stud))
            .unwrap());
        let f = db.add_endo("Reg", &["Eve", "OS"]).unwrap();
        assert!(!compiled.update(&db, EngineUpdate::Inserted(f)).unwrap());
        compiled = CompiledCount::compile(&db, &q1).unwrap();
        // Retracting the only Reg fact of a group kills the group.
        let ben_os = db.find_fact("Reg", &["Ben", "OS"]).unwrap();
        db.retract_fact(ben_os).unwrap();
        assert!(!compiled
            .update(&db, EngineUpdate::Retracted(ben_os))
            .unwrap());
        // A fact over a relation unknown at compile time changes atom
        // resolution (the fingerprint catches it).
        let mut db2 = Database::parse("endo R(a)\n").unwrap();
        let q2 = parse_cq("q() :- R(x), !Ghost(x)").unwrap();
        let mut c2 = CompiledCount::compile(&db2, &q2).unwrap();
        let g = db2.add_exo("Ghost", &["a"]).unwrap();
        assert!(!c2.update(&db2, EngineUpdate::Inserted(g)).unwrap());
    }

    #[test]
    fn unsatisfiable_engine_tracks_m_across_updates() {
        let mut db = Database::parse("endo R(a)\n").unwrap();
        let q = parse_cq("q() :- Ghost(x), R(y)").unwrap();
        let mut compiled = CompiledCount::compile(&db, &q).unwrap();
        let f = db.add_endo("R", &["b"]).unwrap();
        assert!(compiled.update(&db, EngineUpdate::Inserted(f)).unwrap());
        let fresh = CompiledCount::compile(&db, &q).unwrap();
        assert_eq!(compiled.total_counts(), fresh.total_counts());
        assert_eq!(
            compiled.value(&db, f).unwrap(),
            fresh.value(&db, f).unwrap()
        );
    }

    #[test]
    fn update_sequences_on_varied_queries() {
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
        ] {
            let q = parse_cq(text).unwrap();
            let mut db = university();
            let mut compiled = CompiledCount::compile(&db, &q).unwrap();
            let adam_os = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
            db.set_fact_provenance(adam_os, Provenance::Exogenous)
                .unwrap();
            assert_update_matches_fresh(
                &db,
                &mut compiled,
                &q,
                EngineUpdate::ProvenanceFlipped(adam_os),
            );
            let ic = db.find_fact("Reg", &["Caroline", "IC"]).unwrap();
            db.retract_fact(ic).unwrap();
            assert_update_matches_fresh(&db, &mut compiled, &q, EngineUpdate::Retracted(ic));
            let back = db.add_endo("Reg", &["Caroline", "IC"]).unwrap();
            assert_update_matches_fresh(&db, &mut compiled, &q, EngineUpdate::Inserted(back));
            db.set_fact_provenance(adam_os, Provenance::Endogenous)
                .unwrap();
            assert_update_matches_fresh(
                &db,
                &mut compiled,
                &q,
                EngineUpdate::ProvenanceFlipped(adam_os),
            );
        }
    }
}
