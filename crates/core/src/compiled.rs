//! The batched all-facts Shapley engine: compile-once `CntSat` with
//! incremental per-fact recounting.
//!
//! [`crate::shapley::shapley_via_counts`] answers one fact by running
//! the full hierarchical DP twice; an all-facts report over `m`
//! endogenous facts therefore repeats atom resolution, relation
//! scoping, and the convolution of every *unchanged* root group `2m`
//! times. [`CompiledCount`] does that shared work **once per
//! `(db, query)`** and then answers each fact from the pieces that
//! actually change:
//!
//! 1. **Compile** — resolve the query's atoms, build per-relation
//!    scopes, split into connected components, and group each
//!    component's facts by their root value (the structure of Lemma
//!    3.2's recursion, materialized).
//! 2. **Cache** — every component's satisfying-count polynomial and
//!    every root group's unsatisfying-count polynomial, plus
//!    *leave-one-out environments* (prefix/suffix convolutions of all
//!    the other groups' polynomials, combined divide-and-conquer) and
//!    their correlations with the Shapley weight numerators
//!    `k!·(m−1−k)!`.
//! 3. **Recount** — for fact `f`, recompute only `f`'s root group under
//!    the two [`FactMask`] views (`f` removed, `f` exogenized; no
//!    database clones), and contract the short difference vector
//!    against the cached weight environment. Facts outside every scope
//!    ("free") and facts whose root value lacks positive support
//!    ("junk") are answered as exact zeros without any recounting.
//!
//! The per-fact cost drops from `O(m)` full-database DP work (plus two
//! database clones) to amortized `O(|group|)` — the recount touches one
//! root group and a dot product of its length.
//!
//! The resulting values are *bit-identical* to the per-fact oracle: the
//! weighted sums are accumulated as exact integers over the common
//! denominator `m!` and normalized once.

use std::collections::HashMap;

use cqshap_db::{Database, FactId, FactMask};
use cqshap_numeric::{BigInt, BigRational, BigUint, FactorialTable};
use cqshap_query::ConjunctiveQuery;

use crate::error::CoreError;
use crate::parallel::par_map;
use crate::satcount::{
    binom_vec, complement_counts, connected_components, convolve, find_root_var, rec,
    resolve_query, root_candidates, root_group_scopes, scope_endo_count, MaskedDb, PAtom,
    ResolvedQuery,
};

/// Where an endogenous fact lives in the compiled structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In a ground (variable-free) component.
    Ground { comp: usize },
    /// In the root group `group` of component `comp`.
    Grouped { comp: usize, group: usize },
    /// In component `comp`'s scopes, but with a root value that lacks
    /// full positive support: a free "junk" choice, value exactly zero.
    Junk { comp: usize },
}

/// One root-value group of a connected component: the sub-query with
/// the root substituted, its fact scopes, and its cached polynomials.
struct RootGroup {
    /// Endogenous facts in the group.
    endo: usize,
    /// The component's atoms with the root variable substituted.
    atoms: Vec<PAtom>,
    /// Per-atom scopes restricted to this root value.
    scopes: Vec<Vec<FactId>>,
    /// Unsatisfying counts `[C(endo,j) − sat_j]` on the unmodified db.
    unsat: Vec<BigUint>,
    /// `W2[j] = Σ_t W_comp[j+t] · genv[t]` where `genv` is the product
    /// of all *other* groups' `unsat` polynomials and the junk
    /// binomial. Contracting the group's masked difference vector with
    /// `W2` yields the Shapley numerator directly.
    weight: Vec<BigUint>,
}

/// The shape of one connected component.
enum CompKind {
    /// Entirely ground: recounted wholesale (a single binomial).
    Ground {
        atoms: Vec<PAtom>,
        scopes: Vec<Vec<FactId>>,
    },
    /// Connected with a root variable: one [`RootGroup`] per root value
    /// with full positive support.
    Rooted {
        junk_endo: usize,
        /// `⊛_g unsat_g` — shared by all junk-fact count queries.
        unsat_all: Vec<BigUint>,
        groups: Vec<RootGroup>,
    },
}

/// A connected component of the query with its cached polynomials.
struct Component {
    /// Endogenous facts in the component's scopes.
    endo: usize,
    /// Satisfying counts on the unmodified database (length `endo+1`).
    sat: Vec<BigUint>,
    /// `⊛_{j≠i} sat_j ⊛ binom(free)` — everything outside the component.
    env: Vec<BigUint>,
    /// `W[j] = Σ_t w[j+t] · env[t]` with `w[k] = k!(m−1−k)!`.
    weight: Vec<BigUint>,
    kind: CompKind,
}

/// A `(db, query)` pair compiled for batched all-facts Shapley
/// computation. Shared immutably across report worker threads.
pub struct CompiledCount<'a> {
    db: &'a Database,
    m: usize,
    table: FactorialTable,
    /// `false` iff some positive atom can never match: all counts zero.
    satisfiable: bool,
    /// `[|Sat(D,q,k)|]` for the unmodified database (length `m+1`).
    total: Vec<BigUint>,
    /// Endogenous facts outside every atom scope.
    free_endo: usize,
    /// `⊛_i sat_i` over all components (without the free binomial).
    all_sat: Vec<BigUint>,
    components: Vec<Component>,
    locs: HashMap<FactId, Loc>,
    /// Per-component offset of its groups' bucket ids (see
    /// [`CompiledCount::bucket_of`]).
    group_bucket_base: Vec<usize>,
    buckets: usize,
}

impl<'a> CompiledCount<'a> {
    /// Compiles `q` against `db`.
    ///
    /// # Errors
    /// The same structural errors as
    /// [`crate::satcount::count_sat_hierarchical`]:
    /// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`].
    pub fn compile(db: &'a Database, q: &ConjunctiveQuery) -> Result<Self, CoreError> {
        let m = db.endo_count();
        let table = FactorialTable::new(m);
        let view = MaskedDb::new(db, FactMask::None);
        let (atoms, scopes) = match resolve_query(db, q)? {
            ResolvedQuery::Unsatisfiable => {
                return Ok(CompiledCount {
                    db,
                    m,
                    table,
                    satisfiable: false,
                    total: vec![BigUint::zero(); m + 1],
                    free_endo: m,
                    all_sat: vec![BigUint::one()],
                    components: Vec::new(),
                    locs: HashMap::new(),
                    group_bucket_base: Vec::new(),
                    buckets: 1,
                });
            }
            ResolvedQuery::Atoms { atoms, scopes } => (atoms, scopes),
        };

        // The Shapley weight numerators w[k] = k!·(m−1−k)!.
        let w: Vec<BigUint> = (0..m)
            .map(|k| table.shapley_weight_numerator(m, k))
            .collect();

        let mut components: Vec<Component> = Vec::new();
        let mut locs: HashMap<FactId, Loc> = HashMap::new();
        for idxs in connected_components(&atoms) {
            let ci = components.len();
            let sub_atoms: Vec<PAtom> = idxs.iter().map(|&i| atoms[i].clone()).collect();
            let sub_scopes: Vec<Vec<FactId>> = idxs.iter().map(|&i| scopes[i].clone()).collect();
            let endo = scope_endo_count(view, &sub_scopes);
            if sub_atoms.iter().all(|a| !a.has_vars()) {
                let sat = rec(view, &sub_atoms, &sub_scopes)?;
                for &f in sub_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(f, Loc::Ground { comp: ci });
                    }
                }
                components.push(Component {
                    endo,
                    sat,
                    env: Vec::new(),
                    weight: Vec::new(),
                    kind: CompKind::Ground {
                        atoms: sub_atoms,
                        scopes: sub_scopes,
                    },
                });
                continue;
            }
            let root = find_root_var(&sub_atoms).ok_or_else(|| {
                CoreError::Unsupported(
                    "no root variable in a connected sub-query: the query is not hierarchical"
                        .into(),
                )
            })?;
            let candidates = root_candidates(view, root, &sub_atoms, &sub_scopes)?;
            let mut groups: Vec<RootGroup> = Vec::new();
            let mut grouped_endo = 0usize;
            for &c in &candidates {
                let g_atoms: Vec<PAtom> = sub_atoms.iter().map(|a| a.substitute(root, c)).collect();
                let g_scopes = root_group_scopes(view, root, c, &sub_atoms, &sub_scopes);
                let g_endo = scope_endo_count(view, &g_scopes);
                let sat_c = rec(view, &g_atoms, &g_scopes)?;
                for &f in g_scopes.iter().flatten() {
                    if view.is_endo(f) {
                        locs.insert(
                            f,
                            Loc::Grouped {
                                comp: ci,
                                group: groups.len(),
                            },
                        );
                    }
                }
                grouped_endo += g_endo;
                groups.push(RootGroup {
                    endo: g_endo,
                    atoms: g_atoms,
                    scopes: g_scopes,
                    unsat: complement_counts(&sat_c, g_endo),
                    weight: Vec::new(),
                });
            }
            let junk_endo = endo - grouped_endo;
            for &f in sub_scopes.iter().flatten() {
                if view.is_endo(f) {
                    locs.entry(f).or_insert(Loc::Junk { comp: ci });
                }
            }
            let unsat_refs: Vec<&[BigUint]> = groups.iter().map(|g| g.unsat.as_slice()).collect();
            let unsat_all = product(&unsat_refs);
            let comp_unsat = convolve(&unsat_all, &binom_vec(junk_endo));
            let sat = complement_counts(&comp_unsat, endo);
            components.push(Component {
                endo,
                sat,
                env: Vec::new(),
                weight: Vec::new(),
                kind: CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    groups,
                },
            });
        }

        let free_endo = m - components.iter().map(|c| c.endo).sum::<usize>();
        let sats: Vec<&[BigUint]> = components.iter().map(|c| c.sat.as_slice()).collect();
        let all_sat = product(&sats);
        let total = convolve(&all_sat, &binom_vec(free_endo));
        debug_assert_eq!(total.len(), m + 1);

        // Leave-one-out environments and their weight correlations.
        let envs = leave_one_out(&sats, binom_vec(free_endo));
        let comp_endos: Vec<usize> = components.iter().map(|c| c.endo).collect();
        let comp_weights = par_map(components.len(), |i| correlate(&w, &envs[i], comp_endos[i]));
        for ((comp, env), weight) in components.iter_mut().zip(envs).zip(comp_weights) {
            comp.env = env;
            comp.weight = weight;
        }
        for comp in &mut components {
            if let CompKind::Rooted {
                junk_endo, groups, ..
            } = &mut comp.kind
            {
                let unsat_refs: Vec<&[BigUint]> =
                    groups.iter().map(|g| g.unsat.as_slice()).collect();
                let genv = leave_one_out(&unsat_refs, binom_vec(*junk_endo));
                let group_endos: Vec<usize> = groups.iter().map(|g| g.endo).collect();
                let weights = par_map(groups.len(), |g| {
                    correlate(&comp.weight, &genv[g], group_endos[g])
                });
                for (group, weight) in groups.iter_mut().zip(weights) {
                    group.weight = weight;
                }
            }
        }

        // Bucket layout: 0 = all zero-valued facts (free + junk), then
        // one bucket per ground component, then one per root group.
        let mut group_bucket_base = Vec::with_capacity(components.len());
        let mut next = 1 + components.len();
        for comp in &components {
            group_bucket_base.push(next);
            if let CompKind::Rooted { groups, .. } = &comp.kind {
                next += groups.len();
            }
        }

        Ok(CompiledCount {
            db,
            m,
            table,
            satisfiable: true,
            total,
            free_endo,
            all_sat,
            components,
            locs,
            group_bucket_base,
            buckets: next,
        })
    }

    /// `|Dn|` of the compiled database.
    pub fn endo_count(&self) -> usize {
        self.m
    }

    /// `[|Sat(D,q,k)|]_{k=0..m}` for the unmodified database — what
    /// [`crate::satcount::count_sat_hierarchical`] computes.
    pub fn total_counts(&self) -> &[BigUint] {
        &self.total
    }

    /// Is `f`'s Shapley value known to be zero without any recounting?
    /// (True for facts outside every atom scope and for junk facts.)
    pub fn is_structurally_null(&self, f: FactId) -> bool {
        !self.satisfiable || matches!(self.locs.get(&f), None | Some(Loc::Junk { .. }))
    }

    /// An opaque bucket id grouping facts that share recount state: all
    /// structurally-null facts map to bucket 0, and every root group
    /// (resp. ground component) gets its own bucket. Chunking a report's
    /// fan-out by bucket keeps each group's work on one thread.
    pub fn bucket_of(&self, f: FactId) -> usize {
        if !self.satisfiable {
            return 0;
        }
        match self.locs.get(&f) {
            None | Some(Loc::Junk { .. }) => 0,
            Some(&Loc::Ground { comp }) => 1 + comp,
            Some(&Loc::Grouped { comp, group }) => self.group_bucket_base[comp] + group,
        }
    }

    /// Total number of bucket ids (all in `0..buckets()`).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The exact Shapley value of `f`.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn value(&self, f: FactId) -> Result<BigRational, CoreError> {
        self.check_endogenous(f)?;
        if self.is_structurally_null(f) {
            return Ok(BigRational::zero());
        }
        let (weight, (sat_minus, sat_plus)) = match *self.locs.get(&f).expect("checked non-null") {
            Loc::Ground { comp } => {
                let c = &self.components[comp];
                let CompKind::Ground { atoms, scopes } = &c.kind else {
                    unreachable!("ground loc points at a ground component");
                };
                (&c.weight, self.masked_sat_pair(atoms, scopes, f)?)
            }
            Loc::Grouped { comp, group } => {
                let CompKind::Rooted { groups, .. } = &self.components[comp].kind else {
                    unreachable!("grouped loc points at a rooted component");
                };
                let g = &groups[group];
                (&g.weight, self.masked_sat_pair(&g.atoms, &g.scopes, f)?)
            }
            Loc::Junk { .. } => unreachable!("junk is structurally null"),
        };
        debug_assert_eq!(sat_minus.len(), sat_plus.len());
        debug_assert_eq!(weight.len(), sat_plus.len());
        let mut num = BigInt::zero();
        for ((p, mi), wj) in sat_plus.iter().zip(&sat_minus).zip(weight) {
            let d = BigInt::signed_diff(p, mi);
            if !d.is_zero() {
                num += &(d * BigInt::from_biguint(wj.clone()));
            }
        }
        Ok(BigRational::from_parts(
            num,
            self.table.factorial(self.m).clone(),
        ))
    }

    /// The `(N_k, N⁺_k)` count vectors of the reduction for `f` — the
    /// counts of `D ∖ {f}` and of `D` with `f` exogenized, each of
    /// length `m`. Equals what the per-fact oracles compute on the
    /// materialized modified databases; used for cross-checking.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
    pub fn counts_pair(&self, f: FactId) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        self.check_endogenous(f)?;
        if !self.satisfiable {
            let zeros = vec![BigUint::zero(); self.m];
            return Ok((zeros.clone(), zeros));
        }
        match self.locs.get(&f) {
            None => {
                let v = convolve(&self.all_sat, &binom_vec(self.free_endo - 1));
                Ok((v.clone(), v))
            }
            Some(&Loc::Junk { comp }) => {
                let c = &self.components[comp];
                let CompKind::Rooted {
                    junk_endo,
                    unsat_all,
                    ..
                } = &c.kind
                else {
                    unreachable!("junk loc points at a rooted component");
                };
                let comp_unsat = convolve(unsat_all, &binom_vec(junk_endo - 1));
                let comp_sat = complement_counts(&comp_unsat, c.endo - 1);
                let v = convolve(&c.env, &comp_sat);
                Ok((v.clone(), v))
            }
            Some(&Loc::Ground { comp }) => {
                let c = &self.components[comp];
                let CompKind::Ground { atoms, scopes } = &c.kind else {
                    unreachable!();
                };
                let (sat_minus, sat_plus) = self.masked_sat_pair(atoms, scopes, f)?;
                Ok((convolve(&c.env, &sat_minus), convolve(&c.env, &sat_plus)))
            }
            Some(&Loc::Grouped { comp, group }) => {
                let c = &self.components[comp];
                let CompKind::Rooted {
                    junk_endo, groups, ..
                } = &c.kind
                else {
                    unreachable!();
                };
                let g = &groups[group];
                let (sat_minus, sat_plus) = self.masked_sat_pair(&g.atoms, &g.scopes, f)?;
                // Recompute this group's leave-one-out environment (the
                // cheap product form — this path is for cross-checks).
                let mut genv = binom_vec(*junk_endo);
                for (h, other) in groups.iter().enumerate() {
                    if h != group {
                        genv = convolve(&genv, &other.unsat);
                    }
                }
                let pair = [sat_minus, sat_plus].map(|sat| {
                    let unsat = complement_counts(&sat, g.endo - 1);
                    let comp_unsat = convolve(&genv, &unsat);
                    let comp_sat = complement_counts(&comp_unsat, c.endo - 1);
                    convolve(&c.env, &comp_sat)
                });
                let [n_minus, n_plus] = pair;
                Ok((n_minus, n_plus))
            }
        }
    }

    /// Runs the group/component recursion under the two per-fact masks:
    /// returns `(sat with f removed, sat with f exogenized)`, both of
    /// length `endo` (the group's endogenous count drops by one).
    fn masked_sat_pair(
        &self,
        atoms: &[PAtom],
        scopes: &[Vec<FactId>],
        f: FactId,
    ) -> Result<(Vec<BigUint>, Vec<BigUint>), CoreError> {
        let removed: Vec<Vec<FactId>> = scopes
            .iter()
            .map(|s| s.iter().copied().filter(|&x| x != f).collect())
            .collect();
        let sat_minus = rec(
            MaskedDb::new(self.db, FactMask::Removed(f)),
            atoms,
            &removed,
        )?;
        let sat_plus = rec(
            MaskedDb::new(self.db, FactMask::Exogenous(f)),
            atoms,
            scopes,
        )?;
        Ok((sat_minus, sat_plus))
    }

    fn check_endogenous(&self, f: FactId) -> Result<(), CoreError> {
        if self.db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: self.db.render_fact(f),
            });
        }
        Ok(())
    }
}

/// `⊛` over all polynomials (the empty product is `[1]`).
fn product(polys: &[&[BigUint]]) -> Vec<BigUint> {
    let mut acc = vec![BigUint::one()];
    for p in polys {
        acc = convolve(&acc, p);
    }
    acc
}

/// For each `i`, `seed ⊛ ⊛_{j≠i} polys[j]`, computed divide-and-conquer
/// in `O(L² log n)` total coefficient work (`L` = summed degree) —
/// the prefix/suffix product tree without materializing `n` quadratic
/// pairings.
fn leave_one_out(polys: &[&[BigUint]], seed: Vec<BigUint>) -> Vec<Vec<BigUint>> {
    let mut out = Vec::with_capacity(polys.len());
    fill_leave_one_out(polys, seed, &mut out);
    out
}

fn fill_leave_one_out(polys: &[&[BigUint]], acc: Vec<BigUint>, out: &mut Vec<Vec<BigUint>>) {
    match polys {
        [] => {}
        [_] => out.push(acc),
        _ => {
            let (left, right) = polys.split_at(polys.len() / 2);
            let left_product = product(left);
            let right_product = product(right);
            fill_leave_one_out(left, convolve(&acc, &right_product), out);
            fill_leave_one_out(right, convolve(&acc, &left_product), out);
        }
    }
}

/// The weight correlation `out[j] = Σ_t weights[j+t] · env[t]` for
/// `j = 0..out_len`. Contracting a difference vector against `out` is
/// the same as convolving it with `env` first and weighting afterwards.
fn correlate(weights: &[BigUint], env: &[BigUint], out_len: usize) -> Vec<BigUint> {
    (0..out_len)
        .map(|j| {
            let mut acc = BigUint::zero();
            for (t, e) in env.iter().enumerate() {
                if !e.is_zero() {
                    acc += &(&weights[j + t] * e);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anyquery::AnyQuery;
    use crate::satcount::{count_sat_hierarchical, HierarchicalCounter, SatCountOracle};
    use crate::shapley::shapley_via_counts;
    use cqshap_query::parse_cq;

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    /// Batched values and count pairs must be bit-identical to the
    /// per-fact oracle on the materialized modified databases.
    fn agrees_with_per_fact(db: &Database, q: &ConjunctiveQuery) {
        let compiled = CompiledCount::compile(db, q).unwrap();
        assert_eq!(
            compiled.total_counts(),
            &count_sat_hierarchical(db, q).unwrap()[..],
            "total counts for {q}"
        );
        let oracle = HierarchicalCounter;
        for &f in db.endo_facts() {
            let want = shapley_via_counts(db, AnyQuery::Cq(q), f, &oracle).unwrap();
            let got = compiled.value(f).unwrap();
            assert_eq!(got, want, "{} for {q} on\n{db}", db.render_fact(f));
            let (n_minus, n_plus) = compiled.counts_pair(f).unwrap();
            let want_minus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Removed(f))
                .unwrap();
            let want_plus = oracle
                .counts_masked(db, AnyQuery::Cq(q), FactMask::Exogenous(f))
                .unwrap();
            assert_eq!(n_minus, want_minus, "{} N_k", db.render_fact(f));
            assert_eq!(n_plus, want_plus, "{} N⁺_k", db.render_fact(f));
        }
    }

    #[test]
    fn example_2_3_batched() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let expect = [
            ("TA", vec!["Adam"], "-3/28"),
            ("TA", vec!["Ben"], "-2/35"),
            ("TA", vec!["David"], "0"),
            ("Reg", vec!["Adam", "OS"], "37/210"),
            ("Reg", vec!["Adam", "AI"], "37/210"),
            ("Reg", vec!["Ben", "OS"], "27/140"),
            ("Reg", vec!["Caroline", "DB"], "13/42"),
            ("Reg", vec!["Caroline", "IC"], "13/42"),
        ];
        for (rel, args, want) in expect {
            let refs: Vec<&str> = args.to_vec();
            let f = db.find_fact(rel, &refs).unwrap();
            assert_eq!(compiled.value(f).unwrap().to_string(), want);
        }
    }

    #[test]
    fn agrees_across_query_shapes() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn structural_nulls() {
        let db = university();
        // TA(David) never joins a Reg fact: junk (no positive support
        // for root value David in Reg) — exactly zero, no recount.
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let david = db.find_fact("TA", &["David"]).unwrap();
        assert!(compiled.is_structurally_null(david));
        assert_eq!(compiled.bucket_of(david), 0);
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        assert!(!compiled.is_structurally_null(adam));
        // Facts outside every scope are free.
        let q_ta = parse_cq("q() :- TA(x)").unwrap();
        let c2 = CompiledCount::compile(&db, &q_ta).unwrap();
        let reg = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        assert!(c2.is_structurally_null(reg));
        assert_eq!(c2.value(reg).unwrap(), BigRational::zero());
    }

    #[test]
    fn buckets_partition_by_group() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        // Same student → same root group → same bucket.
        let f1 = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        let f2 = db.find_fact("Reg", &["Adam", "AI"]).unwrap();
        let f3 = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f2));
        assert_eq!(compiled.bucket_of(f1), compiled.bucket_of(f3));
        let g1 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert_ne!(compiled.bucket_of(f1), compiled.bucket_of(g1));
        assert!(compiled.bucket_of(g1) < compiled.buckets());
    }

    #[test]
    fn non_endogenous_fact_rejected() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let compiled = CompiledCount::compile(&db, &q1).unwrap();
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            compiled.value(stud),
            Err(CoreError::FactNotEndogenous { .. })
        ));
    }

    #[test]
    fn rejects_non_hierarchical() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y), Course(y, z)").unwrap();
        assert!(matches!(
            CompiledCount::compile(&db, &q),
            Err(CoreError::NotHierarchical { .. })
        ));
    }

    #[test]
    fn repeated_variable_patterns_batched() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        db.add_endo("E", &["b", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        for text in ["q() :- E(x, x)", "q() :- R(x), !E(x, x)"] {
            agrees_with_per_fact(&db, &parse_cq(text).unwrap());
        }
    }
}
