//! Exact Shapley values via the `|Sat|` reduction.
//!
//! For any Boolean query `q`, with `m = |Dn|` and `f ∈ Dn`:
//!
//! ```text
//! Shapley(D, q, f) = Σ_{k=0}^{m-1}  k!·(m-1-k)!/m! · (N⁺_k − N_k)
//! ```
//!
//! where `N⁺_k` counts the `k`-subsets `E ⊆ Dn∖{f}` with
//! `Dx ∪ E ∪ {f} ⊨ q` and `N_k` those with `Dx ∪ E ⊨ q`. Both are
//! `|Sat(·, q, k)|` computations on a modified database (`f` made
//! exogenous, resp. removed), so any [`SatCountOracle`] yields exact
//! Shapley values — polynomial-time for hierarchical queries (Theorem
//! 3.1), for `ExoShap`-rewritable ones (Theorem 4.3), and exponential
//! brute force otherwise.
//!
//! The reduction is due to Livshits et al.; the paper observes it makes
//! no monotonicity assumption, which is exactly what negation needs.
// cqshap-lint: allow-file(no-panic-index) -- lane and bucket tables are sized before they are indexed

use std::collections::HashMap;

use cqshap_db::{Database, FactId, FactMask, World};
use cqshap_numeric::{BigInt, BigRational, FactorialTable};
use cqshap_query::{
    classify_with_exo, has_self_join, ConjunctiveQuery, ExactComplexity, UnionQuery,
};

use crate::anyquery::AnyQuery;
use crate::budget::{Budget, CancelToken};
use crate::compiled::CompiledCount;
use crate::compiled_union::CompiledUnionCount;
use crate::error::CoreError;
use crate::exoshap;
use crate::satcount::{BruteForceCounter, HierarchicalCounter, SatCountOracle};

/// How to compute an exact Shapley value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Pick automatically from the dichotomies: hierarchical → `CntSat`;
    /// no non-hierarchical path → `ExoShap`; otherwise brute force
    /// (within the limit).
    #[default]
    Auto,
    /// Require the hierarchical polynomial algorithm (Theorem 3.1).
    Hierarchical,
    /// Require the `ExoShap` rewriting (Theorem 4.3).
    ExoShap,
    /// Explicit `2^|Dn|` subset enumeration.
    BruteForceSubsets,
    /// Explicit `|Dn|!` permutation enumeration (tiny inputs only; an
    /// independent cross-check of the reduction identity itself).
    BruteForcePermutations,
}

/// Options for exact computation.
///
/// The struct is `#[non_exhaustive]` so future knobs are not breaking
/// changes: construct through [`ShapleyOptions::auto`] (or
/// [`ShapleyOptions::with_strategy`]) and chain the builder setters.
///
/// ```
/// use cqshap_core::{ShapleyOptions, Strategy};
/// let opts = ShapleyOptions::auto().tuple_budget(1_000_000).threads(4);
/// assert_eq!(opts.strategy, Strategy::Auto);
/// assert_eq!(opts.threads, 4);
/// let brute = ShapleyOptions::with_strategy(Strategy::BruteForceSubsets)
///     .brute_force_limit(20);
/// assert_eq!(brute.brute_force_limit, 20);
/// ```
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ShapleyOptions {
    /// The strategy.
    pub strategy: Strategy,
    /// Cap on `|Dn|` for [`Strategy::BruteForceSubsets`].
    pub brute_force_limit: usize,
    /// Cap on `|Dn|` for [`Strategy::BruteForcePermutations`].
    pub permutation_limit: usize,
    /// Materialization budget for the `ExoShap` rewriting.
    pub tuple_budget: usize,
    /// Worker cap for every thread fan-out — the compile-stage product
    /// trees, weight correlations, and report recounts. `0` (the
    /// default) means "all available cores"; any other value pins the
    /// count, which is what `--threads N` on the CLI and the
    /// `bench-report` scaling rows rely on.
    pub threads: usize,
    /// Wall-clock / work-unit budget for exact computation. The
    /// default ([`Budget::UNLIMITED`]) never trips; any cap makes the
    /// long-running phases poll a shared [`crate::CancelToken`] and
    /// return [`CoreError::DeadlineExceeded`] instead of running to
    /// completion.
    pub budget: Budget,
}

impl ShapleyOptions {
    /// The defaults: [`Strategy::Auto`] with the standard limits.
    pub fn auto() -> Self {
        Self::default()
    }

    /// The defaults with an explicit strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        Self::auto().strategy(strategy)
    }

    /// Sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the brute-force `|Dn|` cap.
    pub fn brute_force_limit(mut self, limit: usize) -> Self {
        self.brute_force_limit = limit;
        self
    }

    /// Sets the permutation-enumeration `|Dn|` cap.
    pub fn permutation_limit(mut self, limit: usize) -> Self {
        self.permutation_limit = limit;
        self
    }

    /// Sets the `ExoShap` materialization budget.
    pub fn tuple_budget(mut self, budget: usize) -> Self {
        self.tuple_budget = budget;
        self
    }

    /// Caps every thread fan-out at `threads` workers (`0` = all
    /// available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the computation budget (deadline and/or work-unit cap).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Convenience: a wall-clock deadline of `ms` milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget = Budget::wall_ms(ms);
        self
    }

    /// A fresh armed token for this call when the budget is limited.
    pub(crate) fn cancel_token(&self) -> Option<CancelToken> {
        (!self.budget.is_unlimited()).then(|| self.budget.token())
    }

    /// The brute-force oracle honoring `brute_force_limit` and, when the
    /// budget is limited, polling a fresh token armed for this call.
    pub(crate) fn brute_oracle(&self) -> BruteForceCounter {
        let counter =
            BruteForceCounter::with_limit(self.brute_force_limit).with_threads(self.threads);
        match self.cancel_token() {
            Some(token) => counter.with_cancel(token),
            None => counter,
        }
    }
}

impl Default for ShapleyOptions {
    fn default() -> Self {
        ShapleyOptions {
            strategy: Strategy::Auto,
            brute_force_limit: BruteForceCounter::DEFAULT_LIMIT,
            permutation_limit: 9,
            tuple_budget: cqshap_db::complement::DEFAULT_TUPLE_BUDGET,
            threads: 0,
            budget: Budget::UNLIMITED,
        }
    }
}

/// Computes `Shapley(D, q, f)` through a `|Sat|` oracle.
///
/// The two modified databases of the reduction are presented to the
/// oracle as [`FactMask`] views (no clones), and the weighted sum is
/// accumulated as an exact integer over the common denominator `m!`
/// with a single final normalization.
///
/// # Errors
/// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`, plus anything the
/// oracle raises.
pub fn shapley_via_counts(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    oracle: &dyn SatCountOracle,
) -> Result<BigRational, CoreError> {
    if db.endo_index(f).is_none() {
        return Err(CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        });
    }
    let m = db.endo_count();
    let n_minus = oracle.counts_masked(db, q, FactMask::Removed(f))?;
    let n_plus = oracle.counts_masked(db, q, FactMask::Exogenous(f))?;
    debug_assert_eq!(n_minus.len(), m);
    debug_assert_eq!(n_plus.len(), m);
    let table = FactorialTable::new(m);
    let mut num = BigInt::zero();
    for k in 0..m {
        let diff = BigInt::signed_diff(&n_plus[k], &n_minus[k]);
        if !diff.is_zero() {
            num += &(diff * BigInt::from_biguint(table.shapley_weight_numerator(m, k)));
        }
    }
    Ok(table.reduce_over_factorial(num, m))
}

/// Computes `Shapley(D, q, f)` by enumerating all `|Dn|!` permutations —
/// the textbook definition, used as an independent cross-check.
///
/// # Errors
/// [`CoreError::TooManyEndogenousFacts`] beyond `limit`.
pub fn shapley_by_permutations(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    limit: usize,
) -> Result<BigRational, CoreError> {
    shapley_by_permutations_cancel(db, q, f, limit, None)
}

/// [`shapley_by_permutations`] polling a [`CancelToken`] every `1024`
/// permutations; a tripped budget returns
/// [`CoreError::DeadlineExceeded`] with phase `permutations`.
///
/// # Errors
/// As [`shapley_by_permutations`], plus
/// [`CoreError::DeadlineExceeded`].
pub fn shapley_by_permutations_cancel(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<BigRational, CoreError> {
    let pos = db
        .endo_index(f)
        .ok_or_else(|| CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        })?;
    let m = db.endo_count();
    if m > limit {
        return Err(CoreError::TooManyEndogenousFacts { count: m, limit });
    }
    let compiled = q.compile(db);
    let mut order: Vec<usize> = (0..m).collect();
    let mut total = BigInt::zero();
    let mut visited: u64 = 0;
    permute(&mut order, 0, &mut |perm| {
        visited += 1;
        if visited & 0x3FF == 0 && cancel.is_some_and(|c| c.charge(1)) {
            return false;
        }
        let mut world = World::empty(db);
        for &p in perm {
            if p == pos {
                break;
            }
            world.insert(db, db.endo_facts()[p]);
        }
        let before = compiled.satisfied(db, &world);
        world.insert(db, f);
        let after = compiled.satisfied(db, &world);
        total += &BigInt::from_i64(after as i64 - before as i64);
        true
    });
    if let Some(token) = cancel {
        crate::budget::check(token, cqshap_obs::phase::PERMUTATIONS)?;
    }
    let table = FactorialTable::new(m);
    Ok(BigRational::from_int(total) / BigRational::from(table.factorial(m).clone()))
}

/// Visits every permutation in place; the visitor returns `false` to
/// abort the enumeration (cooperative cancellation).
fn permute(order: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if k == order.len() {
        return visit(order);
    }
    for i in k..order.len() {
        order.swap(k, i);
        let keep_going = permute(order, k + 1, visit);
        order.swap(k, i);
        if !keep_going {
            return false;
        }
    }
    true
}

/// Computes `Shapley(D, q, f)` for a CQ¬ using `options.strategy`.
///
/// A thin compatibility wrapper over
/// [`crate::session::ShapleySession`]: prepares a session for `(db, q)`
/// and serves the one value. Callers computing several values against
/// one database should prepare the session themselves and reuse it.
pub fn shapley_value(
    db: &Database,
    q: &ConjunctiveQuery,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    crate::session::ShapleySession::prepare(db, AnyQuery::Cq(q), options)?.value(f)
}

/// Computes `Shapley(D, U, f)` for a UCQ¬.
///
/// `Auto` and `Hierarchical` route through the inclusion–exclusion
/// engine [`CompiledUnionCount`] whenever every non-empty intersection
/// of disjuncts conjoins into the compiled fragment (Section 5.2's
/// extension of the tractability frontier to UCQ¬s); `Auto` then tries
/// the per-conjunction `ExoShap` rewriting (the union analogue of the
/// single-CQ¬ dichotomy ladder) and finally brute force. `ExoShap`
/// applies the rewriting to every subset conjunction (the Shapley value
/// is linear in the signed count sums, so each term may be rewritten
/// independently). Explicit strategies error only when genuinely
/// inapplicable, with [`CoreError::IntractableIntersection`] naming the
/// offending disjunct intersection.
pub fn shapley_value_union(
    db: &Database,
    u: &UnionQuery,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    if db.endo_index(f).is_none() {
        return Err(CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        });
    }
    crate::session::ShapleySession::prepare(db, AnyQuery::Union(u), options)?.value(f)
}

/// Computes the Shapley value of *every* endogenous fact of `db` for a
/// UCQ¬, strategy-routed like [`shapley_value_union`] but with the
/// compiled paths batched: the inclusion–exclusion engine is compiled
/// once and the per-fact recounts fan out across threads chunked by the
/// engine's combined root-group buckets.
pub fn shapley_report_union(
    db: &Database,
    u: &UnionQuery,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    crate::session::ShapleySession::prepare(db, AnyQuery::Union(u), options)?.report()
}

/// The per-fact reference path of [`shapley_report_union`]: every fact
/// pays the full inclusion–exclusion sum with from-scratch hierarchical
/// DP runs (or brute-force enumeration) — no compiled sharing. Kept as
/// the cross-check and benchmark baseline; `cqshap-bench`'s
/// `bench-report --ucq` measures the speedup of [`shapley_report_union`]
/// over this.
pub fn shapley_report_union_per_fact(
    db: &Database,
    u: &UnionQuery,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    let facts = db.endo_facts();
    let cancel = options.cancel_token();
    let values = match resolve_union_route(db, u, options, cancel.as_ref())? {
        UnionRoute::Compiled => {
            let subsets: Vec<(bool, ConjunctiveQuery)> =
                CompiledUnionCount::subset_conjunctions(u)?
                    .into_iter()
                    .map(|(negative, _, q)| (negative, q))
                    .collect();
            crate::parallel::par_map_with(options.threads, facts.len(), |i| {
                let mut acc = BigRational::zero();
                for (negative, q) in &subsets {
                    let v =
                        shapley_via_counts(db, AnyQuery::Cq(q), facts[i], &HierarchicalCounter)?;
                    signed_add(&mut acc, &v, *negative);
                }
                Ok::<BigRational, CoreError>(acc)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        }
        UnionRoute::ExoShap(terms) => {
            let outcomes: Vec<(bool, exoshap::RewriteOutcome)> = terms
                .into_iter()
                .map(|(negative, outcome, _)| (negative, outcome))
                .collect();
            exoshap_union_per_fact_values(&outcomes, facts, options.threads)?
        }
        UnionRoute::BruteForce => union_brute_values(db, u, facts, options)?,
        UnionRoute::Permutations => {
            let cancel = &cancel;
            crate::parallel::par_map_with(options.threads, facts.len(), |i| {
                shapley_by_permutations_cancel(
                    db,
                    AnyQuery::Union(u),
                    facts[i],
                    options.permutation_limit,
                    cancel.as_ref(),
                )
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        }
    };
    Ok(assemble_report(db, values, union_efficiency_target(db, u)))
}

/// The signed, rewritten terms evaluated per fact with from-scratch
/// hierarchical DP runs (the `ExoShap` reference path, and the terminal
/// step of [`shapley_value_union`]'s single-fact evaluation).
pub(crate) fn exoshap_union_per_fact_values(
    terms: &[(bool, exoshap::RewriteOutcome)],
    facts: &[FactId],
    threads: usize,
) -> Result<Vec<BigRational>, CoreError> {
    crate::parallel::par_map_with(threads, facts.len(), |i| {
        let mut acc = BigRational::zero();
        for (negative, outcome) in terms {
            let v = shapley_via_counts(
                &outcome.db,
                AnyQuery::Cq(&outcome.query),
                facts[i],
                &HierarchicalCounter,
            )?;
            signed_add(&mut acc, &v, *negative);
        }
        Ok::<BigRational, CoreError>(acc)
    })
    .into_iter()
    .collect()
}

/// The algorithm a UCQ¬ strategy resolved to — shared by
/// [`shapley_value_union`], [`shapley_report_union`] (both through the
/// session), and [`shapley_report_union_per_fact`], so one input can
/// never route differently between the single-value and report paths.
pub(crate) enum UnionRoute {
    /// The compiled inclusion–exclusion engine.
    Compiled,
    /// The per-conjunction `ExoShap` rewriting: the signed rewritten
    /// terms with their engines already compiled (compiled once here,
    /// whether for `Auto` validation or an explicit strategy, and
    /// carried to the caller instead of being rebuilt).
    ExoShap(Vec<(bool, exoshap::RewriteOutcome, CompiledCount)>),
    /// Explicit subset enumeration.
    BruteForce,
    /// Explicit permutation enumeration.
    Permutations,
}

/// Compiles the batched engine of every `ExoShap` union term.
fn compile_exoshap_terms(
    terms: Vec<(bool, exoshap::RewriteOutcome)>,
    threads: usize,
    cancel: Option<&CancelToken>,
) -> Result<Vec<(bool, exoshap::RewriteOutcome, CompiledCount)>, CoreError> {
    terms
        .into_iter()
        .map(|(negative, outcome)| {
            let engine = match cancel {
                Some(token) => CompiledCount::compile_with_cancel(
                    &outcome.db,
                    &outcome.query,
                    threads,
                    token.clone(),
                )?,
                None => CompiledCount::compile_with_threads(&outcome.db, &outcome.query, threads)?,
            };
            Ok((negative, outcome, engine))
        })
        .collect()
}

/// Checks every subset conjunction of `u` against the compiled
/// fragment.
fn check_union_tractable(u: &UnionQuery) -> Result<(), CoreError> {
    for (_, label, q) in CompiledUnionCount::subset_conjunctions(u)? {
        CompiledUnionCount::check_tractable(&label, &q)?;
    }
    Ok(())
}

/// Resolves a union strategy once. `Auto` descends the ladder: the
/// compiled inclusion–exclusion engine whenever every intersection lies
/// in the compiled fragment, then the per-conjunction `ExoShap`
/// rewriting (validated end-to-end, including the rewritten engines),
/// then brute force within the limit, and only then surfaces the
/// original intersection error.
pub(crate) fn resolve_union_route(
    db: &Database,
    u: &UnionQuery,
    options: &ShapleyOptions,
    cancel: Option<&CancelToken>,
) -> Result<UnionRoute, CoreError> {
    match options.strategy {
        Strategy::BruteForcePermutations => Ok(UnionRoute::Permutations),
        Strategy::BruteForceSubsets => Ok(UnionRoute::BruteForce),
        Strategy::Hierarchical => {
            check_union_tractable(u)?;
            Ok(UnionRoute::Compiled)
        }
        Strategy::ExoShap => Ok(UnionRoute::ExoShap(compile_exoshap_terms(
            exoshap_union_terms(db, u, options.tuple_budget)?,
            options.threads,
            cancel,
        )?)),
        Strategy::Auto => match check_union_tractable(u) {
            Ok(()) => Ok(UnionRoute::Compiled),
            Err(e) if compiled_union_inapplicable(&e) => {
                if let Ok(terms) = exoshap_union_terms(db, u, options.tuple_budget) {
                    match compile_exoshap_terms(terms, options.threads, cancel) {
                        Ok(compiled) => return Ok(UnionRoute::ExoShap(compiled)),
                        // A tripped deadline must surface, not silently
                        // downgrade the route to brute force.
                        Err(d @ CoreError::DeadlineExceeded { .. }) => return Err(d),
                        Err(_) => {}
                    }
                }
                if db.endo_count() <= options.brute_force_limit {
                    Ok(UnionRoute::BruteForce)
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        },
    }
}

/// `acc ± v` by the inclusion–exclusion sign.
pub(crate) fn signed_add(acc: &mut BigRational, v: &BigRational, negative: bool) {
    if negative {
        *acc -= v;
    } else {
        *acc += v;
    }
}

/// Should `Auto` absorb this compile failure by falling back to brute
/// force (the union is outside the compiled fragment), rather than
/// propagate it (a genuine input error)?
pub(crate) fn compiled_union_inapplicable(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::IntractableIntersection { .. }
            | CoreError::NotHierarchical { .. }
            | CoreError::NotSelfJoinFree { .. }
            | CoreError::Unsupported(_)
    )
}

pub(crate) fn union_brute_value(
    db: &Database,
    u: &UnionQuery,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    shapley_via_counts(db, AnyQuery::Union(u), f, &options.brute_oracle())
}

pub(crate) fn union_brute_values(
    db: &Database,
    u: &UnionQuery,
    facts: &[FactId],
    options: &ShapleyOptions,
) -> Result<Vec<BigRational>, CoreError> {
    crate::parallel::par_map_with(options.threads, facts.len(), |i| {
        union_brute_value(db, u, facts[i], options)
    })
    .into_iter()
    .collect()
}

/// The `ExoShap` rewriting applied per subset conjunction: the signed,
/// rewritten inclusion–exclusion terms (unsatisfiable conjunctions and
/// always-false rewriting outcomes contribute zero and are skipped).
///
/// # Errors
/// [`CoreError::IntractableIntersection`] naming the intersection whose
/// conjunction the rewriting rejects.
pub(crate) fn exoshap_union_terms(
    db: &Database,
    u: &UnionQuery,
    tuple_budget: usize,
) -> Result<Vec<(bool, exoshap::RewriteOutcome)>, CoreError> {
    let mut out = Vec::new();
    for (negative, label, q) in CompiledUnionCount::subset_conjunctions(u)? {
        let outcome = exoshap::rewrite(db, &q, tuple_budget).map_err(|e| {
            CoreError::IntractableIntersection {
                intersection: label.clone(),
                reason: e.to_string(),
            }
        })?;
        if outcome.always_false {
            continue;
        }
        out.push((negative, outcome));
    }
    Ok(out)
}

/// `U(D) − U(Dx)` — what a union report's value total must equal by the
/// efficiency axiom.
pub(crate) fn union_efficiency_target(db: &Database, u: &UnionQuery) -> BigRational {
    let compiled = AnyQuery::Union(u).compile(db);
    let full = compiled.satisfied(db, &World::full(db)) as i64;
    let empty = compiled.satisfied(db, &World::empty(db)) as i64;
    BigRational::from(full - empty)
}

/// The concrete algorithm a [`Strategy`] resolved to for one input —
/// what `Auto` actually picked, exposed through
/// [`crate::session::ShapleySession::strategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedStrategy {
    /// The hierarchical `CntSat` engine (Theorem 3.1).
    Hierarchical,
    /// The `ExoShap` rewriting followed by the hierarchical engine
    /// (Theorem 4.3).
    ExoShap,
    /// Explicit subset enumeration.
    BruteForce,
    /// Explicit permutation enumeration.
    Permutations,
}

pub(crate) fn resolve_strategy(
    db: &Database,
    q: &ConjunctiveQuery,
    options: &ShapleyOptions,
) -> Result<ResolvedStrategy, CoreError> {
    Ok(match options.strategy {
        Strategy::Hierarchical => ResolvedStrategy::Hierarchical,
        Strategy::ExoShap => ResolvedStrategy::ExoShap,
        Strategy::BruteForceSubsets => ResolvedStrategy::BruteForce,
        Strategy::BruteForcePermutations => ResolvedStrategy::Permutations,
        Strategy::Auto => {
            if has_self_join(q) {
                // The dichotomy is open for self-joins (Section 6):
                // fall back to brute force when feasible.
                if db.endo_count() <= options.brute_force_limit {
                    ResolvedStrategy::BruteForce
                } else {
                    return Err(CoreError::TooManyEndogenousFacts {
                        count: db.endo_count(),
                        limit: options.brute_force_limit,
                    });
                }
            } else {
                let exo: std::collections::HashSet<String> =
                    db.exogenous_relation_names().into_iter().collect();
                match classify_with_exo(q, &exo) {
                    ExactComplexity::TractableHierarchical => ResolvedStrategy::Hierarchical,
                    ExactComplexity::TractableViaExoShap => ResolvedStrategy::ExoShap,
                    ExactComplexity::FpSharpPComplete { witness } => {
                        if db.endo_count() <= options.brute_force_limit {
                            ResolvedStrategy::BruteForce
                        } else {
                            return Err(CoreError::HasNonHierarchicalPath { witness });
                        }
                    }
                    ExactComplexity::SelfJoinHard { .. } | ExactComplexity::OpenSelfJoins => {
                        // cqshap-lint: allow(no-panic) -- self-join queries took the branch above
                        unreachable!("self-join handled above")
                    }
                }
            }
        }
    })
}

/// The Shapley value of one fact, as part of a [`ShapleyReport`].
#[derive(Debug, Clone)]
pub struct ShapleyEntry {
    /// The fact id.
    pub fact: FactId,
    /// The fact, rendered (e.g. `Reg(Adam, OS)`).
    pub rendered: String,
    /// The exact value.
    pub value: BigRational,
}

/// Evaluation statistics attached to a [`ShapleyReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportStats {
    /// Aggregate reports: candidate answers with nonzero weight.
    pub aggregate_candidates: usize,
    /// Aggregate reports: candidates skipped by the relevance pre-pass
    /// (their value vector is provably zero — no engine was compiled).
    pub pruned_candidates: usize,
}

/// Shapley values of every endogenous fact, plus the efficiency check.
#[derive(Debug, Clone)]
pub struct ShapleyReport {
    /// One entry per endogenous fact, in `Dn` order.
    pub entries: Vec<ShapleyEntry>,
    /// `Σ_f Shapley(D, q, f)`.
    pub total: BigRational,
    /// `q(D) − q(Dx)`, which the total must equal (the efficiency axiom
    /// of the Shapley value; Example 2.3 notes the sum is 1 there).
    pub expected_total: BigRational,
    /// Evaluation statistics (zero for plain Boolean reports).
    pub stats: ReportStats,
    /// `FactId → entries` index, built once so [`ShapleyReport::entry`]
    /// is O(1) instead of a linear scan per lookup.
    index: HashMap<FactId, usize>,
}

impl ShapleyReport {
    /// Builds a report from its entries, computing the value total and
    /// the fact-lookup index.
    pub fn new(entries: Vec<ShapleyEntry>, expected_total: BigRational) -> Self {
        let mut total = BigRational::zero();
        let mut index = HashMap::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            total += &e.value;
            index.insert(e.fact, i);
        }
        ShapleyReport {
            entries,
            total,
            expected_total,
            stats: ReportStats::default(),
            index,
        }
    }

    /// Builds a report from entries whose exact value total the caller
    /// already holds (engine paths accumulate it over the common
    /// denominator `m!`, avoiding a rational reduction per entry).
    /// Debug builds verify the total against the entries.
    pub fn with_precomputed_total(
        entries: Vec<ShapleyEntry>,
        total: BigRational,
        expected_total: BigRational,
    ) -> Self {
        debug_assert_eq!(
            {
                let mut check = BigRational::zero();
                for e in &entries {
                    check += &e.value;
                }
                check
            },
            total,
            "precomputed total disagrees with the entries"
        );
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.fact, i))
            .collect();
        ShapleyReport {
            entries,
            total,
            expected_total,
            stats: ReportStats::default(),
            index,
        }
    }

    /// Attaches evaluation statistics.
    pub fn with_stats(mut self, stats: ReportStats) -> Self {
        self.stats = stats;
        self
    }

    /// Does the efficiency axiom hold exactly?
    pub fn efficiency_holds(&self) -> bool {
        self.total == self.expected_total
    }

    /// The entry for `f`, if endogenous. O(1) through the index; if a
    /// caller reordered the public `entries` vector (the index cannot
    /// observe that), the lookup verifies the hit and falls back to a
    /// scan rather than return the wrong fact's entry.
    pub fn entry(&self, f: FactId) -> Option<&ShapleyEntry> {
        match self.index.get(&f) {
            Some(&i) if self.entries.get(i).is_some_and(|e| e.fact == f) => Some(&self.entries[i]),
            _ => self.entries.iter().find(|e| e.fact == f),
        }
    }
}

/// Resolves the strategy and performs the (shared) `ExoShap` rewriting.
fn prepare_report(
    db: &Database,
    q: &ConjunctiveQuery,
    options: &ShapleyOptions,
) -> Result<(ResolvedStrategy, Option<exoshap::RewriteOutcome>), CoreError> {
    let resolved = resolve_strategy(db, q, options)?;
    let rewritten = match resolved {
        ResolvedStrategy::ExoShap => Some(exoshap::rewrite(db, q, options.tuple_budget)?),
        _ => None,
    };
    Ok((resolved, rewritten))
}

/// All-zero report (the `always_false` rewriting outcome).
pub(crate) fn zero_report(db: &Database) -> ShapleyReport {
    let entries = db
        .endo_facts()
        .iter()
        .map(|&f| ShapleyEntry {
            fact: f,
            rendered: db.render_fact(f),
            value: BigRational::zero(),
        })
        .collect();
    ShapleyReport::new(entries, BigRational::zero())
}

/// `q(D) − q(Dx)` — what the value total must equal by efficiency.
pub(crate) fn efficiency_target(db: &Database, q: &ConjunctiveQuery) -> BigRational {
    let full = cqshap_engine::satisfies(db, &World::full(db), q) as i64;
    let empty = cqshap_engine::satisfies(db, &World::empty(db), q) as i64;
    BigRational::from(full - empty)
}

pub(crate) fn assemble_report(
    db: &Database,
    values: Vec<BigRational>,
    expected_total: BigRational,
) -> ShapleyReport {
    ShapleyReport::new(report_entries(db, values), expected_total)
}

/// [`assemble_report`] with the exact value total already in hand.
pub(crate) fn assemble_report_with_total(
    db: &Database,
    values: Vec<BigRational>,
    total: BigRational,
    expected_total: BigRational,
) -> ShapleyReport {
    ShapleyReport::with_precomputed_total(report_entries(db, values), total, expected_total)
}

fn report_entries(db: &Database, values: Vec<BigRational>) -> Vec<ShapleyEntry> {
    db.endo_facts()
        .iter()
        .zip(values)
        .map(|(&f, value)| ShapleyEntry {
            fact: f,
            rendered: db.render_fact(f),
            value,
        })
        .collect()
}

/// What the chunked report fan-out needs from a compiled engine —
/// implemented by the single-CQ¬ [`CompiledCount`] and the
/// inclusion–exclusion [`CompiledUnionCount`]. Engines do not borrow
/// the database, so each call re-supplies it.
pub(crate) trait BatchedEngine: Sync {
    /// Total number of bucket ids.
    fn buckets(&self, db: &Database) -> usize;
    /// The recount-state bucket of `f`.
    fn bucket_of(&self, db: &Database, f: FactId) -> usize;
    /// The Shapley numerator of `f` over the common denominator `m!`.
    fn numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError>;
    /// `num / m!` in lowest terms (memoized by the engine).
    fn normalize(&self, num: BigInt) -> BigRational;
}

impl BatchedEngine for CompiledCount {
    fn buckets(&self, _db: &Database) -> usize {
        CompiledCount::buckets(self)
    }
    fn bucket_of(&self, _db: &Database, f: FactId) -> usize {
        CompiledCount::bucket_of(self, f)
    }
    fn numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError> {
        CompiledCount::shapley_numerator(self, db, f)
    }
    fn normalize(&self, num: BigInt) -> BigRational {
        CompiledCount::normalize_numerator(self, num)
    }
}

impl BatchedEngine for CompiledUnionCount {
    fn buckets(&self, db: &Database) -> usize {
        CompiledUnionCount::buckets(self, db)
    }
    fn bucket_of(&self, db: &Database, f: FactId) -> usize {
        CompiledUnionCount::bucket_of(self, db, f)
    }
    fn numerator(&self, db: &Database, f: FactId) -> Result<BigInt, CoreError> {
        CompiledUnionCount::shapley_numerator(self, db, f)
    }
    fn normalize(&self, num: BigInt) -> BigRational {
        CompiledUnionCount::normalize_numerator(self, num)
    }
}

/// Computes all values through a batched compiled engine:
/// compile once, then fan the per-fact recounts out across threads
/// **chunked by root group**, so every thread works against the shared
/// compiled state and a group's recount locality stays on one core.
pub(crate) fn engine_values(
    db: &Database,
    compiled: &dyn BatchedEngine,
    facts: &[FactId],
    threads: usize,
) -> Result<Vec<BigRational>, CoreError> {
    Ok(engine_numerator_values(db, compiled, facts, threads)?.0)
}

/// [`engine_values`] plus the exact value total, accumulated over the
/// engine's common denominator `m!` with plain integer additions and
/// normalized once — summing the already-reduced rationals instead
/// costs a gcd per fact and dominates large reports.
pub(crate) fn engine_report_values(
    db: &Database,
    compiled: &dyn BatchedEngine,
    facts: &[FactId],
    threads: usize,
) -> Result<(Vec<BigRational>, BigRational), CoreError> {
    let (values, total) = engine_numerator_values(db, compiled, facts, threads)?;
    Ok((values, compiled.normalize(total)))
}

fn engine_numerator_values(
    db: &Database,
    compiled: &dyn BatchedEngine,
    facts: &[FactId],
    threads: usize,
) -> Result<(Vec<BigRational>, BigInt), CoreError> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); compiled.buckets(db)];
    for (i, &f) in facts.iter().enumerate() {
        buckets[compiled.bucket_of(db, f)].push(i);
    }
    buckets.retain(|b| !b.is_empty());
    let lanes = crate::parallel::resolve_thread_cap(threads).min(buckets.len().max(1));
    // Largest-first greedy assignment of whole buckets to worker lanes.
    buckets.sort_by_key(|b| std::cmp::Reverse(b.len()));
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); lanes];
    let mut loads = vec![0usize; lanes];
    for bucket in buckets {
        // cqshap-lint: allow(no-panic) -- lanes >= 1, so the minimum over 0..lanes exists
        let t = (0..lanes).min_by_key(|&t| loads[t]).expect("lanes >= 1");
        loads[t] += bucket.len();
        assignments[t].extend(bucket);
    }
    // Lanes return their completed prefix alongside any error so a
    // tripped deadline can report how many facts finished.
    let computed = crate::parallel::par_map_with(threads, assignments.len(), |t| {
        let mut done = Vec::new();
        for &i in &assignments[t] {
            match compiled.numerator(db, facts[i]) {
                Ok(num) => {
                    let value = compiled.normalize(num.clone());
                    done.push((i, num, value));
                }
                Err(e) => return (done, Some(e)),
            }
        }
        (done, None)
    });
    let mut values: Vec<Option<BigRational>> = vec![None; facts.len()];
    let mut total = BigInt::zero();
    let mut completed = 0usize;
    let mut failure: Option<CoreError> = None;
    for (part, err) in computed {
        for (i, num, v) in part {
            total += &num;
            values[i] = Some(v);
            completed += 1;
        }
        if failure.is_none() {
            failure = err;
        }
    }
    if let Some(e) = failure {
        // Salvage the finished answers: the lanes that completed hold
        // exact values the caller should not have to recompute.
        let answers: Vec<(usize, BigRational)> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.clone().map(|v| (i, v)))
            .collect();
        debug_assert_eq!(answers.len(), completed);
        return Err(e.with_partial_answers(answers));
    }
    Ok((
        values
            .into_iter()
            // cqshap-lint: allow(no-panic) -- the bucket partition assigns every fact exactly once
            .map(|v| v.expect("every fact assigned to exactly one bucket"))
            .collect(),
        total,
    ))
}

/// Computes the Shapley value of *every* endogenous fact of `db`.
///
/// The hierarchical strategies (including the shared-once `ExoShap`
/// rewriting) run through the batched [`CompiledCount`] engine —
/// compile-once, amortized `O(|group|)` per fact, no database clones.
/// Brute-force strategies fall back to independent per-fact runs.
pub fn shapley_report(
    db: &Database,
    q: &ConjunctiveQuery,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    crate::session::ShapleySession::prepare(db, AnyQuery::Cq(q), options)?.report()
}

/// The seed per-fact reference path of [`shapley_report`]: every fact
/// pays two materialized database copies and two from-scratch oracle
/// runs. Kept as the cross-check and benchmark baseline for the
/// batched engine — `cqshap-bench`'s `bench-report` measures the
/// speedup of [`shapley_report`] over this.
pub fn shapley_report_per_fact(
    db: &Database,
    q: &ConjunctiveQuery,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    let (resolved, rewritten) = prepare_report(db, q, options)?;
    let (eff_db, eff_q): (&Database, &ConjunctiveQuery) = match &rewritten {
        Some(rw) if rw.always_false => return Ok(zero_report(db)),
        Some(rw) => (&rw.db, &rw.query),
        None => (db, q),
    };
    let facts = db.endo_facts();
    let values = per_fact_values(eff_db, eff_q, facts, resolved, options, true)?;
    Ok(assemble_report(
        db,
        values,
        efficiency_target(eff_db, eff_q),
    ))
}

/// Fans independent per-fact computations out across threads, chunked
/// by raw fact index. With `materialize` set, each fact's modified
/// databases are rebuilt as real copies (the seed behavior); otherwise
/// the oracle sees [`FactMask`] views.
pub(crate) fn per_fact_values(
    eff_db: &Database,
    eff_q: &ConjunctiveQuery,
    facts: &[FactId],
    resolved: ResolvedStrategy,
    options: &ShapleyOptions,
    materialize: bool,
) -> Result<Vec<BigRational>, CoreError> {
    // One armed token shared by every worker lane: the deadline bounds
    // the whole report, not each fact.
    let cancel = options.cancel_token();
    let oracle: Box<dyn SatCountOracle> = match resolved {
        ResolvedStrategy::Hierarchical | ResolvedStrategy::ExoShap => Box::new(HierarchicalCounter),
        ResolvedStrategy::BruteForce | ResolvedStrategy::Permutations => {
            let counter = BruteForceCounter::with_limit(options.brute_force_limit)
                .with_threads(options.threads);
            Box::new(match &cancel {
                Some(token) => counter.with_cancel(token.clone()),
                None => counter,
            })
        }
    };
    let oracle_ref: &dyn SatCountOracle = oracle.as_ref();
    let cancel_ref = cancel.as_ref();
    crate::parallel::par_map_with(options.threads, facts.len(), |i| {
        let f = facts[i];
        match resolved {
            ResolvedStrategy::Permutations => shapley_by_permutations_cancel(
                eff_db,
                AnyQuery::Cq(eff_q),
                f,
                options.permutation_limit,
                cancel_ref,
            ),
            _ if materialize => shapley_via_materialized_counts(eff_db, eff_q, f, oracle_ref),
            _ => shapley_via_counts(eff_db, AnyQuery::Cq(eff_q), f, oracle_ref),
        }
    })
    .into_iter()
    .collect()
}

/// The seed single-fact computation: materialized modified databases
/// plus a term-by-term rational accumulation. Only
/// [`shapley_report_per_fact`] uses this; it exists to keep the
/// benchmark baseline honest.
fn shapley_via_materialized_counts(
    db: &Database,
    q: &ConjunctiveQuery,
    f: FactId,
    oracle: &dyn SatCountOracle,
) -> Result<BigRational, CoreError> {
    if db.endo_index(f).is_none() {
        return Err(CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        });
    }
    let m = db.endo_count();
    let (db_minus, _) = db.without_fact(f)?;
    let (db_plus, _) = db.with_fact_exogenous(f)?;
    let n_minus = oracle.counts(&db_minus, AnyQuery::Cq(q))?;
    let n_plus = oracle.counts(&db_plus, AnyQuery::Cq(q))?;
    let table = FactorialTable::new(m);
    let mut acc = BigRational::zero();
    for k in 0..m {
        let diff =
            BigInt::from_biguint(n_plus[k].clone()) - BigInt::from_biguint(n_minus[k].clone());
        if !diff.is_zero() {
            acc += &(table.shapley_weight(m, k) * BigRational::from_int(diff));
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    /// Example 2.3: the exact Shapley values of all endogenous facts for
    /// q1 on the running example. (The appendix's expansion for f_r1
    /// misses the subset {f_t2, f_t3}; the main text's 37/210 is what the
    /// definition yields, as both our algorithms and the permutation
    /// enumeration confirm.)
    #[test]
    fn example_2_3_exact_values() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let opts = ShapleyOptions::default();
        let report = shapley_report(&db, &q1, &opts).unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.expected_total, BigRational::one());

        let expect = [
            ("TA", vec!["Adam"], rat(-3, 28)),
            ("TA", vec!["Ben"], rat(-2, 35)),
            ("TA", vec!["David"], rat(0, 1)),
            ("Reg", vec!["Adam", "OS"], rat(37, 210)),
            ("Reg", vec!["Adam", "AI"], rat(37, 210)),
            ("Reg", vec!["Ben", "OS"], rat(27, 140)),
            ("Reg", vec!["Caroline", "DB"], rat(13, 42)),
            ("Reg", vec!["Caroline", "IC"], rat(13, 42)),
        ];
        for (rel, args, expected) in expect {
            let refs: Vec<&str> = args.iter().map(|s| &**s).collect();
            let f = db.find_fact(rel, &refs).unwrap();
            let entry = report.entry(f).unwrap();
            assert_eq!(entry.value, expected, "{}", entry.rendered);
        }
    }

    #[test]
    fn oracle_agreement_hierarchical_vs_brute_vs_permutations() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\n\
             endo Reg(a, c1)\nendo Reg(b, c2)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        for &f in db.endo_facts() {
            let h = shapley_via_counts(&db, AnyQuery::Cq(&q), f, &HierarchicalCounter).unwrap();
            let b =
                shapley_via_counts(&db, AnyQuery::Cq(&q), f, &BruteForceCounter::new()).unwrap();
            let p = shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).unwrap();
            assert_eq!(h, b, "{}", db.render_fact(f));
            assert_eq!(h, p, "{}", db.render_fact(f));
        }
    }

    #[test]
    fn section_5_1_gap_example_small() {
        // q() :- R(x), S(x,y), !R(y) on the Section 5.1 database with
        // n = 2: |Shapley(f)| = 2!·2!/5! = 1/30.
        let n = 2;
        let mut db = Database::new();
        for i in 0..=2 * n {
            db.add_exo("S", &[&format!("cx{i}"), &format!("cy{i}")])
                .unwrap();
        }
        for i in 1..=n {
            db.add_exo("R", &[&format!("cx{i}")]).unwrap();
            db.add_endo("R", &[&format!("cy{i}")]).unwrap();
        }
        db.add_endo("R", &["cx0"]).unwrap();
        for i in n + 1..=2 * n {
            db.add_endo("R", &[&format!("cx{i}")]).unwrap();
        }
        let q = parse_cq("q() :- R(x), S(x, y), !R(y)").unwrap();
        let f = db.find_fact("R", &["cx0"]).unwrap();
        // Self-join → Auto uses brute force.
        let v = shapley_value(&db, &q, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v, rat(1, 30));
        let p = shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).unwrap();
        assert_eq!(p, rat(1, 30));
    }

    #[test]
    fn auto_strategy_dispatch() {
        let db = university();
        // Hierarchical.
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let f = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(
            shapley_value(&db, &q1, f, &ShapleyOptions::default()).unwrap(),
            rat(-3, 28)
        );
        // Non-hierarchical without exogenous declarations: |Dn| = 8 ≤
        // limit → brute force matches permutations.
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let v = shapley_value(&db, &q2, f, &ShapleyOptions::default()).unwrap();
        let p = shapley_by_permutations(&db, AnyQuery::Cq(&q2), f, 9).unwrap();
        assert_eq!(v, p);
    }

    #[test]
    fn exoshap_matches_brute_force_on_q2() {
        // Same data but with Stud and Course declared exogenous: Theorem
        // 4.3 puts q2 in PTIME; the rewriting must agree with brute force.
        let mut db = university();
        let stud = db.schema().id("Stud").unwrap();
        let course = db.schema().id("Course").unwrap();
        let adv = db.schema().id("Adv").unwrap();
        db.declare_exogenous_relation(stud).unwrap();
        db.declare_exogenous_relation(course).unwrap();
        db.declare_exogenous_relation(adv).unwrap();
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let exo_opts = ShapleyOptions {
            strategy: Strategy::ExoShap,
            ..Default::default()
        };
        let bf_opts = ShapleyOptions {
            strategy: Strategy::BruteForceSubsets,
            ..Default::default()
        };
        for &f in db.endo_facts() {
            let a = shapley_value(&db, &q2, f, &exo_opts).unwrap();
            let b = shapley_value(&db, &q2, f, &bf_opts).unwrap();
            assert_eq!(a, b, "{}", db.render_fact(f));
        }
        // Auto picks ExoShap here.
        let f = db.find_fact("TA", &["Adam"]).unwrap();
        let auto = shapley_value(&db, &q2, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(auto, shapley_value(&db, &q2, f, &exo_opts).unwrap());
    }

    #[test]
    fn non_endogenous_fact_rejected() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let f = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            shapley_value(&db, &q1, f, &ShapleyOptions::default()),
            Err(CoreError::FactNotEndogenous { .. })
        ));
    }

    #[test]
    fn union_brute_force() {
        let db = Database::parse("endo R(a)\nendo S(b)\n").unwrap();
        let u = cqshap_query::parse_ucq("q() :- R(x); q() :- S(x)").unwrap();
        let f = db.find_fact("R", &["a"]).unwrap();
        let v = shapley_value_union(&db, &u, f, &ShapleyOptions::default()).unwrap();
        // Symmetric players of a 2-player OR game: each gets 1/2.
        assert_eq!(v, rat(1, 2));
        let p = shapley_by_permutations(&db, AnyQuery::Union(&u), f, 9).unwrap();
        assert_eq!(p, rat(1, 2));
        // The explicit brute strategy agrees.
        let brute = ShapleyOptions {
            strategy: Strategy::BruteForceSubsets,
            ..Default::default()
        };
        assert_eq!(shapley_value_union(&db, &u, f, &brute).unwrap(), rat(1, 2));
    }

    #[test]
    fn union_auto_uses_compiled_engine_beyond_brute_limit() {
        // m = 30 exceeds the default brute-force limit (26): the old
        // Auto path errored out; the compiled inclusion–exclusion
        // engine answers in polynomial time.
        let mut db = Database::new();
        for i in 0..30 {
            db.add_endo("R", &[&format!("c{i}")]).unwrap();
        }
        db.add_endo("T", &["t0"]).unwrap();
        let u = cqshap_query::parse_ucq("q1() :- R(x); q2() :- T(y)").unwrap();
        let f = db.find_fact("T", &["t0"]).unwrap();
        let v = shapley_value_union(&db, &u, f, &ShapleyOptions::default()).unwrap();
        // 31 symmetric players of an OR game: each gets 1/31.
        assert_eq!(v, rat(1, 31));
        let report = shapley_report_union(&db, &u, &ShapleyOptions::default()).unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.expected_total, BigRational::one());
        assert_eq!(report.entry(f).unwrap().value, rat(1, 31));
    }

    #[test]
    fn union_hierarchical_strategy_errors_name_the_intersection() {
        let db = Database::parse("endo R(a)\nendo S(b)\n").unwrap();
        let f = db.find_fact("R", &["a"]).unwrap();
        let hier = ShapleyOptions {
            strategy: Strategy::Hierarchical,
            ..Default::default()
        };
        // Tractable union: the explicit strategy now succeeds.
        let ok = cqshap_query::parse_ucq("q1() :- R(x); q2() :- S(x)").unwrap();
        assert_eq!(shapley_value_union(&db, &ok, f, &hier).unwrap(), rat(1, 2));
        // Intractable intersection: the error names it; Auto absorbs it
        // into brute force instead of erroring.
        let bad = cqshap_query::parse_ucq("qa() :- R(x); qb() :- R(y), S(z)").unwrap();
        match shapley_value_union(&db, &bad, f, &hier) {
            Err(CoreError::IntractableIntersection { intersection, .. }) => {
                assert_eq!(intersection, "qa ∧ qb");
            }
            other => panic!("expected IntractableIntersection, got {other:?}"),
        }
        let auto = shapley_value_union(&db, &bad, f, &ShapleyOptions::default()).unwrap();
        let p = shapley_by_permutations(&db, AnyQuery::Union(&bad), f, 9).unwrap();
        assert_eq!(auto, p);
    }

    #[test]
    fn union_auto_falls_through_to_exoshap() {
        // The citations disjunct is non-hierarchical but
        // ExoShap-rewritable once Pub and Citations are exogenous
        // relations; m = 30 rules out brute force, so Auto must reach
        // the rewriting rung of the fallback ladder.
        let mut db = Database::new();
        let pub_rel = db.add_relation("Pub", 2).unwrap();
        let cit = db.add_relation("Citations", 2).unwrap();
        db.declare_exogenous_relation(pub_rel).unwrap();
        db.declare_exogenous_relation(cit).unwrap();
        for i in 0..30 {
            db.add_exo("Pub", &[&format!("a{i}"), &format!("p{i}")])
                .unwrap();
            db.add_exo("Citations", &[&format!("p{i}"), &format!("c{i}")])
                .unwrap();
            db.add_endo("Author", &[&format!("a{i}"), &format!("t{i}")])
                .unwrap();
        }
        let u =
            cqshap_query::parse_ucq("q1() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        assert!(matches!(
            cqshap_query::classify_with_exo(
                &u.disjuncts()[0],
                &["Pub", "Citations"].iter().map(|s| s.to_string()).collect()
            ),
            ExactComplexity::TractableViaExoShap
        ));
        let f = db.find_fact("Author", &["a0", "t0"]).unwrap();
        let auto = shapley_value_union(&db, &u, f, &ShapleyOptions::default()).unwrap();
        let exo = shapley_value_union(
            &db,
            &u,
            f,
            &ShapleyOptions {
                strategy: Strategy::ExoShap,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(auto, exo);
        let report = shapley_report_union(&db, &u, &ShapleyOptions::default()).unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.entry(f).unwrap().value, auto);
        let per_fact = shapley_report_union_per_fact(&db, &u, &ShapleyOptions::default()).unwrap();
        assert_eq!(per_fact.entry(f).unwrap().value, auto);
    }

    #[test]
    fn union_exoshap_matches_brute_force() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             endo T(t0)\n",
        )
        .unwrap();
        let u = cqshap_query::parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- T(z)\n",
        )
        .unwrap();
        let exo = ShapleyOptions {
            strategy: Strategy::ExoShap,
            ..Default::default()
        };
        let brute = ShapleyOptions {
            strategy: Strategy::BruteForceSubsets,
            ..Default::default()
        };
        for &f in db.endo_facts() {
            let a = shapley_value_union(&db, &u, f, &exo).unwrap();
            let b = shapley_value_union(&db, &u, f, &brute).unwrap();
            assert_eq!(a, b, "{}", db.render_fact(f));
        }
        let report = shapley_report_union(&db, &u, &exo).unwrap();
        assert!(report.efficiency_holds());
    }

    #[test]
    fn union_report_paths_agree() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nendo Asst(l1, a)\nendo Closed(l1)\n",
        )
        .unwrap();
        let u = cqshap_query::parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap();
        let opts = ShapleyOptions::default();
        let batched = shapley_report_union(&db, &u, &opts).unwrap();
        assert!(batched.efficiency_holds());
        let per_fact = shapley_report_union_per_fact(&db, &u, &opts).unwrap();
        for &f in db.endo_facts() {
            let b = &batched.entry(f).unwrap().value;
            assert_eq!(
                b,
                &per_fact.entry(f).unwrap().value,
                "{}",
                db.render_fact(f)
            );
            let p = shapley_by_permutations(&db, AnyQuery::Union(&u), f, 9).unwrap();
            assert_eq!(b, &p, "{}", db.render_fact(f));
        }
    }
}
