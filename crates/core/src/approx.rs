//! Additive Monte-Carlo approximation of the Shapley value
//! (Section 5.1), plus the anytime stratified estimator behind the
//! degradation ladder.
//!
//! The Shapley value is the expectation, over a uniformly random
//! permutation `σ` of `Dn`, of the marginal contribution
//! `q(Dx ∪ σ_f ∪ {f}) − q(Dx ∪ σ_f) ∈ {−1, 0, 1}`. Averaging over
//! `⌈ln(2/δ)/(2ε²)⌉` sampled permutations gives an *additive*
//! ε-approximation with probability `≥ 1 − δ` by the Hoeffding bound.
//!
//! For positive CQs the "gap property" upgrades this to a multiplicative
//! FPRAS; Theorem 5.1 shows negation destroys that upgrade — Shapley
//! values can be exponentially small, so the sampled estimate of a
//! nonzero value is routinely 0. Experiment E6 exercises exactly this.
//!
//! ## The anytime estimator
//!
//! [`shapley_anytime`] is the budget-aware upgrade: instead of a fixed
//! Hoeffding sample count per fact, it stratifies the permutation
//! measure by the target fact's position (the coalition size `k` is
//! uniform on `0..m`, and conditioned on `k` the preceding coalition is
//! a uniform `k`-subset), maintains running means and variances per
//! stratum, and reports a CLT confidence interval per fact. Refinement
//! is widest-interval-first, so a shared budget concentrates where the
//! uncertainty is; a tripped [`CancelToken`] returns the partial (still
//! valid, just wider) intervals instead of an error; and the
//! [`AnytimeState`] is resumable — a second call tightens the same
//! estimates rather than starting over.
// cqshap-lint: allow-file(no-panic-index) -- samplers index permutation and tally arrays sized to m in the same scope

use std::time::Duration;

use cqshap_db::{Database, FactId, World};
use cqshap_obs::{phase as obs_phase, Histogram, Span};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::anyquery::AnyQuery;
use crate::budget::CancelToken;
use crate::error::CoreError;

/// Parameters of the sampler.
#[derive(Debug, Clone, Copy)]
pub struct SampleParams {
    /// Additive error bound ε ∈ (0, 1).
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Worker threads (`0` = all available).
    pub threads: usize,
}

impl Default for SampleParams {
    fn default() -> Self {
        SampleParams {
            epsilon: 0.05,
            delta: 0.01,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// Rejects out-of-range ε / δ (both must lie in the open unit
/// interval).
fn check_epsilon_delta(epsilon: f64, delta: f64) -> Result<(), CoreError> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::Unsupported(format!(
            "epsilon must be in (0, 1), got {epsilon}"
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(CoreError::Unsupported(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    Ok(())
}

/// The Hoeffding sample count `⌈2·ln(2/δ)/ε²⌉` for marginal
/// contributions in `[-1, 1]`.
///
/// With values in an interval of width 2, Hoeffding gives
/// `Pr[|mean − μ| ≥ ε] ≤ 2·exp(−2·N·ε²/4)`; solving for `N` yields
/// `N ≥ 2·ln(2/δ)/ε²`.
///
/// # Errors
/// [`CoreError::Unsupported`] when ε or δ lies outside `(0, 1)`.
pub fn required_samples(epsilon: f64, delta: f64) -> Result<u64, CoreError> {
    check_epsilon_delta(epsilon, delta)?;
    Ok((2.0 * (2.0 / delta).ln() / (epsilon * epsilon)).ceil() as u64)
}

/// The sampler's output.
#[derive(Debug, Clone)]
pub struct ApproxShapley {
    /// The estimate (mean marginal contribution).
    pub estimate: f64,
    /// Number of sampled permutations.
    pub samples: u64,
    /// Samples where `f` flipped the answer false → true.
    pub positive_flips: u64,
    /// Samples where `f` flipped the answer true → false.
    pub negative_flips: u64,
}

impl ApproxShapley {
    /// Half-width of the Hoeffding confidence interval actually achieved
    /// by `samples` at confidence `1 − delta`.
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        (2.0 * (2.0 / delta).ln() / self.samples as f64).sqrt()
    }
}

/// Estimates `Shapley(D, q, f)` by permutation sampling. Works for any
/// CQ¬ or UCQ¬ (self-joins included).
///
/// # Errors
/// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
/// [`CoreError::Unsupported`] for out-of-range ε / δ.
pub fn shapley_additive_approx(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    params: &SampleParams,
) -> Result<ApproxShapley, CoreError> {
    let samples = required_samples(params.epsilon, params.delta)?;
    shapley_sampled(db, q, f, samples, params.seed, params.threads)
}

/// Estimates with an explicit sample budget.
///
/// # Errors
/// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
/// [`CoreError::Unsupported`] if a sampler worker panicked (the panic
/// is contained and reported instead of crossing the thread scope).
pub fn shapley_sampled(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    samples: u64,
    seed: u64,
    threads: usize,
) -> Result<ApproxShapley, CoreError> {
    let target = db
        .endo_index(f)
        .ok_or_else(|| CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        })?;
    let m = db.endo_count();
    let compiled = q.compile(db);
    // Fan out through the sanctioned `parallel` module so the
    // `ShapleyOptions::threads` cap applies; the `try` variant keeps a
    // worker panic on this side of the scope as a typed error.
    let workers = crate::parallel::resolve_thread_cap(threads)
        .min(samples.max(1) as usize)
        .max(1);
    let per_thread = samples / workers as u64;
    let remainder = samples % workers as u64;
    let tallies = crate::parallel::try_par_map_with(workers, workers, |t| {
        let n = per_thread + u64::from((t as u64) < remainder);
        let thread_seed = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1));
        let mut rng = StdRng::seed_from_u64(thread_seed);
        let mut order: Vec<usize> = (0..m).collect();
        let mut sum = 0i64;
        let (mut pos, mut neg) = (0u64, 0u64);
        for _ in 0..n {
            order.shuffle(&mut rng);
            let mut world = World::empty(db);
            for &p in &order {
                if p == target {
                    break;
                }
                world.insert(db, db.endo_facts()[p]);
            }
            let before = compiled.satisfied(db, &world);
            world.insert(db, f);
            let after = compiled.satisfied(db, &world);
            match (before, after) {
                (false, true) => {
                    sum += 1;
                    pos += 1;
                }
                (true, false) => {
                    sum -= 1;
                    neg += 1;
                }
                _ => {}
            }
        }
        (sum, pos, neg)
    })
    .map_err(|payload| {
        CoreError::Unsupported(format!(
            "a permutation-sampler worker panicked: {}",
            panic_text(payload.as_ref())
        ))
    })?;
    let (mut sum, mut positive_flips, mut negative_flips) = (0i64, 0u64, 0u64);
    for (s, p, n) in tallies {
        sum += s;
        positive_flips += p;
        negative_flips += n;
    }
    Ok(ApproxShapley {
        estimate: if samples == 0 {
            0.0
        } else {
            sum as f64 / samples as f64
        },
        samples,
        positive_flips,
        negative_flips,
    })
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

// ---------------------------------------------------------------------
// Anytime stratified estimation
// ---------------------------------------------------------------------

/// How many position strata the anytime sampler keeps per fact: the
/// coalition-size range `0..m` is partitioned into at most this many
/// contiguous buckets (full per-`k` stratification costs `Θ(m)` strata
/// — quadratic total samples — for no variance benefit at bench sizes).
const MAX_STRATA: usize = 16;

/// Parameters of [`shapley_anytime`].
#[derive(Debug, Clone, Copy)]
pub struct AnytimeParams {
    /// Target half-width of each fact's confidence interval.
    pub epsilon: f64,
    /// Per-fact miscoverage: intervals hold with confidence `1 − δ`.
    pub delta: f64,
    /// RNG seed (deterministic runs, and the stream a resumed state
    /// continues).
    pub seed: u64,
    /// Samples added per refinement step of the widest interval.
    pub batch: u64,
}

impl Default for AnytimeParams {
    fn default() -> Self {
        AnytimeParams {
            epsilon: 0.05,
            delta: 0.05,
            seed: 0xC0FFEE,
            batch: 64,
        }
    }
}

/// Running moments of one (fact, position-stratum) cell.
#[derive(Debug, Clone, Copy, Default)]
struct StratumStats {
    /// Draws taken in this stratum.
    n: u64,
    /// Sum of the sampled marginal contributions.
    sum: f64,
    /// Sum of their squares.
    sumsq: f64,
}

impl StratumStats {
    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Sample variance, conservatively `1` (the bound for values in
    /// `[-1, 1]` centred anywhere) below two draws, and floored at
    /// `1/n` afterwards: marginals take values in `{-1, 0, 1}`, so a
    /// cell whose `n` draws all agreed may still hide a flip of
    /// probability `~1/n` (rule-of-three), worth about that much
    /// variance. Without the floor, two agreeing bootstrap draws
    /// collapse the interval to `±0` around a biased estimate.
    fn variance(&self) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let n = self.n as f64;
        ((self.sumsq - self.sum * self.sum / n) / (n - 1.0)).max(1.0 / n)
    }

    /// This stratum's contribution to the estimator variance.
    fn variance_term(&self, weight: f64) -> f64 {
        weight * weight * self.variance() / self.n.max(1) as f64
    }
}

/// Resumable state of the anytime sampler: per-fact, per-stratum
/// running moments plus the position of the deterministic draw stream.
/// Opaque — obtained empty via [`Default`] and threaded back into
/// [`shapley_anytime`]; invalidated (reset) automatically when the
/// database's endogenous facts changed since it was filled.
#[derive(Debug, Clone, Default)]
pub struct AnytimeState {
    /// The endogenous facts the moments describe, in database order.
    facts: Vec<FactId>,
    /// `[fact][stratum]` running moments.
    stats: Vec<Vec<StratumStats>>,
    /// Half-open coalition-size ranges of the strata.
    strata: Vec<(usize, usize)>,
    /// Total draws taken, advancing the seed stream across resumes.
    draws: u64,
}

impl AnytimeState {
    /// Does this state describe `db`'s current endogenous facts?
    fn matches(&self, db: &Database) -> bool {
        self.facts == db.endo_facts()
    }

    fn fresh(db: &Database) -> AnytimeState {
        let facts: Vec<FactId> = db.endo_facts().to_vec();
        let m = facts.len();
        let buckets = m.clamp(1, MAX_STRATA);
        let strata: Vec<(usize, usize)> = (0..buckets)
            .map(|b| (b * m / buckets, (b + 1) * m / buckets))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        AnytimeState {
            stats: vec![vec![StratumStats::default(); strata.len()]; m],
            facts,
            strata,
            draws: 0,
        }
    }
}

/// One fact's interval estimate within an [`AnytimeReport`].
#[derive(Debug, Clone)]
pub struct FactEstimate {
    /// The fact.
    pub fact: FactId,
    /// The fact, rendered.
    pub rendered: String,
    /// The stratified point estimate of the Shapley value.
    pub estimate: f64,
    /// CLT half-width: the true value lies in
    /// `estimate ± half_width` with confidence `1 − δ`.
    pub half_width: f64,
    /// Draws spent on this fact so far.
    pub samples: u64,
    /// Did the interval reach the requested ±ε?
    pub converged: bool,
}

/// The anytime sampler's output: interval estimates for every
/// endogenous fact, flagged by convergence and budget status.
#[derive(Debug, Clone)]
pub struct AnytimeReport {
    /// Per-fact interval estimates, in database fact order.
    pub entries: Vec<FactEstimate>,
    /// The ε the run refined towards.
    pub epsilon: f64,
    /// The δ the intervals are computed at.
    pub delta: f64,
    /// Draws taken across all facts *in this call* (resumed state's
    /// earlier draws not included).
    pub spent_samples: u64,
    /// Did every fact converge to ±ε?
    pub converged: bool,
    /// Did the budget trip before convergence? (The report is still
    /// valid — the intervals are just wider than requested.)
    pub deadline_hit: bool,
    /// Wall-clock time of this call.
    pub elapsed: Duration,
}

impl AnytimeReport {
    /// The entry for `f`, if `f` is endogenous.
    pub fn entry(&self, f: FactId) -> Option<&FactEstimate> {
        self.entries.iter().find(|e| e.fact == f)
    }
}

/// Acklam's rational approximation of the standard normal quantile
/// function (inverse CDF), accurate to ~1.15e-9 over (0, 1) — more than
/// enough for confidence-interval z-scores.
#[allow(clippy::excessive_precision)] // Acklam's coefficients, verbatim
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// The stratified estimate and CLT half-width of one fact.
fn fact_interval(
    stats: &[StratumStats],
    strata: &[(usize, usize)],
    m: usize,
    z: f64,
) -> (f64, f64, u64) {
    let mut estimate = 0.0;
    let mut variance = 0.0;
    let mut samples = 0;
    for (cell, &(lo, hi)) in stats.iter().zip(strata) {
        let weight = (hi - lo) as f64 / m as f64;
        estimate += weight * cell.mean();
        variance += cell.variance_term(weight);
        samples += cell.n;
    }
    (estimate, z * variance.sqrt(), samples)
}

/// One draw in `stratum` for the fact at endogenous index `target`:
/// sample a coalition size `k` uniformly from the stratum's range, a
/// uniform `k`-subset of the other facts by partial Fisher–Yates, and
/// return the marginal contribution of `f` on top of it.
fn draw_marginal(
    db: &Database,
    compiled: &crate::anyquery::CompiledAnyQuery,
    target: usize,
    f: FactId,
    stratum: (usize, usize),
    rng: &mut StdRng,
    scratch: &mut Vec<usize>,
) -> i64 {
    let m = db.endo_count();
    let k = if stratum.1 - stratum.0 == 1 {
        stratum.0
    } else {
        rng.gen_range(stratum.0..stratum.1)
    };
    scratch.clear();
    scratch.extend((0..m).filter(|&p| p != target));
    let mut world = World::empty(db);
    for i in 0..k {
        let j = rng.gen_range(i..scratch.len());
        scratch.swap(i, j);
        world.insert(db, db.endo_facts()[scratch[i]]);
    }
    let before = compiled.satisfied(db, &world);
    world.insert(db, f);
    let after = compiled.satisfied(db, &world);
    after as i64 - before as i64
}

// Sampler-exit distributions: how the draws spread over the strata and
// how tight the per-fact intervals ended up (ppm of the unit range).
static STRATUM_DRAWS: Histogram = Histogram::new(obs_phase::HIST_ANYTIME_STRATUM_DRAWS);
static HALF_WIDTH_PPM: Histogram = Histogram::new(obs_phase::HIST_ANYTIME_HALF_WIDTH_PPM);

/// Anytime interval estimation of every endogenous fact's Shapley
/// value (see the [module docs](self)). `state` is resumed when it
/// matches the database's current endogenous facts and reset
/// otherwise; pass `&mut None` for one-shot use.
///
/// A tripped `cancel` token is *not* an error here: the report returns
/// with [`AnytimeReport::deadline_hit`] set and whatever interval
/// widths the spent budget bought.
///
/// # Errors
/// [`CoreError::Unsupported`] for out-of-range ε / δ.
pub fn shapley_anytime(
    db: &Database,
    q: AnyQuery<'_>,
    params: &AnytimeParams,
    cancel: Option<&CancelToken>,
    state_slot: &mut Option<AnytimeState>,
) -> Result<AnytimeReport, CoreError> {
    let _span = Span::enter(obs_phase::ANYTIME);
    check_epsilon_delta(params.epsilon, params.delta)?;
    let started = crate::budget::Stopwatch::start();
    let m = db.endo_count();
    let z = inverse_normal_cdf(1.0 - params.delta / 2.0);
    if m == 0 {
        return Ok(AnytimeReport {
            entries: Vec::new(),
            epsilon: params.epsilon,
            delta: params.delta,
            spent_samples: 0,
            converged: true,
            deadline_hit: false,
            elapsed: started.elapsed(),
        });
    }
    if !state_slot.as_ref().is_some_and(|s| s.matches(db)) {
        *state_slot = Some(AnytimeState::fresh(db));
    }
    // cqshap-lint: allow(no-panic) -- the slot was filled with Some immediately above
    let state = state_slot.as_mut().expect("installed above");
    let compiled = q.compile(db);
    let strata = state.strata.clone();
    let mut scratch: Vec<usize> = Vec::with_capacity(m);
    let mut spent = 0u64;
    let mut deadline_hit = false;
    // A fresh deterministic stream per draw position: resuming replays
    // nothing and repeats nothing.
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(state.draws));

    let tripped = |spent: u64| cancel.is_some_and(|token| token.charge(spent.max(1)));

    // Phase 1: bootstrap every stratum to two draws, so every variance
    // is a sample variance (interleaved fact-major so an early trip
    // still spreads draws across facts).
    let bootstrap_span = Span::enter(obs_phase::ANYTIME_BOOTSTRAP);
    'bootstrap: for round in 0..2u64 {
        for target in 0..m {
            if state.stats[target].iter().all(|s| s.n > round) {
                continue;
            }
            if tripped(strata.len() as u64) {
                deadline_hit = true;
                break 'bootstrap;
            }
            let f = state.facts[target];
            for (si, &stratum) in strata.iter().enumerate() {
                let cell = &mut state.stats[target][si];
                if cell.n > round {
                    continue;
                }
                let x =
                    draw_marginal(db, &compiled, target, f, stratum, &mut rng, &mut scratch) as f64;
                cell.n += 1;
                cell.sum += x;
                cell.sumsq += x * x;
                spent += 1;
                state.draws += 1;
            }
        }
    }

    drop(bootstrap_span);

    // Phase 2: refine the widest unconverged interval, one batch at a
    // time, spending each batch on the stratum contributing the most
    // variance (weighted Neyman-style allocation, greedily).
    let refine_span = Span::enter(obs_phase::ANYTIME_REFINE);
    while !deadline_hit {
        let mut widest: Option<(usize, f64)> = None;
        for target in 0..m {
            let (_, hw, _) = fact_interval(&state.stats[target], &strata, m, z);
            if hw > params.epsilon && widest.is_none_or(|(_, w)| hw > w) {
                widest = Some((target, hw));
            }
        }
        let Some((target, _)) = widest else {
            break; // every fact is within ±ε
        };
        if tripped(params.batch.max(1)) {
            deadline_hit = true;
            break;
        }
        let (si, _) = state.stats[target]
            .iter()
            .zip(&strata)
            .map(|(cell, &(lo, hi))| cell.variance_term((hi - lo) as f64 / m as f64))
            .enumerate()
            .fold(
                (0, f64::MIN),
                |best, (i, term)| {
                    if term > best.1 {
                        (i, term)
                    } else {
                        best
                    }
                },
            );
        let f = state.facts[target];
        for _ in 0..params.batch.max(1) {
            let x =
                draw_marginal(db, &compiled, target, f, strata[si], &mut rng, &mut scratch) as f64;
            let cell = &mut state.stats[target][si];
            cell.n += 1;
            cell.sum += x;
            cell.sumsq += x * x;
            spent += 1;
            state.draws += 1;
        }
    }

    drop(refine_span);

    // Sampler-exit observability: cumulative draws per stratum and the
    // final interval widths, recorded once per call.
    if cqshap_obs::enabled() {
        (0..strata.len()).for_each(|si| {
            let draws: u64 = state
                .stats
                .iter()
                .map(|cells| cells.get(si).map_or(0, |c| c.n))
                .sum();
            STRATUM_DRAWS.record(draws);
        });
    }

    let mut entries = Vec::with_capacity(m);
    let mut converged = true;
    for target in 0..m {
        let (estimate, half_width, samples) = fact_interval(&state.stats[target], &strata, m, z);
        let fact = state.facts[target];
        let done = half_width <= params.epsilon;
        converged &= done;
        if cqshap_obs::enabled() {
            HALF_WIDTH_PPM.record((half_width * 1e6) as u64);
        }
        entries.push(FactEstimate {
            fact,
            rendered: db.render_fact(fact),
            estimate,
            half_width,
            samples,
            converged: done,
        });
    }
    Ok(AnytimeReport {
        entries,
        epsilon: params.epsilon,
        delta: params.delta,
        spent_samples: spent,
        converged,
        deadline_hit,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use cqshap_query::parse_cq;

    #[test]
    fn sample_count_formula() {
        // ε = 0.1, δ = 0.05: 2·ln(40)/0.01 = 737.7…
        assert_eq!(required_samples(0.1, 0.05).unwrap(), 738);
        assert!(required_samples(0.01, 0.01).unwrap() > required_samples(0.1, 0.01).unwrap());
    }

    #[test]
    fn bad_epsilon_and_delta_are_rejected() {
        for (eps, delta) in [(0.0, 0.5), (1.0, 0.5), (-0.1, 0.5), (0.1, 0.0), (0.1, 1.0)] {
            assert!(
                matches!(required_samples(eps, delta), Err(CoreError::Unsupported(_))),
                "({eps}, {delta}) should be rejected"
            );
        }
    }

    #[test]
    fn estimates_converge_to_exact_value() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\n\
             endo Reg(a, c1)\nendo Reg(b, c2)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        for &f in db.endo_facts() {
            let exact = crate::shapley::shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9)
                .unwrap()
                .to_f64();
            let approx = shapley_sampled(&db, AnyQuery::Cq(&q), f, 20_000, 42, 0).unwrap();
            assert!(
                (approx.estimate - exact).abs() < 0.03,
                "{}: exact {exact} vs estimate {}",
                db.render_fact(f),
                approx.estimate
            );
        }
    }

    #[test]
    fn negative_values_estimated() {
        // TA(a) has Shapley -1/2 for q() :- Stud(x), !TA(x), Reg(x,y1)
        // on a 2-fact database {TA(a), Reg(a, c)}.
        let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let f = db.find_fact("TA", &["a"]).unwrap();
        let r = shapley_sampled(&db, AnyQuery::Cq(&q), f, 10_000, 7, 2).unwrap();
        assert!(r.negative_flips > 0);
        assert_eq!(r.positive_flips, 0);
        assert!((r.estimate + 0.5).abs() < 0.05, "estimate {}", r.estimate);
    }

    #[test]
    fn deterministic_given_seed() {
        let db = Database::parse("endo R(a)\nendo R(b)\nexo S(a, c)\n").unwrap();
        let q = parse_cq("q() :- R(x), S(x, y)").unwrap();
        let f = db.find_fact("R", &["a"]).unwrap();
        let a = shapley_sampled(&db, AnyQuery::Cq(&q), f, 1000, 99, 1).unwrap();
        let b = shapley_sampled(&db, AnyQuery::Cq(&q), f, 1000, 99, 1).unwrap();
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn inverse_normal_quantiles_match_tables() {
        // Standard z-scores to 4 decimal places.
        for (p, z) in [
            (0.975, 1.959964),
            (0.95, 1.644854),
            (0.995, 2.575829),
            (0.5, 0.0),
            (0.025, -1.959964),
        ] {
            assert!(
                (inverse_normal_cdf(p) - z).abs() < 1e-4,
                "Φ⁻¹({p}) = {} vs {z}",
                inverse_normal_cdf(p)
            );
        }
    }

    #[test]
    fn anytime_intervals_cover_exact_values() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\n\
             endo Reg(a, c1)\nendo Reg(b, c2)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        // δ = 0.002: the sequential stopping rule eats into nominal
        // coverage, so the test asserts containment at a confidence
        // level with real headroom.
        let params = AnytimeParams {
            epsilon: 0.04,
            delta: 0.002,
            seed: 11,
            batch: 64,
        };
        let mut state = None;
        let report = shapley_anytime(&db, AnyQuery::Cq(&q), &params, None, &mut state).unwrap();
        assert!(report.converged);
        assert!(!report.deadline_hit);
        for entry in &report.entries {
            let exact =
                crate::shapley::shapley_by_permutations(&db, AnyQuery::Cq(&q), entry.fact, 9)
                    .unwrap()
                    .to_f64();
            assert!(entry.converged);
            assert!(entry.half_width <= params.epsilon);
            assert!(
                (entry.estimate - exact).abs() <= entry.half_width + 1e-12,
                "{}: exact {exact} outside {} ± {}",
                entry.rendered,
                entry.estimate,
                entry.half_width
            );
        }
    }

    #[test]
    fn anytime_resumes_and_tightens() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        // First call under a tiny work budget: wide intervals.
        let tight_budget = Budget::work_units(8).token();
        let params = AnytimeParams {
            epsilon: 0.02,
            delta: 0.05,
            seed: 5,
            batch: 32,
        };
        let mut state = None;
        let first = shapley_anytime(
            &db,
            AnyQuery::Cq(&q),
            &params,
            Some(&tight_budget),
            &mut state,
        )
        .unwrap();
        assert!(first.deadline_hit);
        assert!(!first.converged);
        // Second call, unlimited, resumes the same state and converges.
        let second = shapley_anytime(&db, AnyQuery::Cq(&q), &params, None, &mut state).unwrap();
        assert!(second.converged, "resumed run should converge");
        for (a, b) in first.entries.iter().zip(&second.entries) {
            assert_eq!(a.fact, b.fact);
            assert!(
                b.samples >= a.samples,
                "resume must keep earlier draws ({} < {})",
                b.samples,
                a.samples
            );
            assert!(b.half_width <= a.half_width + 1e-12);
        }
    }

    #[test]
    fn anytime_state_resets_when_facts_change() {
        let mut db = Database::parse("endo R(a)\nexo S(a, c)\n").unwrap();
        let q = parse_cq("q() :- R(x), S(x, y)").unwrap();
        let params = AnytimeParams::default();
        let mut state = None;
        shapley_anytime(&db, AnyQuery::Cq(&q), &params, None, &mut state).unwrap();
        db.add_endo("R", &["b"]).unwrap();
        let report = shapley_anytime(&db, AnyQuery::Cq(&q), &params, None, &mut state).unwrap();
        assert_eq!(report.entries.len(), 2, "state rebuilt for the new facts");
    }
}
