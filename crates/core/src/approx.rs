//! Additive Monte-Carlo approximation of the Shapley value
//! (Section 5.1).
//!
//! The Shapley value is the expectation, over a uniformly random
//! permutation `σ` of `Dn`, of the marginal contribution
//! `q(Dx ∪ σ_f ∪ {f}) − q(Dx ∪ σ_f) ∈ {−1, 0, 1}`. Averaging over
//! `⌈ln(2/δ)/(2ε²)⌉` sampled permutations gives an *additive*
//! ε-approximation with probability `≥ 1 − δ` by the Hoeffding bound.
//!
//! For positive CQs the "gap property" upgrades this to a multiplicative
//! FPRAS; Theorem 5.1 shows negation destroys that upgrade — Shapley
//! values can be exponentially small, so the sampled estimate of a
//! nonzero value is routinely 0. Experiment E6 exercises exactly this.

use cqshap_db::{Database, FactId, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::anyquery::AnyQuery;
use crate::error::CoreError;

/// Parameters of the sampler.
#[derive(Debug, Clone, Copy)]
pub struct SampleParams {
    /// Additive error bound ε ∈ (0, 1).
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Worker threads (`0` = all available).
    pub threads: usize,
}

impl Default for SampleParams {
    fn default() -> Self {
        SampleParams {
            epsilon: 0.05,
            delta: 0.01,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// The Hoeffding sample count `⌈ln(2/δ)/(2ε²)⌉` for marginal
/// contributions in `[-1, 1]`.
///
/// With values in an interval of width 2, Hoeffding gives
/// `Pr[|mean − μ| ≥ ε] ≤ 2·exp(−2·N·ε²/4)`; solving for `N` yields
/// `N ≥ 2·ln(2/δ)/ε²`.
pub fn required_samples(epsilon: f64, delta: f64) -> u64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (2.0 * (2.0 / delta).ln() / (epsilon * epsilon)).ceil() as u64
}

/// The sampler's output.
#[derive(Debug, Clone)]
pub struct ApproxShapley {
    /// The estimate (mean marginal contribution).
    pub estimate: f64,
    /// Number of sampled permutations.
    pub samples: u64,
    /// Samples where `f` flipped the answer false → true.
    pub positive_flips: u64,
    /// Samples where `f` flipped the answer true → false.
    pub negative_flips: u64,
}

impl ApproxShapley {
    /// Half-width of the Hoeffding confidence interval actually achieved
    /// by `samples` at confidence `1 − delta`.
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        (2.0 * (2.0 / delta).ln() / self.samples as f64).sqrt()
    }
}

/// Estimates `Shapley(D, q, f)` by permutation sampling. Works for any
/// CQ¬ or UCQ¬ (self-joins included).
///
/// # Errors
/// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`.
pub fn shapley_additive_approx(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    params: &SampleParams,
) -> Result<ApproxShapley, CoreError> {
    let samples = required_samples(params.epsilon, params.delta);
    shapley_sampled(db, q, f, samples, params.seed, params.threads)
}

/// Estimates with an explicit sample budget.
pub fn shapley_sampled(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    samples: u64,
    seed: u64,
    threads: usize,
) -> Result<ApproxShapley, CoreError> {
    let target = db
        .endo_index(f)
        .ok_or_else(|| CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        })?;
    let m = db.endo_count();
    let compiled = q.compile(db);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(16)
    } else {
        threads
    };
    let threads = threads.min(samples.max(1) as usize).max(1);
    let per_thread = samples / threads as u64;
    let remainder = samples % threads as u64;
    let mut tallies: Vec<(i64, u64, u64)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let compiled = &compiled;
            let n = per_thread + u64::from((t as u64) < remainder);
            let thread_seed = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1));
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(thread_seed);
                let mut order: Vec<usize> = (0..m).collect();
                let mut sum = 0i64;
                let (mut pos, mut neg) = (0u64, 0u64);
                for _ in 0..n {
                    order.shuffle(&mut rng);
                    let mut world = World::empty(db);
                    for &p in &order {
                        if p == target {
                            break;
                        }
                        world.insert(db, db.endo_facts()[p]);
                    }
                    let before = compiled.satisfied(db, &world);
                    world.insert(db, f);
                    let after = compiled.satisfied(db, &world);
                    match (before, after) {
                        (false, true) => {
                            sum += 1;
                            pos += 1;
                        }
                        (true, false) => {
                            sum -= 1;
                            neg += 1;
                        }
                        _ => {}
                    }
                }
                (sum, pos, neg)
            }));
        }
        tallies = handles
            .into_iter()
            .map(|h| h.join().expect("sampler panicked"))
            .collect();
    });
    let sum: i64 = tallies.iter().map(|t| t.0).sum();
    let positive_flips: u64 = tallies.iter().map(|t| t.1).sum();
    let negative_flips: u64 = tallies.iter().map(|t| t.2).sum();
    Ok(ApproxShapley {
        estimate: if samples == 0 {
            0.0
        } else {
            sum as f64 / samples as f64
        },
        samples,
        positive_flips,
        negative_flips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    #[test]
    fn sample_count_formula() {
        // ε = 0.1, δ = 0.05: 2·ln(40)/0.01 = 737.7…
        assert_eq!(required_samples(0.1, 0.05), 738);
        assert!(required_samples(0.01, 0.01) > required_samples(0.1, 0.01));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        required_samples(0.0, 0.5);
    }

    #[test]
    fn estimates_converge_to_exact_value() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\n\
             endo Reg(a, c1)\nendo Reg(b, c2)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        for &f in db.endo_facts() {
            let exact = crate::shapley::shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9)
                .unwrap()
                .to_f64();
            let approx = shapley_sampled(&db, AnyQuery::Cq(&q), f, 20_000, 42, 0).unwrap();
            assert!(
                (approx.estimate - exact).abs() < 0.03,
                "{}: exact {exact} vs estimate {}",
                db.render_fact(f),
                approx.estimate
            );
        }
    }

    #[test]
    fn negative_values_estimated() {
        // TA(a) has Shapley -1/2 for q() :- Stud(x), !TA(x), Reg(x,y1)
        // on a 2-fact database {TA(a), Reg(a, c)}.
        let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let f = db.find_fact("TA", &["a"]).unwrap();
        let r = shapley_sampled(&db, AnyQuery::Cq(&q), f, 10_000, 7, 2).unwrap();
        assert!(r.negative_flips > 0);
        assert_eq!(r.positive_flips, 0);
        assert!((r.estimate + 0.5).abs() < 0.05, "estimate {}", r.estimate);
    }

    #[test]
    fn deterministic_given_seed() {
        let db = Database::parse("endo R(a)\nendo R(b)\nexo S(a, c)\n").unwrap();
        let q = parse_cq("q() :- R(x), S(x, y)").unwrap();
        let f = db.find_fact("R", &["a"]).unwrap();
        let a = shapley_sampled(&db, AnyQuery::Cq(&q), f, 1000, 99, 1).unwrap();
        let b = shapley_sampled(&db, AnyQuery::Cq(&q), f, 1000, 99, 1).unwrap();
        assert_eq!(a.estimate, b.estimate);
    }
}
