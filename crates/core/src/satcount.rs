//! Counting satisfying coalitions: `|Sat(D, q, k)|`.
//!
//! `Sat(D, q, k)` is the set of `k`-subsets `E ⊆ Dn` with `Dx ∪ E ⊨ q`.
//! Livshits et al. reduce the Shapley value to these counts (see
//! [`crate::shapley`]); Lemma 3.2 of the paper extends their `CntSat`
//! algorithm to hierarchical self-join-free CQ¬s by fixing the ground
//! base case. [`HierarchicalCounter`] implements that algorithm:
//!
//! 1. **Ground base case** — with all atoms ground, a subset satisfies
//!    the query iff it contains every endogenous fact matching a positive
//!    atom and none matching a negative atom (and no *exogenous* fact
//!    matches a negative atom); the count is a single binomial.
//! 2. **Disconnected query** — components touch disjoint relations
//!    (self-join-freeness), so counts compose by convolution.
//! 3. **Connected query with variables** — a *root variable* occurs in
//!    every atom (a structural fact about connected hierarchical
//!    queries); each fact is consistent with at most one root value, so
//!    the *unsatisfying* counts factor as a convolution over root values
//!    (facts with no satisfiable root value are free "junk" choices),
//!    and satisfaction is obtained by complementing.
//!
//! [`BruteForceCounter`] enumerates all `2^|Dn|` worlds and serves as the
//! oracle for the provably `FP^{#P}`-hard queries (at small scale) and as
//! the ground truth in tests.

use cqshap_db::{ConstId, Database, FactId, World};
use cqshap_numeric::{binomial, BigUint};
use cqshap_query::{has_self_join, is_hierarchical, ConjunctiveQuery, Term};

use crate::anyquery::AnyQuery;
use crate::error::CoreError;

/// Anything that can compute the full vector
/// `[|Sat(D,q,0)|, …, |Sat(D,q,|Dn|)|]`.
///
/// Oracles must be `Sync`: [`crate::shapley::shapley_report`] fans the
/// per-fact computations out across threads.
pub trait SatCountOracle: Sync {
    /// Computes `counts[k] = |Sat(D, q, k)|` for `k = 0 ..= |Dn|`.
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError>;
}

// ---------------------------------------------------------------------
// Internal pattern representation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PTerm {
    Var(u32),
    Const(ConstId),
}

#[derive(Debug, Clone)]
struct PAtom {
    negated: bool,
    terms: Vec<PTerm>,
}

impl PAtom {
    fn has_vars(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, PTerm::Var(_)))
    }

    fn vars(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                PTerm::Var(v) => Some(*v),
                PTerm::Const(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Does `fact_tuple` match this pattern (constants agree, positions
    /// sharing one variable agree)?
    fn matches(&self, values: &[ConstId]) -> bool {
        debug_assert_eq!(values.len(), self.terms.len());
        let mut bound: Vec<(u32, ConstId)> = Vec::new();
        for (t, &val) in self.terms.iter().zip(values) {
            match t {
                PTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                PTerm::Var(v) => match bound.iter().find(|(bv, _)| bv == v) {
                    Some((_, bval)) => {
                        if *bval != val {
                            return false;
                        }
                    }
                    None => bound.push((*v, val)),
                },
            }
        }
        true
    }

    /// The value a matching fact assigns to variable `v` (which must
    /// occur in this atom).
    fn value_of(&self, v: u32, values: &[ConstId]) -> ConstId {
        for (t, &val) in self.terms.iter().zip(values) {
            if *t == PTerm::Var(v) {
                return val;
            }
        }
        unreachable!("variable {v} does not occur in atom");
    }

    fn substitute(&self, v: u32, c: ConstId) -> PAtom {
        PAtom {
            negated: self.negated,
            terms: self
                .terms
                .iter()
                .map(|t| {
                    if *t == PTerm::Var(v) {
                        PTerm::Const(c)
                    } else {
                        *t
                    }
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Vector helpers
// ---------------------------------------------------------------------

/// `[C(n,0), …, C(n,n)]`.
fn binom_vec(n: usize) -> Vec<BigUint> {
    (0..=n).map(|k| binomial(n, k)).collect()
}

/// Convolution: `out[k] = Σ_i a[i]·b[k-i]` — composing counts over
/// disjoint fact sets.
fn convolve(a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    let mut out = vec![BigUint::zero(); a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            if !y.is_zero() {
                out[i + j] += &(x * y);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// The hierarchical counter (CntSat, Lemma 3.2)
// ---------------------------------------------------------------------

/// Polynomial-time `|Sat|` counting for hierarchical self-join-free CQ¬s.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalCounter;

impl SatCountOracle for HierarchicalCounter {
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError> {
        let cq = q.as_cq().ok_or_else(|| {
            CoreError::Unsupported("the hierarchical counter handles single CQ¬s only".into())
        })?;
        count_sat_hierarchical(db, cq)
    }
}

/// Computes `[|Sat(D,q,k)|]_{k=0..|Dn|}` for a hierarchical
/// self-join-free CQ¬.
///
/// # Errors
/// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`] when
/// the structural preconditions fail.
pub fn count_sat_hierarchical(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Vec<BigUint>, CoreError> {
    if has_self_join(q) {
        return Err(CoreError::NotSelfJoinFree {
            query: q.to_string(),
        });
    }
    if !is_hierarchical(q) {
        return Err(CoreError::NotHierarchical {
            query: q.to_string(),
        });
    }
    let m = db.endo_count();

    // Resolve atoms against the database. A positive atom over an
    // unknown relation or constant is unsatisfiable; a negative one can
    // never fire and is dropped.
    let mut atoms: Vec<PAtom> = Vec::new();
    let mut scopes: Vec<Vec<FactId>> = Vec::new();
    let mut free_endo = m;
    for atom in q.atoms() {
        let rel = db.schema().id(&atom.relation);
        let mut unknown_const = false;
        let terms: Vec<PTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => PTerm::Var(v.0),
                Term::Const(name) => match db.interner().get(name) {
                    Some(c) => PTerm::Const(c),
                    None => {
                        unknown_const = true;
                        PTerm::Var(u32::MAX) // placeholder, never used
                    }
                },
            })
            .collect();
        let missing = rel.is_none() || unknown_const;
        if missing {
            if atom.negated {
                continue; // never fires
            }
            return Ok(vec![BigUint::zero(); m + 1]); // unsatisfiable
        }
        let rel = rel.expect("checked above");
        if db.schema().arity(rel) != terms.len() {
            return Err(CoreError::Unsupported(format!(
                "atom {} disagrees with the arity of relation {}",
                q.render_atom(atom),
                atom.relation
            )));
        }
        let p = PAtom {
            negated: atom.negated,
            terms,
        };
        // Scope: facts of the relation matching the pattern. Non-matching
        // endogenous facts can never matter — they stay free.
        let mut scope = Vec::new();
        let mut scope_endo = 0usize;
        for &fid in db.relation_facts(rel) {
            if p.matches(db.fact(fid).tuple.values()) {
                if db.fact(fid).provenance.is_endogenous() {
                    scope_endo += 1;
                }
                scope.push(fid);
            }
        }
        free_endo = free_endo
            .checked_sub(scope_endo)
            .expect("scoped endogenous facts are disjoint across sjf atoms");
        atoms.push(p);
        scopes.push(scope);
    }

    if atoms.is_empty() {
        // Every atom was a dropped (vacuous) negation: q is a tautology.
        return Ok(binom_vec(m));
    }

    let core = rec(db, &atoms, &scopes)?;
    Ok(convolve(&core, &binom_vec(free_endo)))
}

fn scope_endo_count(db: &Database, scopes: &[Vec<FactId>]) -> usize {
    scopes
        .iter()
        .flatten()
        .filter(|&&f| db.fact(f).provenance.is_endogenous())
        .count()
}

/// Recursive CntSat. Invariant: every fact in `scopes[i]` matches
/// `atoms[i]`'s pattern; relations across atoms are distinct.
fn rec(db: &Database, atoms: &[PAtom], scopes: &[Vec<FactId>]) -> Result<Vec<BigUint>, CoreError> {
    debug_assert_eq!(atoms.len(), scopes.len());
    let total_endo = scope_endo_count(db, scopes);

    // Case 1: fully ground.
    if atoms.iter().all(|a| !a.has_vars()) {
        return Ok(base_case(db, atoms, scopes, total_endo));
    }

    // Case 2: split into connected components (shared variables).
    let components = connected_components(atoms);
    if components.len() > 1 {
        let mut acc = vec![BigUint::one()];
        for comp in components {
            let sub_atoms: Vec<PAtom> = comp.iter().map(|&i| atoms[i].clone()).collect();
            let sub_scopes: Vec<Vec<FactId>> = comp.iter().map(|&i| scopes[i].clone()).collect();
            let sub = rec(db, &sub_atoms, &sub_scopes)?;
            acc = convolve(&acc, &sub);
        }
        debug_assert_eq!(acc.len(), total_endo + 1);
        return Ok(acc);
    }

    // Case 3: connected, at least one variable → root variable exists.
    let root = find_root_var(atoms).ok_or_else(|| {
        CoreError::Unsupported(
            "no root variable in a connected sub-query: the query is not hierarchical".into(),
        )
    })?;

    // Root values with *full positive support* are the candidates; all
    // other facts are junk (they can never participate in a satisfying
    // homomorphism of this sub-query).
    let mut candidates: Option<Vec<ConstId>> = None;
    for (atom, scope) in atoms.iter().zip(scopes) {
        if atom.negated {
            continue;
        }
        let mut vals: Vec<ConstId> = scope
            .iter()
            .map(|&f| atom.value_of(root, db.fact(f).tuple.values()))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        candidates = Some(match candidates {
            None => vals,
            Some(prev) => prev
                .into_iter()
                .filter(|c| vals.binary_search(c).is_ok())
                .collect(),
        });
    }
    let candidates = candidates.ok_or_else(|| {
        CoreError::Unsupported("connected sub-query with no positive atom".into())
    })?;

    let mut unsat = vec![BigUint::one()];
    let mut grouped_endo = 0usize;
    for &c in &candidates {
        let sub_atoms: Vec<PAtom> = atoms.iter().map(|a| a.substitute(root, c)).collect();
        let sub_scopes: Vec<Vec<FactId>> = atoms
            .iter()
            .zip(scopes)
            .map(|(atom, scope)| {
                scope
                    .iter()
                    .copied()
                    .filter(|&f| atom.value_of(root, db.fact(f).tuple.values()) == c)
                    .collect()
            })
            .collect();
        let group_endo = scope_endo_count(db, &sub_scopes);
        grouped_endo += group_endo;
        let sat_c = rec(db, &sub_atoms, &sub_scopes)?;
        debug_assert_eq!(sat_c.len(), group_endo + 1);
        let unsat_c: Vec<BigUint> = (0..=group_endo)
            .map(|j| {
                binomial(group_endo, j)
                    .checked_sub(&sat_c[j])
                    .expect("sat count bounded by C(n, j)")
            })
            .collect();
        unsat = convolve(&unsat, &unsat_c);
    }
    let junk = total_endo - grouped_endo;
    unsat = convolve(&unsat, &binom_vec(junk));
    debug_assert_eq!(unsat.len(), total_endo + 1);
    Ok((0..=total_endo)
        .map(|k| {
            binomial(total_endo, k)
                .checked_sub(&unsat[k])
                .expect("unsat count bounded by C(n, k)")
        })
        .collect())
}

/// Ground base case (the Lemma 3.2 modification): the subset must
/// contain every endogenous positive-atom fact, avoid every endogenous
/// negative-atom fact, and fail outright when a positive fact is absent
/// or a negative fact is exogenous.
fn base_case(
    db: &Database,
    atoms: &[PAtom],
    scopes: &[Vec<FactId>],
    total_endo: usize,
) -> Vec<BigUint> {
    let zeros = || vec![BigUint::zero(); total_endo + 1];
    let mut required = 0usize;
    let mut forbidden = 0usize;
    for (atom, scope) in atoms.iter().zip(scopes) {
        debug_assert!(scope.len() <= 1, "ground pattern matches at most one fact");
        match (atom.negated, scope.first()) {
            (false, None) => return zeros(),
            (false, Some(&f)) => {
                if db.fact(f).provenance.is_endogenous() {
                    required += 1;
                }
            }
            (true, None) => {}
            (true, Some(&f)) => {
                if db.fact(f).provenance.is_endogenous() {
                    forbidden += 1;
                } else {
                    return zeros();
                }
            }
        }
    }
    let free = total_endo - required - forbidden;
    (0..=total_endo)
        .map(|k| {
            if k < required || k > required + free {
                BigUint::zero()
            } else {
                binomial(free, k - required)
            }
        })
        .collect()
}

/// Connected components of atoms under the shares-a-variable relation.
fn connected_components(atoms: &[PAtom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, a: usize) -> usize {
        if parent[a] == a {
            a
        } else {
            let r = find(parent, parent[a]);
            parent[a] = r;
            r
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            let vi = atoms[i].vars();
            let shares = atoms[j].vars().iter().any(|v| vi.binary_search(v).is_ok());
            if shares {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut comps: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        comps.entry(r).or_default().push(i);
    }
    comps.into_values().collect()
}

/// A variable occurring in every atom, if any.
fn find_root_var(atoms: &[PAtom]) -> Option<u32> {
    let first = atoms.first()?.vars();
    first
        .into_iter()
        .find(|v| atoms.iter().all(|a| a.vars().binary_search(v).is_ok()))
}

// ---------------------------------------------------------------------
// Brute force
// ---------------------------------------------------------------------

/// `|Sat|` counting by explicit enumeration of all `2^|Dn|` worlds.
///
/// The ground-truth oracle for tests, and the only exact option for the
/// queries the dichotomies classify as `FP^{#P}`-hard. Enumeration is
/// parallelized across threads for larger universes.
#[derive(Debug, Clone, Copy)]
pub struct BruteForceCounter {
    /// Maximum `|Dn|` accepted (default [`BruteForceCounter::DEFAULT_LIMIT`]).
    pub limit: usize,
}

impl BruteForceCounter {
    /// Default cap on `|Dn|` (2^26 worlds ≈ seconds of work).
    pub const DEFAULT_LIMIT: usize = 26;

    /// A counter with the default limit.
    pub fn new() -> Self {
        BruteForceCounter {
            limit: Self::DEFAULT_LIMIT,
        }
    }
}

impl Default for BruteForceCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl SatCountOracle for BruteForceCounter {
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError> {
        let m = db.endo_count();
        if m > self.limit {
            return Err(CoreError::TooManyEndogenousFacts {
                count: m,
                limit: self.limit,
            });
        }
        let compiled = q.compile(db);
        let total: u64 = 1u64 << m;
        let threads = if m >= 18 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(16)
        } else {
            1
        };
        let chunk = total.div_ceil(threads as u64);
        let mut per_thread: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let compiled = &compiled;
                let lo = t as u64 * chunk;
                let hi = (lo + chunk).min(total);
                handles.push(s.spawn(move || {
                    let mut counts = vec![0u64; m + 1];
                    let mut world = World::empty(db);
                    for mask in lo..hi {
                        world.assign_mask(mask);
                        if compiled.satisfied(db, &world) {
                            counts[mask.count_ones() as usize] += 1;
                        }
                    }
                    counts
                }));
            }
            per_thread = handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect();
        });
        let mut out = vec![BigUint::zero(); m + 1];
        for counts in per_thread {
            for (k, c) in counts.into_iter().enumerate() {
                out[k] += &BigUint::from_u64(c);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    fn counts_match(db: &Database, q: &ConjunctiveQuery) {
        let fast = count_sat_hierarchical(db, q).unwrap();
        let slow = BruteForceCounter::new()
            .counts(db, AnyQuery::Cq(q))
            .unwrap();
        assert_eq!(fast, slow, "query {q} on\n{db}");
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    #[test]
    fn q1_on_running_example() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        counts_match(&db, &q1);
        // Spot value: every world containing Reg(Caroline, DB) satisfies;
        // |Sat| at k = |Dn| = 8 is 1.
        let v = count_sat_hierarchical(&db, &q1).unwrap();
        assert_eq!(v.len(), 9);
        assert_eq!(v[8], BigUint::one());
        assert_eq!(v[0], BigUint::zero());
    }

    #[test]
    fn purely_positive_hierarchical() {
        let db = university();
        for text in [
            "q() :- Reg(x, y)",
            "q() :- Stud(x), Reg(x, y)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- Reg(x, 'OS')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn negation_heavy_hierarchical() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), !Reg(x, 'OS')",
            "q() :- Reg(x, y), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn ground_queries() {
        let db = university();
        for text in [
            "q() :- TA('Adam')",
            "q() :- !TA('Adam')",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- Stud('Adam')",
            "q() :- !Stud('Adam')",
            "q() :- TA('Nobody')",
            "q() :- !TA('Nobody')",
            "q() :- Ghost('x')",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn disconnected_queries() {
        let db = university();
        for text in [
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- TA(x), Course(y, f), !Reg('Caroline', y)",
            "q() :- Reg(x, 'OS'), Reg2(y, 'DB')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn repeated_variable_patterns() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        db.add_endo("E", &["b", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        for text in ["q() :- E(x, x)", "q() :- R(x), !E(x, x)"] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn rejects_non_hierarchical_and_self_joins() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y), Course(y, z)").unwrap();
        assert!(matches!(
            count_sat_hierarchical(&db, &q),
            Err(CoreError::NotHierarchical { .. })
        ));
        let sj = parse_cq("q() :- Reg(x, y), Reg(y, x)").unwrap();
        assert!(matches!(
            count_sat_hierarchical(&db, &sj),
            Err(CoreError::NotSelfJoinFree { .. })
        ));
    }

    #[test]
    fn brute_force_limit() {
        let mut db = Database::new();
        for i in 0..5 {
            db.add_endo("R", &[&format!("c{i}")]).unwrap();
        }
        let q = parse_cq("q() :- R(x)").unwrap();
        let small = BruteForceCounter { limit: 4 };
        assert!(matches!(
            small.counts(&db, AnyQuery::Cq(&q)),
            Err(CoreError::TooManyEndogenousFacts { count: 5, limit: 4 })
        ));
        // counts for q() :- R(x): all nonempty subsets satisfy.
        let ok = BruteForceCounter::new()
            .counts(&db, AnyQuery::Cq(&q))
            .unwrap();
        assert_eq!(ok[0], BigUint::zero());
        for (k, c) in ok.iter().enumerate().skip(1) {
            assert_eq!(*c, binomial(5, k));
        }
    }
}
