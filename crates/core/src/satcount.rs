//! Counting satisfying coalitions: `|Sat(D, q, k)|`.
//!
//! `Sat(D, q, k)` is the set of `k`-subsets `E ⊆ Dn` with `Dx ∪ E ⊨ q`.
//! Livshits et al. reduce the Shapley value to these counts (see
//! [`crate::shapley`]); Lemma 3.2 of the paper extends their `CntSat`
//! algorithm to hierarchical self-join-free CQ¬s by fixing the ground
//! base case. [`HierarchicalCounter`] implements that algorithm:
//!
//! 1. **Ground base case** — with all atoms ground, a subset satisfies
//!    the query iff it contains every endogenous fact matching a positive
//!    atom and none matching a negative atom (and no *exogenous* fact
//!    matches a negative atom); the count is a single binomial.
//! 2. **Disconnected query** — components touch disjoint relations
//!    (self-join-freeness), so counts compose by convolution.
//! 3. **Connected query with variables** — a *root variable* occurs in
//!    every atom (a structural fact about connected hierarchical
//!    queries); each fact is consistent with at most one root value, so
//!    the *unsatisfying* counts factor as a convolution over root values
//!    (facts with no satisfiable root value are free "junk" choices),
//!    and satisfaction is obtained by complementing.
//!
//! Every entry point also accepts a [`FactMask`]: the counts of the
//! Shapley reduction's modified databases (`D ∖ {f}`, `f` exogenized)
//! are answered on a zero-copy view of the original database instead of
//! a rebuilt clone — see [`SatCountOracle::counts_masked`].
//!
//! [`BruteForceCounter`] enumerates all `2^|Dn|` worlds and serves as the
//! oracle for the provably `FP^{#P}`-hard queries (at small scale) and as
//! the ground truth in tests.
// cqshap-lint: allow-file(no-panic-index) -- world enumeration indexes count arrays sized bits+1 up front

use cqshap_db::{ConstId, Database, FactId, FactMask, World};
use cqshap_numeric::{binomial, BigUint};
use cqshap_query::{has_self_join, is_hierarchical, ConjunctiveQuery, Term};

use crate::anyquery::AnyQuery;
use crate::budget::{self, CancelToken};
use crate::error::CoreError;

/// Anything that can compute the full vector
/// `[|Sat(D,q,0)|, …, |Sat(D,q,|Dn|)|]`.
///
/// Oracles must be `Sync`: [`crate::shapley::shapley_report`] fans the
/// per-fact computations out across threads.
pub trait SatCountOracle: Sync {
    /// Computes `counts[k] = |Sat(D, q, k)|` for `k = 0 ..= |Dn|`.
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError>;

    /// Computes the counts of the database seen through `mask`.
    ///
    /// The default implementation materializes the modified copy and
    /// calls [`SatCountOracle::counts`]; the built-in oracles override
    /// it with clone-free implementations.
    fn counts_masked(
        &self,
        db: &Database,
        q: AnyQuery<'_>,
        mask: FactMask,
    ) -> Result<Vec<BigUint>, CoreError> {
        match mask {
            FactMask::None => self.counts(db, q),
            FactMask::Removed(f) => {
                let (modified, _) = db.without_fact(f)?;
                self.counts(&modified, q)
            }
            FactMask::Exogenous(f) => {
                let (modified, _) = db.with_fact_exogenous(f)?;
                self.counts(&modified, q)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Internal pattern representation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PTerm {
    Var(u32),
    Const(ConstId),
}

#[derive(Debug, Clone)]
pub(crate) struct PAtom {
    pub(crate) negated: bool,
    pub(crate) terms: Vec<PTerm>,
}

impl PAtom {
    pub(crate) fn has_vars(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, PTerm::Var(_)))
    }

    pub(crate) fn vars(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                PTerm::Var(v) => Some(*v),
                PTerm::Const(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Does `fact_tuple` match this pattern (constants agree, positions
    /// sharing one variable agree)?
    pub(crate) fn matches(&self, values: &[ConstId]) -> bool {
        debug_assert_eq!(values.len(), self.terms.len());
        let mut bound: Vec<(u32, ConstId)> = Vec::new();
        for (t, &val) in self.terms.iter().zip(values) {
            match t {
                PTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                PTerm::Var(v) => match bound.iter().find(|(bv, _)| bv == v) {
                    Some((_, bval)) => {
                        if *bval != val {
                            return false;
                        }
                    }
                    None => bound.push((*v, val)),
                },
            }
        }
        true
    }

    /// The value a matching fact assigns to variable `v` (which must
    /// occur in this atom).
    pub(crate) fn value_of(&self, v: u32, values: &[ConstId]) -> ConstId {
        for (t, &val) in self.terms.iter().zip(values) {
            if *t == PTerm::Var(v) {
                return val;
            }
        }
        // cqshap-lint: allow(no-panic) -- callers scan variables collected from this atom's own terms
        unreachable!("variable {v} does not occur in atom");
    }

    pub(crate) fn substitute(&self, v: u32, c: ConstId) -> PAtom {
        PAtom {
            negated: self.negated,
            terms: self
                .terms
                .iter()
                .map(|t| {
                    if *t == PTerm::Var(v) {
                        PTerm::Const(c)
                    } else {
                        *t
                    }
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Masked database view
// ---------------------------------------------------------------------

/// A database seen through a [`FactMask`] — the unit the recursion is
/// generic over, so one implementation serves the unmodified counts and
/// both per-fact modified instances.
#[derive(Clone, Copy)]
pub(crate) struct MaskedDb<'a> {
    pub(crate) db: &'a Database,
    pub(crate) mask: FactMask,
}

impl<'a> MaskedDb<'a> {
    pub(crate) fn new(db: &'a Database, mask: FactMask) -> Self {
        MaskedDb { db, mask }
    }

    pub(crate) fn is_endo(&self, f: FactId) -> bool {
        self.mask.is_endogenous(self.db, f)
    }
}

// ---------------------------------------------------------------------
// Query resolution against the database
// ---------------------------------------------------------------------

/// A hierarchical self-join-free query resolved against a database:
/// patterns plus the per-atom scopes of matching facts (unmasked).
pub(crate) enum ResolvedQuery {
    /// A positive atom can never match (unknown relation or constant).
    Unsatisfiable,
    /// Patterns, their relations, and their scopes. An empty atom list
    /// means every negation was vacuous: the query is a tautology.
    Atoms {
        atoms: Vec<PAtom>,
        rels: Vec<cqshap_db::RelId>,
        scopes: Vec<Vec<FactId>>,
    },
}

/// Resolves `q` against `db`, checking the structural preconditions of
/// the hierarchical counter.
///
/// # Errors
/// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`] when
/// the preconditions fail, [`CoreError::Unsupported`] on arity clashes.
pub(crate) fn resolve_query(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<ResolvedQuery, CoreError> {
    if has_self_join(q) {
        return Err(CoreError::NotSelfJoinFree {
            query: q.to_string(),
        });
    }
    if !is_hierarchical(q) {
        return Err(CoreError::NotHierarchical {
            query: q.to_string(),
        });
    }
    // A positive atom over an unknown relation or constant is
    // unsatisfiable; a negative one can never fire and is dropped.
    let mut atoms: Vec<PAtom> = Vec::new();
    let mut rels: Vec<cqshap_db::RelId> = Vec::new();
    let mut scopes: Vec<Vec<FactId>> = Vec::new();
    for atom in q.atoms() {
        let rel = db.schema().id(&atom.relation);
        let mut unknown_const = false;
        let terms: Vec<PTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => PTerm::Var(v.0),
                Term::Const(name) => match db.interner().get(name) {
                    Some(c) => PTerm::Const(c),
                    None => {
                        unknown_const = true;
                        PTerm::Var(u32::MAX) // placeholder, never used
                    }
                },
            })
            .collect();
        let missing = rel.is_none() || unknown_const;
        if missing {
            if atom.negated {
                continue; // never fires
            }
            return Ok(ResolvedQuery::Unsatisfiable);
        }
        // cqshap-lint: allow(no-panic) -- the guard above returns early unless a relation matched
        let rel = rel.expect("checked above");
        if db.schema().arity(rel) != terms.len() {
            return Err(CoreError::Unsupported(format!(
                "atom {} disagrees with the arity of relation {}",
                q.render_atom(atom),
                atom.relation
            )));
        }
        let p = PAtom {
            negated: atom.negated,
            terms,
        };
        // Scope: facts of the relation matching the pattern. Non-matching
        // endogenous facts can never matter — they stay free.
        let scope: Vec<FactId> = db
            .relation_facts(rel)
            .iter()
            .copied()
            .filter(|&fid| p.matches(db.fact(fid).tuple.values()))
            .collect();
        atoms.push(p);
        rels.push(rel);
        scopes.push(scope);
    }
    Ok(ResolvedQuery::Atoms {
        atoms,
        rels,
        scopes,
    })
}

// ---------------------------------------------------------------------
// The hierarchical counter (CntSat, Lemma 3.2)
// ---------------------------------------------------------------------

/// Polynomial-time `|Sat|` counting for hierarchical self-join-free CQ¬s.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalCounter;

impl SatCountOracle for HierarchicalCounter {
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError> {
        self.counts_masked(db, q, FactMask::None)
    }

    fn counts_masked(
        &self,
        db: &Database,
        q: AnyQuery<'_>,
        mask: FactMask,
    ) -> Result<Vec<BigUint>, CoreError> {
        let cq = q.as_cq().ok_or_else(|| {
            CoreError::Unsupported("the hierarchical counter handles single CQ¬s only".into())
        })?;
        count_sat_hierarchical_masked(db, cq, mask)
    }
}

/// Computes `[|Sat(D,q,k)|]_{k=0..|Dn|}` for a hierarchical
/// self-join-free CQ¬.
///
/// # Errors
/// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`] when
/// the structural preconditions fail.
pub fn count_sat_hierarchical(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Vec<BigUint>, CoreError> {
    count_sat_hierarchical_masked(db, q, FactMask::None)
}

/// [`count_sat_hierarchical`] on the database seen through `mask` — the
/// counts of `D ∖ {f}` or of `D` with `f` exogenized, without building
/// either copy.
pub fn count_sat_hierarchical_masked(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: FactMask,
) -> Result<Vec<BigUint>, CoreError> {
    crate::domain::eval_query_masked(&crate::domain::CountingDomain::new(), db, q, mask)
}

pub(crate) fn scope_endo_count(view: MaskedDb<'_>, scopes: &[Vec<FactId>]) -> usize {
    scopes
        .iter()
        .flatten()
        .filter(|&&f| view.is_endo(f))
        .count()
}

/// `[C(n,k) - v[k]]_k` — flipping between satisfying and unsatisfying
/// counts over `n` endogenous facts.
pub(crate) fn complement_counts(v: &[BigUint], n: usize) -> Vec<BigUint> {
    debug_assert_eq!(v.len(), n + 1);
    (0..=n)
        .map(|k| {
            binomial(n, k)
                .checked_sub(&v[k])
                // cqshap-lint: allow(no-panic) -- the running count is bounded by C(n, k) by construction
                .expect("count bounded by C(n, k)")
        })
        .collect()
}

/// Root values with *full positive support*: the candidates of case 3.
/// All other facts are junk (they can never participate in a satisfying
/// homomorphism of this sub-query).
pub(crate) fn root_candidates(
    view: MaskedDb<'_>,
    root: u32,
    atoms: &[PAtom],
    scopes: &[Vec<FactId>],
) -> Result<Vec<ConstId>, CoreError> {
    let mut candidates: Option<Vec<ConstId>> = None;
    for (atom, scope) in atoms.iter().zip(scopes) {
        if atom.negated {
            continue;
        }
        let mut vals: Vec<ConstId> = scope
            .iter()
            .map(|&f| atom.value_of(root, view.db.fact(f).tuple.values()))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        candidates = Some(match candidates {
            None => vals,
            Some(prev) => prev
                .into_iter()
                .filter(|c| vals.binary_search(c).is_ok())
                .collect(),
        });
    }
    candidates
        .ok_or_else(|| CoreError::Unsupported("connected sub-query with no positive atom".into()))
}

/// The per-atom scopes of the root-value-`c` group.
pub(crate) fn root_group_scopes(
    view: MaskedDb<'_>,
    root: u32,
    c: ConstId,
    atoms: &[PAtom],
    scopes: &[Vec<FactId>],
) -> Vec<Vec<FactId>> {
    atoms
        .iter()
        .zip(scopes)
        .map(|(atom, scope)| {
            scope
                .iter()
                .copied()
                .filter(|&f| atom.value_of(root, view.db.fact(f).tuple.values()) == c)
                .collect()
        })
        .collect()
}

/// Connected components of atoms under the shares-a-variable relation.
pub(crate) fn connected_components(atoms: &[PAtom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, a: usize) -> usize {
        if parent[a] == a {
            a
        } else {
            let r = find(parent, parent[a]);
            parent[a] = r;
            r
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            let vi = atoms[i].vars();
            let shares = atoms[j].vars().iter().any(|v| vi.binary_search(v).is_ok());
            if shares {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut comps: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        comps.entry(r).or_default().push(i);
    }
    comps.into_values().collect()
}

/// A variable occurring in every atom, if any.
pub(crate) fn find_root_var(atoms: &[PAtom]) -> Option<u32> {
    let first = atoms.first()?.vars();
    first
        .into_iter()
        .find(|v| atoms.iter().all(|a| a.vars().binary_search(v).is_ok()))
}

// ---------------------------------------------------------------------
// Brute force
// ---------------------------------------------------------------------

/// `|Sat|` counting by explicit enumeration of all `2^|Dn|` worlds.
///
/// The ground-truth oracle for tests, and the only exact option for the
/// queries the dichotomies classify as `FP^{#P}`-hard. Enumeration is
/// parallelized across threads for larger universes. Masked counts skip
/// the masked fact's bit entirely, halving the world count on top of
/// avoiding the database clone.
#[derive(Debug, Clone)]
pub struct BruteForceCounter {
    /// Maximum `|Dn|` accepted (default [`BruteForceCounter::DEFAULT_LIMIT`]).
    limit: usize,
    /// Cooperative cancellation token polled every few thousand worlds.
    cancel: Option<CancelToken>,
    /// Worker cap for the enumeration fan-out (`0` = all cores, capped
    /// at 16 — the [`crate::ShapleyOptions::threads`] convention).
    threads: usize,
}

impl BruteForceCounter {
    /// Default cap on `|Dn|` (2^26 worlds ≈ seconds of work).
    pub const DEFAULT_LIMIT: usize = 26;

    /// A counter with the default limit.
    pub fn new() -> Self {
        Self::with_limit(Self::DEFAULT_LIMIT)
    }

    /// A counter accepting up to `limit` world bits.
    pub fn with_limit(limit: usize) -> Self {
        BruteForceCounter {
            limit,
            cancel: None,
            threads: 0,
        }
    }

    /// Caps the enumeration fan-out (`0` = all cores, capped at 16) —
    /// the same convention as [`crate::ShapleyOptions::threads`], which
    /// the brute-force oracle path plumbs through here.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a cooperative cancellation token: enumeration polls it
    /// every `4096` worlds and a tripped budget aborts with
    /// [`CoreError::DeadlineExceeded`] (phase `brute-force`).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The configured `|Dn|` cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Enumerates worlds whose bit at `forced_pos` (if any) is pinned to
    /// `forced_value`, tallying by the count of the *other* bits.
    fn enumerate(
        &self,
        db: &Database,
        q: AnyQuery<'_>,
        bits: usize,
        forced: Option<(usize, bool)>,
    ) -> Result<Vec<BigUint>, CoreError> {
        if bits > self.limit {
            return Err(CoreError::TooManyEndogenousFacts {
                count: bits,
                limit: self.limit,
            });
        }
        let compiled = q.compile(db);
        let total: u64 = 1u64 << bits;
        // Small universes stay sequential; larger ones fan out through
        // the sanctioned `parallel` module so the thread cap applies.
        let workers = if bits >= 18 {
            crate::parallel::resolve_thread_cap(self.threads).min(total.max(1) as usize)
        } else {
            1
        };
        let expand = |e: u64| -> u64 {
            match forced {
                None => e,
                Some((pos, value)) => {
                    let low = e & ((1u64 << pos) - 1);
                    let high = (e >> pos) << (pos + 1);
                    low | high | ((value as u64) << pos)
                }
            }
        };
        let chunk = total.div_ceil(workers as u64);
        let cancel = self.cancel.as_ref();
        let per_thread: Vec<Vec<u64>> = crate::parallel::par_map_with(workers, workers, |t| {
            let lo = t as u64 * chunk;
            let hi = (lo + chunk).min(total);
            let mut counts = vec![0u64; bits + 1];
            let mut world = World::empty(db);
            for e in lo..hi {
                if e & 0xFFF == 0 && cancel.is_some_and(|c| c.charge(1)) {
                    break;
                }
                world.assign_mask(expand(e));
                if compiled.satisfied(db, &world) {
                    counts[e.count_ones() as usize] += 1;
                }
            }
            counts
        });
        if let Some(token) = &self.cancel {
            budget::check(token, cqshap_obs::phase::BRUTE_FORCE)?;
        }
        let mut out = vec![BigUint::zero(); bits + 1];
        for counts in per_thread {
            for (k, c) in counts.into_iter().enumerate() {
                out[k] += &BigUint::from_u64(c);
            }
        }
        Ok(out)
    }
}

impl Default for BruteForceCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl SatCountOracle for BruteForceCounter {
    fn counts(&self, db: &Database, q: AnyQuery<'_>) -> Result<Vec<BigUint>, CoreError> {
        self.enumerate(db, q, db.endo_count(), None)
    }

    fn counts_masked(
        &self,
        db: &Database,
        q: AnyQuery<'_>,
        mask: FactMask,
    ) -> Result<Vec<BigUint>, CoreError> {
        match mask {
            FactMask::None => self.counts(db, q),
            FactMask::Removed(f) => match db.endo_index(f) {
                Some(pos) => self.enumerate(db, q, db.endo_count() - 1, Some((pos, false))),
                // An absent *exogenous* fact cannot be expressed as a
                // world bit — fall back to the materialized copy (which
                // also validates the id), matching the default impl.
                None => {
                    let (modified, _) = db.without_fact(f)?;
                    self.counts(&modified, q)
                }
            },
            FactMask::Exogenous(f) => match db.endo_index(f) {
                Some(pos) => self.enumerate(db, q, db.endo_count() - 1, Some((pos, true))),
                // Already exogenous: the identity view (the rebuild
                // validates the id and changes nothing).
                None => {
                    let (modified, _) = db.with_fact_exogenous(f)?;
                    self.counts(&modified, q)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    fn counts_match(db: &Database, q: &ConjunctiveQuery) {
        let fast = count_sat_hierarchical(db, q).unwrap();
        let slow = BruteForceCounter::new()
            .counts(db, AnyQuery::Cq(q))
            .unwrap();
        assert_eq!(fast, slow, "query {q} on\n{db}");
    }

    /// The masked counts must equal the counts of the materialized
    /// modified database, for both oracles and both masks.
    fn masked_counts_match(db: &Database, q: &ConjunctiveQuery) {
        let hier = HierarchicalCounter;
        let brute = BruteForceCounter::new();
        for &f in db.endo_facts() {
            let (minus, _) = db.without_fact(f).unwrap();
            let (plus, _) = db.with_fact_exogenous(f).unwrap();
            for (mask, materialized) in [
                (FactMask::Removed(f), &minus),
                (FactMask::Exogenous(f), &plus),
            ] {
                let want = count_sat_hierarchical(materialized, q).unwrap();
                let got = hier.counts_masked(db, AnyQuery::Cq(q), mask).unwrap();
                assert_eq!(got, want, "hierarchical {mask:?} on {}", db.render_fact(f));
                let want_bf = brute.counts(materialized, AnyQuery::Cq(q)).unwrap();
                let got_bf = brute.counts_masked(db, AnyQuery::Cq(q), mask).unwrap();
                assert_eq!(got_bf, want_bf, "brute {mask:?} on {}", db.render_fact(f));
            }
        }
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    #[test]
    fn q1_on_running_example() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        counts_match(&db, &q1);
        // Spot value: every world containing Reg(Caroline, DB) satisfies;
        // |Sat| at k = |Dn| = 8 is 1.
        let v = count_sat_hierarchical(&db, &q1).unwrap();
        assert_eq!(v.len(), 9);
        assert_eq!(v[8], BigUint::one());
        assert_eq!(v[0], BigUint::zero());
    }

    #[test]
    fn masked_counts_equal_materialized_copies() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
        ] {
            masked_counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn masks_of_exogenous_facts_agree_with_materialized_copies() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        let oracles: [&dyn SatCountOracle; 2] = [&HierarchicalCounter, &BruteForceCounter::new()];
        for oracle in oracles {
            let (minus, _) = db.without_fact(stud).unwrap();
            let want_removed = oracle.counts(&minus, AnyQuery::Cq(&q)).unwrap();
            let got_removed = oracle
                .counts_masked(&db, AnyQuery::Cq(&q), FactMask::Removed(stud))
                .unwrap();
            assert_eq!(got_removed, want_removed);
            // Exogenizing an already-exogenous fact is the identity.
            let want_exo = oracle.counts(&db, AnyQuery::Cq(&q)).unwrap();
            let got_exo = oracle
                .counts_masked(&db, AnyQuery::Cq(&q), FactMask::Exogenous(stud))
                .unwrap();
            assert_eq!(got_exo, want_exo);
        }
    }

    #[test]
    fn dangling_mask_target_is_rejected_by_every_oracle() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let bogus = cqshap_db::FactId(u32::MAX);
        let oracles: [&dyn SatCountOracle; 2] = [&HierarchicalCounter, &BruteForceCounter::new()];
        for oracle in oracles {
            for mask in [FactMask::Removed(bogus), FactMask::Exogenous(bogus)] {
                assert!(matches!(
                    oracle.counts_masked(&db, AnyQuery::Cq(&q), mask),
                    Err(CoreError::Db(cqshap_db::DbError::UnknownFact { .. }))
                ));
            }
        }
    }

    #[test]
    fn masked_counts_on_vacuous_and_unsatisfiable_queries() {
        let db = university();
        masked_counts_match(&db, &parse_cq("q() :- !Ghost('x'), TA('Adam')").unwrap());
        masked_counts_match(&db, &parse_cq("q() :- Ghost('x')").unwrap());
        masked_counts_match(&db, &parse_cq("q() :- !TA('Nobody')").unwrap());
    }

    #[test]
    fn purely_positive_hierarchical() {
        let db = university();
        for text in [
            "q() :- Reg(x, y)",
            "q() :- Stud(x), Reg(x, y)",
            "q() :- Stud(x), TA(x), Reg(x, y)",
            "q() :- Reg(x, 'OS')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn negation_heavy_hierarchical() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x)",
            "q() :- Stud(x), !Reg(x, 'OS')",
            "q() :- Reg(x, y), !TA(x)",
            "q() :- Stud(x), !TA(x), Reg(x, y), Adv(z, x)",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn ground_queries() {
        let db = university();
        for text in [
            "q() :- TA('Adam')",
            "q() :- !TA('Adam')",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- Stud('Adam')",
            "q() :- !Stud('Adam')",
            "q() :- TA('Nobody')",
            "q() :- !TA('Nobody')",
            "q() :- Ghost('x')",
            "q() :- !Ghost('x'), TA('Adam')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn disconnected_queries() {
        let db = university();
        for text in [
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- TA(x), Course(y, f), !Reg('Caroline', y)",
            "q() :- Reg(x, 'OS'), Reg2(y, 'DB')",
        ] {
            counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn repeated_variable_patterns() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        db.add_endo("E", &["b", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        for text in ["q() :- E(x, x)", "q() :- R(x), !E(x, x)"] {
            counts_match(&db, &parse_cq(text).unwrap());
            masked_counts_match(&db, &parse_cq(text).unwrap());
        }
    }

    #[test]
    fn rejects_non_hierarchical_and_self_joins() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y), Course(y, z)").unwrap();
        assert!(matches!(
            count_sat_hierarchical(&db, &q),
            Err(CoreError::NotHierarchical { .. })
        ));
        let sj = parse_cq("q() :- Reg(x, y), Reg(y, x)").unwrap();
        assert!(matches!(
            count_sat_hierarchical(&db, &sj),
            Err(CoreError::NotSelfJoinFree { .. })
        ));
    }

    #[test]
    fn brute_force_limit() {
        let mut db = Database::new();
        for i in 0..5 {
            db.add_endo("R", &[&format!("c{i}")]).unwrap();
        }
        let q = parse_cq("q() :- R(x)").unwrap();
        let small = BruteForceCounter::with_limit(4);
        assert!(matches!(
            small.counts(&db, AnyQuery::Cq(&q)),
            Err(CoreError::TooManyEndogenousFacts { count: 5, limit: 4 })
        ));
        // The masked instances drop to 4 endogenous facts and fit.
        let f = db.endo_facts()[0];
        assert!(small
            .counts_masked(&db, AnyQuery::Cq(&q), FactMask::Removed(f))
            .is_ok());
        // counts for q() :- R(x): all nonempty subsets satisfy.
        let ok = BruteForceCounter::new()
            .counts(&db, AnyQuery::Cq(&q))
            .unwrap();
        assert_eq!(ok[0], BigUint::zero());
        for (k, c) in ok.iter().enumerate().skip(1) {
            assert_eq!(*c, binomial(5, k));
        }
    }
}
