//! The gap-property violation (Theorem 5.1).
//!
//! For positive CQs, a nonzero Shapley value is at least the reciprocal
//! of a polynomial in `|D|` (the *gap property*), which turns the
//! additive FPRAS into a multiplicative one. Theorem 5.1 shows that
//! *every* satisfiable, constant-free, positively-connected CQ¬ with at
//! least one negated atom admits databases where a nonzero Shapley value
//! is `2^{-Θ(n)}`:
//!
//! * `n` gadget copies `(D_q, f_i)` with `D_q ⊭ q` but `D_q ∖ {f_i} ⊨ q`
//!   — all of `f_1,…,f_n` must precede the distinguished fact;
//! * `n+1` minimal-model copies `(D'_q, f_i)` with `D'_q ⊨ q` but
//!   `D'_q ∖ {f_i} ⊭ q` — none of `f_{n+1},…,f_{2n}` may precede it;
//!
//! leaving exactly one admissible coalition, of size `n`, out of `2n+1`
//! players: `Shapley = n!·n!/(2n+1)!`.
//!
//! This module constructs the family for arbitrary qualifying queries
//! (searching for minimal models over variable-identification quotients)
//! and provides the Section 5.1 example `q() :- R(x), S(x,y), ¬R(y)`
//! directly.
// cqshap-lint: allow-file(no-panic, no-panic-index) -- Theorem 5.1 gadget builder: it owns the database it populates, names are fresh by construction, and the static query literal parses

use cqshap_db::{Database, FactId, Provenance, Tuple, World};
use cqshap_engine::satisfies;
use cqshap_numeric::{BigInt, BigRational, FactorialTable};
use cqshap_query::{is_positively_connected, parse_cq, ConjunctiveQuery, Term};

use crate::error::CoreError;

/// A database family member exhibiting an exponentially small value.
#[derive(Debug, Clone)]
pub struct GapInstance {
    /// The database (`|Dn| = 2n + 1`).
    pub db: Database,
    /// The distinguished fact `f_0`.
    pub f0: FactId,
    /// The scale parameter.
    pub n: usize,
    /// `|Shapley(D, q, f0)| = n!·n!/(2n+1)!`, exactly.
    pub expected_abs: BigRational,
}

/// `n!·n!/(2n+1)!` — the exact magnitude Theorem 5.1's construction
/// yields (≤ 2^{-n}).
pub fn expected_gap_value(n: usize) -> BigRational {
    let t = FactorialTable::new(2 * n + 1);
    BigRational::from_parts(
        BigInt::from_biguint(t.factorial(n) * t.factorial(n)),
        t.factorial(2 * n + 1).clone(),
    )
}

/// The Section 5.1 example: `q() :- R(x), S(x,y), ¬R(y)` with the
/// explicit database of the paper. Returns the query too.
pub fn section_5_1_example(n: usize) -> (ConjunctiveQuery, GapInstance) {
    assert!(n >= 1, "the construction needs n >= 1");
    let q = parse_cq("q() :- R(x), S(x, y), !R(y)").expect("static query parses");
    let mut db = Database::new();
    for i in 0..=2 * n {
        db.add_exo("S", &[&format!("cx{i}"), &format!("cy{i}")])
            .unwrap();
    }
    for i in 1..=n {
        db.add_exo("R", &[&format!("cx{i}")]).unwrap();
        db.add_endo("R", &[&format!("cy{i}")]).unwrap();
    }
    let f0 = db.add_endo("R", &["cx0"]).unwrap();
    for i in n + 1..=2 * n {
        db.add_endo("R", &[&format!("cx{i}")]).unwrap();
    }
    let expected_abs = expected_gap_value(n);
    (
        q,
        GapInstance {
            db,
            f0,
            n,
            expected_abs,
        },
    )
}

/// Builds the Theorem 5.1 family member at scale `n` for an arbitrary
/// qualifying CQ¬.
///
/// # Errors
/// [`CoreError::GapConstruction`] when `q` has constants, lacks negated
/// atoms, is not positively connected, or is unsatisfiable.
pub fn build_gap_family(q: &ConjunctiveQuery, n: usize) -> Result<GapInstance, CoreError> {
    if n == 0 {
        return Err(CoreError::GapConstruction("n must be at least 1".into()));
    }
    if q.has_constants() {
        return Err(CoreError::GapConstruction(
            "query must be constant-free".into(),
        ));
    }
    if q.negative_atom_indices().next().is_none() {
        return Err(CoreError::GapConstruction(
            "query must have a negated atom".into(),
        ));
    }
    if !is_positively_connected(q) {
        return Err(CoreError::GapConstruction(
            "query must be positively connected".into(),
        ));
    }

    // D'_q: a minimal satisfying database (every fact critical).
    let minimal = find_minimal_model(q)
        .ok_or_else(|| CoreError::GapConstruction("query is unsatisfiable".into()))?;
    // D_q: saturate negated relations until the query flips to false;
    // the last added fact is the gadget's endogenous fact.
    let gadget = build_violating_gadget(q, &minimal)?;

    let mut db = Database::new();
    let mut f0 = None;
    // Copy 0 and copies n+1..=2n: minimal models.
    for i in std::iter::once(0usize).chain(n + 1..=2 * n) {
        let f = append_copy(&mut db, &minimal.facts, minimal.critical, &format!("k{i}_"));
        if i == 0 {
            f0 = Some(f);
        }
    }
    // Copies 1..=n: violating gadgets.
    for i in 1..=n {
        append_copy(&mut db, &gadget.facts, gadget.critical, &format!("k{i}_"));
    }
    Ok(GapInstance {
        db,
        f0: f0.expect("copy 0 built"),
        n,
        expected_abs: expected_gap_value(n),
    })
}

/// A small fact list plus the index of its one endogenous ("critical")
/// fact.
struct FactList {
    /// `(relation, tuple of constant names)`.
    facts: Vec<(String, Vec<String>)>,
    /// Index of the critical fact within `facts`.
    critical: usize,
}

fn materialize(facts: &[(String, Vec<String>)]) -> Database {
    let mut db = Database::new();
    for (rel, args) in facts {
        let refs: Vec<&str> = args.iter().map(|s| &**s).collect();
        db.add_exo(rel, &refs).expect("gadget facts are distinct");
    }
    db
}

fn model_satisfies(q: &ConjunctiveQuery, facts: &[(String, Vec<String>)]) -> bool {
    let db = materialize(facts);
    satisfies(&db, &World::empty(&db), q)
}

/// Searches for a minimal satisfying database over variable quotients:
/// a constant-free CQ¬ is satisfiable iff some identification of its
/// variables maps the positive atoms to a fact set avoiding all negated
/// atom images. Greedy fact removal then enforces minimality, so every
/// remaining fact is critical.
fn find_minimal_model(q: &ConjunctiveQuery) -> Option<FactList> {
    let nvars = q.var_count();
    let assignment = try_partitions(q, &mut vec![0usize; nvars], 0, 0)?;
    let mut facts: Vec<(String, Vec<String>)> = Vec::new();
    for atom in q.atoms().iter().filter(|a| !a.negated) {
        let tuple: Vec<String> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => format!("m{}", assignment[v.index()]),
                Term::Const(_) => unreachable!("constant-free precondition"),
            })
            .collect();
        let entry = (atom.relation.clone(), tuple);
        if !facts.contains(&entry) {
            facts.push(entry);
        }
    }
    if !model_satisfies(q, &facts) {
        return None;
    }
    // Greedy minimization to a fixpoint.
    loop {
        let mut removed = false;
        for i in 0..facts.len() {
            let mut smaller = facts.clone();
            smaller.remove(i);
            if model_satisfies(q, &smaller) {
                facts = smaller;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }
    // Every remaining fact is critical; use the first.
    Some(FactList { facts, critical: 0 })
}

/// Enumerates set partitions of the variables in restricted-growth form,
/// returning the first whose canonical database satisfies `q`.
fn try_partitions(
    q: &ConjunctiveQuery,
    assignment: &mut Vec<usize>,
    idx: usize,
    max_block: usize,
) -> Option<Vec<usize>> {
    if idx == assignment.len() {
        let facts: Vec<(String, Vec<String>)> = {
            let mut out = Vec::new();
            for atom in q.atoms().iter().filter(|a| !a.negated) {
                let tuple: Vec<String> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => format!("m{}", assignment[v.index()]),
                        Term::Const(_) => unreachable!("constant-free precondition"),
                    })
                    .collect();
                let entry = (atom.relation.clone(), tuple);
                if !out.contains(&entry) {
                    out.push(entry);
                }
            }
            out
        };
        return model_satisfies(q, &facts).then(|| assignment.clone());
    }
    for b in 0..=max_block {
        assignment[idx] = b;
        let next_max = if b == max_block {
            max_block + 1
        } else {
            max_block
        };
        if let Some(found) = try_partitions(q, assignment, idx + 1, next_max) {
            return Some(found);
        }
    }
    None
}

/// Builds `D_q` (gadget with `D_q ⊭ q`, `D_q ∖ {last} ⊨ q`) by adding
/// domain tuples to the negated relations one at a time.
fn build_violating_gadget(q: &ConjunctiveQuery, minimal: &FactList) -> Result<FactList, CoreError> {
    let mut facts = minimal.facts.clone();
    // The active domain of the minimal model.
    let mut domain: Vec<String> = Vec::new();
    for (_, args) in &facts {
        for a in args {
            if !domain.contains(a) {
                domain.push(a.clone());
            }
        }
    }
    // Negated relations (deduplicated, in atom order) with their arities.
    let mut neg_rels: Vec<(String, usize)> = Vec::new();
    for i in q.negative_atom_indices() {
        let atom = &q.atoms()[i];
        let entry = (atom.relation.clone(), atom.terms.len());
        if !neg_rels.contains(&entry) {
            neg_rels.push(entry);
        }
    }
    for (rel, arity) in neg_rels {
        let mut combo = vec![0usize; arity];
        loop {
            let tuple: Vec<String> = combo.iter().map(|&i| domain[i].clone()).collect();
            let entry = (rel.clone(), tuple);
            if !facts.contains(&entry) {
                facts.push(entry);
                if !model_satisfies(q, &facts) {
                    let critical = facts.len() - 1;
                    return Ok(FactList { facts, critical });
                }
            }
            // Odometer.
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < domain.len() {
                    break;
                }
                combo[pos] = 0;
                if pos == 0 {
                    break;
                }
            }
            if arity == 0 || combo.iter().all(|&c| c == 0) {
                break;
            }
        }
    }
    Err(CoreError::GapConstruction(
        "saturating the negated relations never violated the query".into(),
    ))
}

/// Appends a renamed copy of `facts` to `db`; the critical fact becomes
/// endogenous, everything else exogenous. Returns the critical fact's id.
fn append_copy(
    db: &mut Database,
    facts: &[(String, Vec<String>)],
    critical: usize,
    prefix: &str,
) -> FactId {
    let mut out = None;
    for (i, (rel, args)) in facts.iter().enumerate() {
        let rel_id = db.add_relation(rel, args.len()).expect("consistent arity");
        let tuple: Vec<cqshap_db::ConstId> = args
            .iter()
            .map(|a| db.intern(&format!("{prefix}{a}")))
            .collect();
        let provenance = if i == critical {
            Provenance::Endogenous
        } else {
            Provenance::Exogenous
        };
        let fid = db
            .insert_tuple(rel_id, Tuple::from(tuple), provenance)
            .expect("fresh facts");
        if i == critical {
            out = Some(fid);
        }
    }
    out.expect("critical fact inserted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anyquery::AnyQuery;
    use crate::satcount::BruteForceCounter;
    use crate::shapley::{shapley_by_permutations, shapley_via_counts};

    #[test]
    fn expected_value_decays_exponentially() {
        for n in 1..=40usize {
            let v = expected_gap_value(n);
            assert!(v.is_positive());
            // n!n!/(2n+1)! = 1/((2n+1)·C(2n,n)) ≤ 2^-n.
            let bound = BigRational::from_i64_ratio(1, 1 << n.min(62));
            assert!(v <= bound, "n={n}");
        }
    }

    #[test]
    fn section_5_1_example_matches_brute_force() {
        for n in 1..=2usize {
            let (q, inst) = section_5_1_example(n);
            assert_eq!(inst.db.endo_count(), 2 * n + 1);
            let v = shapley_via_counts(
                &inst.db,
                AnyQuery::Cq(&q),
                inst.f0,
                &BruteForceCounter::new(),
            )
            .unwrap();
            assert_eq!(v.abs(), inst.expected_abs, "n={n}");
            assert!(v.is_positive());
        }
    }

    #[test]
    fn general_construction_on_section_5_1_query() {
        let q = parse_cq("q() :- R(x), S(x, y), !R(y)").unwrap();
        for n in 1..=2usize {
            let inst = build_gap_family(&q, n).unwrap();
            assert_eq!(inst.db.endo_count(), 2 * n + 1);
            let v = shapley_by_permutations(&inst.db, AnyQuery::Cq(&q), inst.f0, 9).unwrap();
            assert_eq!(v.abs(), inst.expected_abs, "n={n}");
            assert!(!v.is_zero());
        }
    }

    #[test]
    fn general_construction_on_other_queries() {
        for text in [
            "q() :- R(x), S(x, y), !T(y)",
            "q() :- A(x), !B(x)",
            "q() :- R(x, y), !R(y, x)",
        ] {
            let q = parse_cq(text).unwrap();
            let inst = build_gap_family(&q, 1).unwrap();
            let v = shapley_by_permutations(&inst.db, AnyQuery::Cq(&q), inst.f0, 9).unwrap();
            assert_eq!(v.abs(), inst.expected_abs, "{text}");
            assert!(!v.is_zero(), "{text}");
        }
    }

    #[test]
    fn preconditions_enforced() {
        let with_const = parse_cq("q() :- R(x), !S(x, 'c')").unwrap();
        assert!(matches!(
            build_gap_family(&with_const, 1),
            Err(CoreError::GapConstruction(_))
        ));
        let no_neg = parse_cq("q() :- R(x), S(x, y)").unwrap();
        assert!(matches!(
            build_gap_family(&no_neg, 1),
            Err(CoreError::GapConstruction(_))
        ));
        let disconnected = parse_cq("q() :- R(x), T(y), !S(x, y)").unwrap();
        assert!(matches!(
            build_gap_family(&disconnected, 1),
            Err(CoreError::GapConstruction(_))
        ));
        let unsat = parse_cq("q() :- R(x, x), !R(x, x)").unwrap();
        assert!(matches!(
            build_gap_family(&unsat, 1),
            Err(CoreError::GapConstruction(_))
        ));
        let (q, _) = section_5_1_example(1);
        assert!(matches!(
            build_gap_family(&q, 0),
            Err(CoreError::GapConstruction(_))
        ));
    }
}
