//! Weighted sums of minimal supports (WSMS) — the always-terminating
//! floor of the degradation ladder.
//!
//! When the exact Shapley engines reject a query (non-hierarchical,
//! self-joins, `FP^{#P}`-hard unions) and sampling cannot converge
//! inside the budget, WSMS still produces a principled attribution in
//! polynomial time (data complexity). Following the minimal-support
//! measures studied as tractable Shapley alternatives (arXiv
//! 2503.22358), define for a Boolean query `q` over `D = Dx ∪ Dn`:
//!
//! * a **support** is a set `S ⊆ Dn` with `Dx ∪ S ⊨ q`;
//! * a **minimal support** is a support no proper subset of which is a
//!   support;
//! * `WSMS(f) = Σ { w(S) : S minimal support, f ∈ S }` where the weight
//!   `w` is one of [`WsmsWeight`].
//!
//! Unlike the Shapley value, WSMS never needs the `|Sat|` counts that
//! make negation `#P`-hard: minimal supports are enumerated directly
//! from the *valuations* (homomorphisms) of each disjunct's positive
//! atoms. For a valuation `v`, let `S_v` be the endogenous facts in the
//! image of the positive atoms; `v` is *valid* when no instantiated
//! negated atom matches an exogenous fact or a member of `S_v`. Then:
//!
//! 1. every valid `v` yields a support (`v` itself satisfies
//!    `Dx ∪ S_v`: positive atoms map into it, negated atoms match
//!    nothing present);
//! 2. every minimal support `S` equals some `S_v`: a satisfying
//!    valuation of `Dx ∪ S` is valid and has `S_v ⊆ S`, so minimality
//!    forces equality;
//! 3. a subset-minimal candidate is a genuinely minimal support: a
//!    smaller support inside it would contribute its own, smaller,
//!    candidate.
//!
//! Hence the minimal supports are exactly the subset-minimal elements
//! of `{S_v : v valid}` — across all disjuncts for a union, since a
//! union is satisfied iff some disjunct is. The enumeration deliberately
//! skips the hierarchy and self-join-freeness preconditions of the exact
//! engines: WSMS is the tier that must work on precisely the queries
//! they refuse.
// cqshap-lint: allow-file(no-panic-index) -- support enumeration indexes within masks sized by the query

use std::collections::BTreeSet;

use cqshap_db::{ConstId, Database, FactId, RelId};
use cqshap_numeric::BigRational;
use cqshap_query::{ConjunctiveQuery, Term};

use crate::anyquery::AnyQuery;
use crate::budget::{self, CancelToken};
use crate::error::CoreError;
use crate::satcount::{PAtom, PTerm};

/// How a minimal support's credit is shared among its facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WsmsWeight {
    /// Every minimal support contributes `1` to each of its members:
    /// the score of `f` is the number of minimal supports containing it.
    Uniform,
    /// Every minimal support shares one unit equally among its members
    /// (`1/|S|` each), so the scores of all facts sum to the number of
    /// non-empty minimal supports — an efficiency axiom analogue.
    #[default]
    SizeInverse,
}

/// The WSMS score of one endogenous fact.
#[derive(Debug, Clone)]
pub struct WsmsEntry {
    /// The fact.
    pub fact: FactId,
    /// Human-readable rendering of the fact.
    pub rendered: String,
    /// The weighted sum over minimal supports containing the fact.
    pub score: BigRational,
    /// How many minimal supports contain the fact.
    pub supports: usize,
}

/// WSMS scores for every endogenous fact, in `Dn` order.
#[derive(Debug, Clone)]
pub struct WsmsReport {
    /// One entry per endogenous fact.
    pub entries: Vec<WsmsEntry>,
    /// Total number of minimal supports (the empty support included,
    /// when the query already holds under `Dx` alone).
    pub minimal_supports: usize,
    /// The weight scheme the scores were computed under.
    pub weight: WsmsWeight,
}

impl WsmsReport {
    /// The entry for `f`, if `f` is endogenous.
    pub fn entry(&self, f: FactId) -> Option<&WsmsEntry> {
        self.entries.iter().find(|e| e.fact == f)
    }
}

/// Computes the WSMS attribution of every endogenous fact.
///
/// Works for *any* CQ¬ or UCQ¬ — in particular the self-join and
/// non-hierarchical queries the exact engines reject. Runtime is
/// polynomial in the database for a fixed query (valuation enumeration),
/// though the number of minimal supports governs the constant.
///
/// # Errors
/// [`CoreError::Unsupported`] on arity clashes,
/// [`CoreError::DeadlineExceeded`] (phase `wsms`) when `cancel` trips.
pub fn wsms_report(
    db: &Database,
    q: AnyQuery<'_>,
    weight: WsmsWeight,
    cancel: Option<&CancelToken>,
) -> Result<WsmsReport, CoreError> {
    let disjuncts: Vec<&ConjunctiveQuery> = match q {
        AnyQuery::Cq(cq) => vec![cq],
        AnyQuery::Union(u) => u.disjuncts().iter().collect(),
    };
    let mut candidates: BTreeSet<Vec<FactId>> = BTreeSet::new();
    for d in disjuncts {
        collect_supports(db, d, cancel, &mut candidates)?;
    }
    let minimal = minimal_sets(candidates);

    let m = db.endo_facts().len();
    let mut scores = vec![BigRational::zero(); m];
    let mut counts = vec![0usize; m];
    for s in &minimal {
        if s.is_empty() {
            continue; // the empty support credits nobody
        }
        let w = match weight {
            WsmsWeight::Uniform => BigRational::one(),
            WsmsWeight::SizeInverse => BigRational::from_i64_ratio(1, s.len() as i64),
        };
        for &f in s {
            let i = db
                .endo_index(f)
                // cqshap-lint: allow(no-panic) -- supports are built from endogenous facts only
                .expect("supports consist of endogenous facts");
            scores[i] += &w;
            counts[i] += 1;
        }
    }
    let entries = db
        .endo_facts()
        .iter()
        .enumerate()
        .map(|(i, &f)| WsmsEntry {
            fact: f,
            rendered: db.render_fact(f),
            score: std::mem::take(&mut scores[i]),
            supports: counts[i],
        })
        .collect();
    Ok(WsmsReport {
        entries,
        minimal_supports: minimal.len(),
        weight,
    })
}

// ---------------------------------------------------------------------
// Disjunct resolution (no structural preconditions)
// ---------------------------------------------------------------------

/// One disjunct resolved against the database: positive patterns with
/// their matching-fact scopes, negated patterns with their relations.
struct ResolvedDisjunct {
    positives: Vec<(PAtom, Vec<FactId>)>,
    negatives: Vec<(RelId, PAtom)>,
}

/// Resolves a disjunct like `satcount::resolve_query` but *without* the
/// hierarchy / self-join-freeness checks. `None` means the disjunct is
/// unsatisfiable (a positive atom over an unknown relation or constant).
fn resolve_disjunct(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Option<ResolvedDisjunct>, CoreError> {
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for atom in q.atoms() {
        let rel = db.schema().id(&atom.relation);
        let mut unknown_const = false;
        let terms: Vec<PTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => PTerm::Var(v.0),
                Term::Const(name) => match db.interner().get(name) {
                    Some(c) => PTerm::Const(c),
                    None => {
                        unknown_const = true;
                        PTerm::Var(u32::MAX) // placeholder, never used
                    }
                },
            })
            .collect();
        if rel.is_none() || unknown_const {
            if atom.negated {
                continue; // never fires
            }
            return Ok(None);
        }
        // cqshap-lint: allow(no-panic) -- the guard above returns early unless a relation matched
        let rel = rel.expect("checked above");
        if db.schema().arity(rel) != terms.len() {
            return Err(CoreError::Unsupported(format!(
                "atom {} disagrees with the arity of relation {}",
                q.render_atom(atom),
                atom.relation
            )));
        }
        let p = PAtom {
            negated: atom.negated,
            terms,
        };
        if p.negated {
            negatives.push((rel, p));
        } else {
            let scope: Vec<FactId> = db
                .relation_facts(rel)
                .iter()
                .copied()
                .filter(|&fid| p.matches(db.fact(fid).tuple.values()))
                .collect();
            positives.push((p, scope));
        }
    }
    Ok(Some(ResolvedDisjunct {
        positives,
        negatives,
    }))
}

// ---------------------------------------------------------------------
// Valuation enumeration
// ---------------------------------------------------------------------

/// Enumerates the valid valuations of `q` and inserts each candidate
/// support `S_v` into `out`.
fn collect_supports(
    db: &Database,
    q: &ConjunctiveQuery,
    cancel: Option<&CancelToken>,
    out: &mut BTreeSet<Vec<FactId>>,
) -> Result<(), CoreError> {
    let Some(mut rq) = resolve_disjunct(db, q)? else {
        return Ok(());
    };
    // Tight scopes first: prunes the join tree near the root.
    rq.positives.sort_by_key(|(_, scope)| scope.len());
    let mut bindings: Vec<(u32, ConstId)> = Vec::new();
    let mut image: Vec<FactId> = Vec::new();
    descend(
        db,
        &rq.positives,
        &rq.negatives,
        0,
        &mut bindings,
        &mut image,
        cancel,
        out,
    )
}

/// Backtracking join over the positive atoms; at each leaf, the negated
/// atoms decide whether the valuation's support is admitted.
#[allow(clippy::too_many_arguments)]
fn descend(
    db: &Database,
    positives: &[(PAtom, Vec<FactId>)],
    negatives: &[(RelId, PAtom)],
    depth: usize,
    bindings: &mut Vec<(u32, ConstId)>,
    image: &mut Vec<FactId>,
    cancel: Option<&CancelToken>,
    out: &mut BTreeSet<Vec<FactId>>,
) -> Result<(), CoreError> {
    if let Some(token) = cancel {
        if token.charge(1) {
            budget::check(token, cqshap_obs::phase::WSMS)?;
        }
    }
    if depth == positives.len() {
        if let Some(support) = leaf_support(db, negatives, bindings, image) {
            out.insert(support);
        }
        return Ok(());
    }
    let (atom, scope) = &positives[depth];
    for &fid in scope {
        let mark = bindings.len();
        if !match_atom(atom, db.fact(fid).tuple.values(), bindings) {
            continue;
        }
        image.push(fid);
        let r = descend(
            db,
            positives,
            negatives,
            depth + 1,
            bindings,
            image,
            cancel,
            out,
        );
        image.pop();
        bindings.truncate(mark);
        r?;
    }
    Ok(())
}

/// Extends `bindings` so that `atom` maps onto the tuple `values`;
/// restores `bindings` and returns `false` when it cannot.
fn match_atom(atom: &PAtom, values: &[ConstId], bindings: &mut Vec<(u32, ConstId)>) -> bool {
    let mark = bindings.len();
    for (t, &val) in atom.terms.iter().zip(values) {
        let ok = match t {
            PTerm::Const(c) => *c == val,
            PTerm::Var(v) => match bindings.iter().find(|(bv, _)| bv == v) {
                Some(&(_, bound)) => bound == val,
                None => {
                    bindings.push((*v, val));
                    true
                }
            },
        };
        if !ok {
            bindings.truncate(mark);
            return false;
        }
    }
    true
}

/// The candidate support of a complete valuation, or `None` when a
/// negated atom fires: an exogenous match falsifies `q` in *every*
/// world containing `Dx`, a match inside the support falsifies exactly
/// the world the support would certify.
fn leaf_support(
    db: &Database,
    negatives: &[(RelId, PAtom)],
    bindings: &[(u32, ConstId)],
    image: &[FactId],
) -> Option<Vec<FactId>> {
    let mut support: Vec<FactId> = image
        .iter()
        .copied()
        .filter(|&f| db.fact(f).provenance.is_endogenous())
        .collect();
    support.sort_unstable();
    support.dedup();
    for (rel, pattern) in negatives {
        let ground = instantiate(pattern, bindings);
        for &fid in db.relation_facts(*rel) {
            if !ground.matches(db.fact(fid).tuple.values()) {
                continue;
            }
            if !db.fact(fid).provenance.is_endogenous() {
                return None;
            }
            if support.binary_search(&fid).is_ok() {
                return None;
            }
            // An endogenous match outside the support is simply absent
            // from the world `Dx ∪ S_v` — it does not fire.
        }
    }
    Some(support)
}

/// Substitutes the current bindings into a pattern (safe negation makes
/// the result ground; unbound variables stay free and match anything).
fn instantiate(atom: &PAtom, bindings: &[(u32, ConstId)]) -> PAtom {
    PAtom {
        negated: atom.negated,
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                PTerm::Var(v) => match bindings.iter().find(|(bv, _)| bv == v) {
                    Some(&(_, c)) => PTerm::Const(c),
                    None => PTerm::Var(*v),
                },
                PTerm::Const(c) => PTerm::Const(*c),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Subset-minimal filtering
// ---------------------------------------------------------------------

/// The subset-minimal elements of `candidates` (each sorted ascending).
fn minimal_sets(candidates: BTreeSet<Vec<FactId>>) -> Vec<Vec<FactId>> {
    let mut by_size: Vec<Vec<FactId>> = candidates.into_iter().collect();
    by_size.sort_by_key(|s| s.len());
    let mut minimal: Vec<Vec<FactId>> = Vec::new();
    for cand in by_size {
        if minimal.iter().any(|m| is_subset(m, &cand)) {
            continue;
        }
        minimal.push(cand);
    }
    minimal
}

/// Is sorted `a` a subset of sorted `b`?
fn is_subset(a: &[FactId], b: &[FactId]) -> bool {
    let mut rest = b.iter();
    a.iter().all(|x| rest.by_ref().any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use cqshap_db::World;
    use cqshap_query::{parse_cq, parse_ucq};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The definition, verbatim: enumerate all `2^m` subsets, keep the
    /// satisfying ones, filter to subset-minimal.
    fn brute_minimal_supports(db: &Database, q: AnyQuery<'_>) -> Vec<Vec<FactId>> {
        let m = db.endo_facts().len();
        assert!(m <= 16, "brute-force reference capped at 16 facts");
        let compiled = q.compile(db);
        let mut world = World::empty(db);
        let mut sat: Vec<u64> = Vec::new();
        for mask in 0..(1u64 << m) {
            world.assign_mask(mask);
            if compiled.satisfied(db, &world) {
                sat.push(mask);
            }
        }
        let mut minimal: Vec<Vec<FactId>> = Vec::new();
        'outer: for &mask in &sat {
            for &other in &sat {
                if other != mask && other & mask == other {
                    continue 'outer;
                }
            }
            minimal.push(
                db.endo_facts()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &f)| f)
                    .collect(),
            );
        }
        minimal
    }

    /// Checks `wsms_report` against the brute-force definition for both
    /// weight schemes.
    fn assert_matches_brute(db: &Database, q: AnyQuery<'_>) {
        let want = brute_minimal_supports(db, q);
        for weight in [WsmsWeight::Uniform, WsmsWeight::SizeInverse] {
            let report = wsms_report(db, q, weight, None).unwrap();
            assert_eq!(
                report.minimal_supports,
                want.len(),
                "support count for {} under {weight:?}",
                q.name()
            );
            for entry in &report.entries {
                let containing: Vec<&Vec<FactId>> =
                    want.iter().filter(|s| s.contains(&entry.fact)).collect();
                assert_eq!(entry.supports, containing.len(), "{}", entry.rendered);
                let mut score = BigRational::zero();
                for s in containing {
                    score += &match weight {
                        WsmsWeight::Uniform => BigRational::one(),
                        WsmsWeight::SizeInverse => BigRational::from_i64_ratio(1, s.len() as i64),
                    };
                }
                assert_eq!(entry.score, score, "{}", entry.rendered);
            }
        }
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\n\
             endo TA(Adam)\nendo TA(Ben)\n\
             exo Course(OS, EE)\nexo Course(DB, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Ben, OS)\nendo Reg(Caroline, DB)\n",
        )
        .unwrap()
    }

    #[test]
    fn agrees_with_brute_force_on_hierarchical_queries() {
        let db = university();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
        ] {
            assert_matches_brute(&db, AnyQuery::Cq(&parse_cq(text).unwrap()));
        }
    }

    #[test]
    fn handles_self_joins_the_exact_engines_reject() {
        let db = university();
        // Two students registered for one course: a self-join on Reg.
        let q = parse_cq("q() :- Reg(x, y), Reg(z, y)").unwrap();
        assert!(crate::satcount::resolve_query(&db, &q).is_err());
        assert_matches_brute(&db, AnyQuery::Cq(&q));
        // The (Adam, OS) valuation with x = z shows single facts are
        // already supports: every minimal support is a singleton.
        let report = wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::SizeInverse, None).unwrap();
        assert_eq!(report.minimal_supports, 3);
    }

    #[test]
    fn handles_non_hierarchical_queries() {
        let db = Database::parse(
            "endo R(a)\nendo R(b)\nendo S(a, u)\nexo S(b, u)\nendo T(u)\nendo T(v)\nexo S(b, v)\n",
        )
        .unwrap();
        let q = parse_cq("q() :- R(x), S(x, y), T(y)").unwrap();
        assert!(crate::satcount::resolve_query(&db, &q).is_err());
        assert_matches_brute(&db, AnyQuery::Cq(&q));
    }

    #[test]
    fn agrees_with_brute_force_on_unions() {
        let db = university();
        let u = parse_ucq("q() :- TA(x), !Reg(x, 'OS'); q() :- Reg('Caroline', y)").unwrap();
        assert_matches_brute(&db, AnyQuery::Union(&u));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0x575_u64);
        let consts = ["a", "b", "c"];
        let queries = [
            "q() :- R(x), S(x, y)",
            "q() :- R(x), S(x, y), !R(y)",
            "q() :- S(x, y), S(y, z)",
            "q() :- R(x), !S(x, x)",
        ];
        for round in 0..12 {
            let mut spec = String::new();
            for &c in &consts {
                if rng.gen_bool(0.7) {
                    let kind = if rng.gen_bool(0.5) { "endo" } else { "exo" };
                    spec.push_str(&format!("{kind} R({c})\n"));
                }
            }
            for &c in &consts {
                for &d in &consts {
                    if rng.gen_bool(0.4) {
                        let kind = if rng.gen_bool(0.7) { "endo" } else { "exo" };
                        spec.push_str(&format!("{kind} S({c}, {d})\n"));
                    }
                }
            }
            if spec.is_empty() {
                continue;
            }
            let db = Database::parse(&spec).unwrap();
            for text in queries {
                let q = parse_cq(text).unwrap();
                assert_matches_brute(&db, AnyQuery::Cq(&q));
            }
            let _ = round;
        }
    }

    #[test]
    fn size_inverse_scores_sum_to_nonempty_support_count() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let report = wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::SizeInverse, None).unwrap();
        let total = report
            .entries
            .iter()
            .fold(BigRational::zero(), |mut acc, e| {
                acc += &e.score;
                acc
            });
        assert_eq!(total, BigRational::from_int(report.minimal_supports as i64));
        assert!(report.minimal_supports > 0);
    }

    #[test]
    fn query_already_true_under_exogenous_facts_has_the_empty_support() {
        let db = university();
        // Stud is exogenous: the empty world satisfies, so the only
        // minimal support is empty and nobody gets credit.
        let q = parse_cq("q() :- Stud(x)").unwrap();
        let report = wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::Uniform, None).unwrap();
        assert_eq!(report.minimal_supports, 1);
        assert!(report.entries.iter().all(|e| e.score.is_zero()));
        assert_matches_brute(&db, AnyQuery::Cq(&q));
    }

    #[test]
    fn unknown_relations_and_unsatisfiable_disjuncts() {
        let db = university();
        let q = parse_cq("q() :- Ghost(x)").unwrap();
        let report = wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::Uniform, None).unwrap();
        assert_eq!(report.minimal_supports, 0);
        // A vacuous negation over an unknown relation is dropped,
        // leaving a tautology.
        let t = parse_cq("q() :- !Ghost('x')").unwrap();
        let report = wsms_report(&db, AnyQuery::Cq(&t), WsmsWeight::Uniform, None).unwrap();
        assert_eq!(report.minimal_supports, 1);
        assert_matches_brute(&db, AnyQuery::Cq(&q));
        assert_matches_brute(&db, AnyQuery::Cq(&t));
    }

    #[test]
    fn arity_clash_is_rejected() {
        let db = university();
        let q = parse_cq("q() :- TA(x, y)").unwrap();
        assert!(matches!(
            wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::Uniform, None),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn tripped_budget_aborts_with_the_wsms_phase() {
        let db = university();
        let q = parse_cq("q() :- Reg(x, y), Reg(z, y)").unwrap();
        let token = Budget::work_units(1).token();
        let err =
            wsms_report(&db, AnyQuery::Cq(&q), WsmsWeight::Uniform, Some(&token)).unwrap_err();
        match err {
            CoreError::DeadlineExceeded { phase, .. } => assert_eq!(phase, "wsms"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}
