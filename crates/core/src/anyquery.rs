//! A uniform handle over CQ¬s and UCQ¬s.

use cqshap_db::{Database, World};
use cqshap_engine::{satisfies_compiled, CompiledQuery, CompiledUnion};
use cqshap_query::{ConjunctiveQuery, UnionQuery};

/// Either a single CQ¬ or a union — everything the sampling, brute-force
/// and relevance machinery is generic over.
#[derive(Debug, Clone, Copy)]
pub enum AnyQuery<'a> {
    /// A conjunctive query with safe negation.
    Cq(&'a ConjunctiveQuery),
    /// A union of CQ¬s.
    Union(&'a UnionQuery),
}

impl<'a> AnyQuery<'a> {
    /// The conjunctive query, if this is one.
    pub fn as_cq(&self) -> Option<&'a ConjunctiveQuery> {
        match self {
            AnyQuery::Cq(q) => Some(q),
            AnyQuery::Union(_) => None,
        }
    }

    /// A display name.
    pub fn name(&self) -> &str {
        match self {
            AnyQuery::Cq(q) => q.name(),
            AnyQuery::Union(u) => u.name(),
        }
    }

    /// Compiles against `db` (a CQ becomes a one-disjunct union).
    pub fn compile(&self, db: &Database) -> CompiledAnyQuery {
        match self {
            AnyQuery::Cq(q) => CompiledAnyQuery {
                disjuncts: vec![CompiledQuery::compile(db, q)],
            },
            AnyQuery::Union(u) => CompiledAnyQuery {
                disjuncts: CompiledUnion::compile(db, u).disjuncts,
            },
        }
    }
}

impl<'a> From<&'a ConjunctiveQuery> for AnyQuery<'a> {
    fn from(q: &'a ConjunctiveQuery) -> Self {
        AnyQuery::Cq(q)
    }
}

impl<'a> From<&'a UnionQuery> for AnyQuery<'a> {
    fn from(u: &'a UnionQuery) -> Self {
        AnyQuery::Union(u)
    }
}

/// A compiled [`AnyQuery`], cheap to evaluate over many worlds.
#[derive(Debug, Clone)]
pub struct CompiledAnyQuery {
    disjuncts: Vec<CompiledQuery>,
}

impl CompiledAnyQuery {
    /// Does `Dx ∪ E ⊨ q` hold?
    pub fn satisfied(&self, db: &Database, world: &World) -> bool {
        self.disjuncts
            .iter()
            .any(|d| satisfies_compiled(db, world, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::{parse_cq, parse_ucq};

    #[test]
    fn uniform_evaluation() {
        let mut db = Database::new();
        let ra = db.add_endo("R", &["a"]).unwrap();
        let q = parse_cq("q() :- R(x)").unwrap();
        let u = parse_ucq("q() :- R(x); q() :- S(x)").unwrap();
        let cq: AnyQuery = (&q).into();
        let cu: AnyQuery = (&u).into();
        assert_eq!(cq.name(), "q");
        assert!(cq.as_cq().is_some());
        assert!(cu.as_cq().is_none());
        let (ccq, ccu) = (cq.compile(&db), cu.compile(&db));
        let w = World::from_fact_ids(&db, &[ra]);
        assert!(ccq.satisfied(&db, &w));
        assert!(ccu.satisfied(&db, &w));
        assert!(!ccq.satisfied(&db, &World::empty(&db)));
    }
}
