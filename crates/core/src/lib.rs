//! # cqshap-core
//!
//! Shapley values of database facts for conjunctive queries with safe
//! negation — a faithful implementation of *"The Impact of Negation on
//! the Complexity of the Shapley Value in Conjunctive Queries"* (Reshef,
//! Kimelfeld, Livshits; PODS 2020).
//!
//! The endogenous facts of a database are players in a cooperative game
//! whose wealth function is the Boolean query answer over
//! `Dx ∪ E`; the Shapley value of a fact measures its contribution to
//! the answer. This crate provides:
//!
//! * [`shapley::shapley_value`] / [`shapley::shapley_report`] — exact
//!   values, with automatic strategy selection along the paper's
//!   dichotomies (Theorems 3.1 and 4.3);
//! * [`satcount`] — the `CntSat` counting algorithm (Lemma 3.2) and the
//!   brute-force oracle;
//! * [`exoshap`] — the `ExoShap` rewriting (Algorithm 1) for queries
//!   without a non-hierarchical path;
//! * [`approx`] — the additive Monte-Carlo FPRAS of Section 5.1;
//! * [`relevance`] — Algorithms 2/3 (`IsPosRelevant` / `IsNegRelevant`)
//!   for polarity-consistent CQ¬s and their UCQ¬ generalization, plus
//!   brute-force relevance and Shapley zeroness (Propositions 5.5–5.8);
//! * [`aggregates`] — Shapley attribution for `Count`/`Sum` aggregates
//!   by linearity (the "Remarks" of Section 3);
//! * [`session`] — [`session::ShapleySession`], the prepared, updatable
//!   engine handle unifying CQ¬ / UCQ¬ / aggregate computation with
//!   incremental maintenance across database updates;
//! * [`budget`] — deadlines and cooperative cancellation
//!   ([`Budget`] / [`CancelToken`] /
//!   [`CoreError::DeadlineExceeded`]) for the `FP^{#P}`-hard regime,
//!   with [`wsms`] (weighted sums of minimal supports, a tractable
//!   responsibility measure) and [`approx`]'s anytime sampler forming
//!   the graceful-degradation ladder behind
//!   [`session::ShapleySession::report_tiered`];
//! * [`gap`] — the Theorem 5.1 construction showing the gap property
//!   fails for every natural CQ¬ with negation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregates;
pub mod anyquery;
pub mod approx;
pub mod budget;
pub mod compiled;
pub mod compiled_union;
pub mod domain;
pub mod error;
pub mod exoshap;
pub mod gap;
pub(crate) mod parallel;
pub mod relevance;
pub mod satcount;
pub mod session;
pub mod shapley;
pub mod wsms;

pub use anyquery::AnyQuery;
pub use approx::{AnytimeParams, AnytimeReport, FactEstimate};
pub use budget::{Budget, CancelToken};
pub use compiled::{CompiledCount, CompiledProbability, EngineUpdate};
pub use compiled_union::CompiledUnionCount;
pub use domain::{
    probability_by_enumeration, probability_by_enumeration_cancel, CountingDomain, EvalDomain,
    FactProbabilities, ProbabilityDomain,
};
pub use error::{CoreError, PartialProgress};
pub use exoshap::{rewrite, RewriteOutcome};
pub use satcount::{
    count_sat_hierarchical, count_sat_hierarchical_masked, BruteForceCounter, HierarchicalCounter,
    SatCountOracle,
};
pub use session::{SessionStats, ShapleySession, TierPolicy, TieredAnswer};
pub use shapley::{
    shapley_by_permutations, shapley_report, shapley_report_per_fact, shapley_report_union,
    shapley_report_union_per_fact, shapley_value, shapley_value_union, shapley_via_counts,
    ReportStats, ResolvedStrategy, ShapleyEntry, ShapleyOptions, ShapleyReport, Strategy,
};
pub use wsms::{WsmsEntry, WsmsReport, WsmsWeight};
