//! The **evaluation domain** abstraction: one recursion, many answers.
//!
//! Lemma 3.2's `CntSat` recursion and lifted inference over
//! tuple-independent probabilistic databases have *exactly* the same
//! shape — ground products, independent-component products, and a
//! root-variable decomposition whose disjunction is evaluated through
//! the complement. "When is Shapley Value Computation a Matter of
//! Counting?" (arXiv 2312.14529) makes the correspondence precise: both
//! are evaluations of the same satisfying-subset structure in different
//! semirings-with-complement.
//!
//! [`EvalDomain`] captures the handful of operations the recursion
//! actually needs (identity, combination over disjoint fact sets,
//! per-atom ground contributions, complementation, exact division for
//! incremental factor swaps). Two instances are provided:
//!
//! * [`CountingDomain`] — the existing exact counting domain. Values
//!   are size-indexed coalition-count polynomials `[|Sat(D,q,k)|]_k`
//!   over [`BigUint`]; combination is convolution (dispatched through
//!   [`cqshap_numeric::poly`]'s Karatsuba/NTT subsystem), a set of `n`
//!   free facts contributes the binomial row `[C(n,k)]_k`, and
//!   complementation is `C(n,k) − v[k]`. Bit-identical to the
//!   previously hard-wired arithmetic.
//! * [`ProbabilityDomain`] — the tuple-independent probability domain.
//!   Values are exact [`BigRational`] probabilities; combination is
//!   multiplication, free facts contribute `1`, and complementation is
//!   `1 − p`. Evaluating the *same* compiled structure in this domain
//!   yields `Pr[q]` under per-fact probabilities — lifted inference
//!   served by the counting engine's compile (see
//!   [`crate::compiled::CompiledProbability`]).
//!
//! The generic recursion (`eval_rec`) is the single implementation
//! behind [`crate::satcount::count_sat_hierarchical`] and the compiled
//! engines; the hard-wired `BigUint` paths of earlier revisions are
//! gone.
// cqshap-lint: allow-file(no-panic-index) -- evaluation tables are indexed by positions assigned at compile

use std::collections::HashMap;
use std::sync::Arc;

use cqshap_db::{Database, FactId, FactMask, World};
use cqshap_numeric::{poly, BigRational, BigUint, BinomialCache, CancelToken};

use crate::anyquery::AnyQuery;
use crate::error::CoreError;
use crate::satcount::{
    complement_counts, connected_components, find_root_var, resolve_query, root_candidates,
    root_group_scopes, scope_endo_count, MaskedDb, PAtom, ResolvedQuery,
};

/// The value algebra of the `CntSat`/lifted-inference recursion.
///
/// A domain assigns a *value* to every (sub-)query-over-scoped-facts
/// instance and explains how values compose:
///
/// * [`one`](EvalDomain::one) / [`combine`](EvalDomain::combine) — the
///   value of an empty conjunction and the composition over *disjoint*
///   endogenous fact sets (counting: convolution; probability:
///   product — independence of tuple events).
/// * [`present`](EvalDomain::present) / [`absent`](EvalDomain::absent)
///   — the ground atom contributions: the value of "this fact must be
///   in the coalition/world" and "must not be".
/// * [`free`](EvalDomain::free) — the value of `n` unconstrained
///   endogenous facts (counting: `[C(n,k)]_k`; probability: `1`).
/// * [`complement`](EvalDomain::complement) — negation over `endo`
///   endogenous facts, turning unsatisfying values into satisfying
///   ones (counting: `C(endo,k) − v[k]`; probability: `1 − p`).
/// * [`try_divide`](EvalDomain::try_divide) — exact division, the
///   enabler of incremental maintenance: swapping one factor of a
///   cached product is division by the old factor and combination with
///   the new one. `None` signals the swap is impossible (zero factor)
///   and the caller must rebuild.
///
/// The remaining methods are performance hooks with sound defaults;
/// [`CountingDomain`] overrides them with the parallel product-tree /
/// Pascal-shift fast paths of the `poly` subsystem.
pub trait EvalDomain: Sync {
    /// The value type: coalition-count polynomials for counting, exact
    /// probabilities for the tuple-independent domain.
    type Value: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static;

    /// The multiplicative identity (empty conjunction over no facts).
    fn one(&self) -> Self::Value;

    /// The annihilating zero, shaped for `endo` endogenous facts
    /// (counting: `endo + 1` zero coefficients; probability: `0`).
    fn zero(&self, endo: usize) -> Self::Value;

    /// Is `v` the zero value (no satisfying coalition at any size)?
    fn is_zero(&self, v: &Self::Value) -> bool;

    /// Composition over disjoint endogenous fact sets.
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The value of `n` unconstrained ("free") endogenous facts.
    fn free(&self, n: usize) -> Self::Value;

    /// Negation over `endo` endogenous facts: the value of "not `v`".
    fn complement(&self, v: &Self::Value, endo: usize) -> Self::Value;

    /// Ground contribution of a positive atom matched by fact `f`
    /// (`endo` = is the fact endogenous under the current view).
    fn present(&self, f: FactId, endo: bool) -> Self::Value;

    /// Ground contribution of a negative atom matched by fact `f`.
    fn absent(&self, f: FactId, endo: bool) -> Self::Value;

    /// Exact division: `Some(q)` with `combine(q, den) == num`, or
    /// `None` when `den` cannot be divided out (it is zero, or the
    /// division is not exact).
    fn try_divide(&self, num: &Self::Value, den: &Self::Value) -> Option<Self::Value>;

    /// `⊛ factors` — the product of many values.
    fn product(&self, factors: &[&Self::Value], threads: usize) -> Self::Value {
        let _ = threads;
        let mut acc = self.one();
        for f in factors {
            acc = self.combine(&acc, f);
        }
        acc
    }

    /// For each `i`: `seed ⊛ ⊛_{j≠i} factors[j]` — the leave-one-out
    /// environments used by the per-fact recount paths.
    fn leave_one_out(
        &self,
        factors: &[&Self::Value],
        seed: &Self::Value,
        threads: usize,
    ) -> Vec<Self::Value> {
        let _ = threads;
        let n = factors.len();
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(seed.clone());
        for i in 0..n {
            let next = self.combine(&prefix[i], factors[i]);
            prefix.push(next);
        }
        let mut suffix = vec![self.one(); n + 1];
        for i in (0..n).rev() {
            suffix[i] = self.combine(&suffix[i + 1], factors[i]);
        }
        (0..n)
            .map(|i| self.combine(&prefix[i], &suffix[i + 1]))
            .collect()
    }

    /// [`EvalDomain::leave_one_out`] behind shared pointers: equal
    /// environments may share one allocation, so incremental factor
    /// swaps can patch each *distinct* value once.
    fn leave_one_out_shared(
        &self,
        factors: &[&Self::Value],
        seed: &Self::Value,
        threads: usize,
    ) -> Vec<Arc<Self::Value>> {
        self.leave_one_out(factors, seed, threads)
            .into_iter()
            .map(Arc::new)
            .collect()
    }

    /// `v` with one more free endogenous fact: `combine(v, free(1))`.
    fn push_free(&self, v: &Self::Value) -> Self::Value {
        self.combine(v, &self.free(1))
    }

    /// Inverse of [`EvalDomain::push_free`], when it exists.
    fn pop_free(&self, v: &Self::Value) -> Option<Self::Value> {
        self.try_divide(v, &self.free(1))
    }

    /// Do isomorphic fact groups (equal canonical forms: constants
    /// renamed, endogeneity preserved) have equal values? True for
    /// counting — the recursion cannot tell renamed constants apart —
    /// but **false** for probabilities, where each fact carries its own
    /// parameter. Gates the per-isomorphism-class compile and recount
    /// memoizations.
    fn canon_determines_value(&self) -> bool {
        false
    }

    /// The cooperative cancellation token the domain's evaluation
    /// polls, if the engine armed one (see [`crate::Budget`]). The
    /// recursion and the engines checkpoint through it; the provided
    /// domains also hand it to the polynomial kernels.
    fn cancel_token(&self) -> Option<&CancelToken> {
        None
    }

    /// Charges one work unit against the armed budget and converts a
    /// tripped token into [`CoreError::DeadlineExceeded`] for `phase` —
    /// an obs phase key, so the error and the trace name the phase
    /// identically. A no-op for budget-free domains.
    fn checkpoint(&self, phase: &'static str) -> Result<(), CoreError> {
        match self.cancel_token() {
            Some(token) if token.charge(1) => {
                cqshap_obs::event(cqshap_obs::phase::EV_DEADLINE_TRIP, phase);
                Err(CoreError::DeadlineExceeded {
                    phase: phase.to_string(),
                    elapsed: token.elapsed(),
                    partial: None,
                })
            }
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// Counting domain
// ---------------------------------------------------------------------

/// The exact counting domain: values are the size-indexed coalition
/// count vectors `[|Sat(D,q,k)|]_{k=0..endo}` of Lemma 3.2, over
/// [`BigUint`]. Owns a [`BinomialCache`] so the binomial rows consumed
/// by [`EvalDomain::free`] are shared across the engine's lifetime.
#[derive(Debug, Default)]
pub struct CountingDomain {
    binoms: BinomialCache,
    cancel: Option<CancelToken>,
}

impl CountingDomain {
    /// A counting domain with an empty binomial cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counting domain polling `cancel` from the recursion and the
    /// polynomial kernels.
    pub fn with_cancel(cancel: CancelToken) -> Self {
        CountingDomain {
            binoms: BinomialCache::default(),
            cancel: Some(cancel),
        }
    }
}

impl EvalDomain for CountingDomain {
    type Value = Vec<BigUint>;

    fn one(&self) -> Vec<BigUint> {
        vec![BigUint::one()]
    }

    fn zero(&self, endo: usize) -> Vec<BigUint> {
        vec![BigUint::zero(); endo + 1]
    }

    fn is_zero(&self, v: &Vec<BigUint>) -> bool {
        v.iter().all(|c| c.is_zero())
    }

    fn combine(&self, a: &Vec<BigUint>, b: &Vec<BigUint>) -> Vec<BigUint> {
        poly::mul(a, b)
    }

    fn free(&self, n: usize) -> Vec<BigUint> {
        self.binoms.row(n).as_ref().clone()
    }

    fn complement(&self, v: &Vec<BigUint>, endo: usize) -> Vec<BigUint> {
        // A cancelled polynomial kernel hands back placeholder counts
        // that may exceed C(n, k); `complement_counts` would underflow
        // on them. The flag is sticky and the engine checkpoints before
        // returning, so a shaped placeholder is all that is needed here.
        if self.cancel.as_ref().is_some_and(|t| t.should_stop()) {
            return vec![BigUint::zero(); endo + 1];
        }
        complement_counts(v, endo)
    }

    fn present(&self, _f: FactId, endo: bool) -> Vec<BigUint> {
        if endo {
            vec![BigUint::zero(), BigUint::one()]
        } else {
            vec![BigUint::one()]
        }
    }

    fn absent(&self, _f: FactId, endo: bool) -> Vec<BigUint> {
        if endo {
            vec![BigUint::one(), BigUint::zero()]
        } else {
            // A negative atom matched by an exogenous fact can never be
            // satisfied: the zero of the fold.
            vec![BigUint::zero()]
        }
    }

    fn try_divide(&self, num: &Vec<BigUint>, den: &Vec<BigUint>) -> Option<Vec<BigUint>> {
        poly::exact_div(num, den)
    }

    fn product(&self, factors: &[&Vec<BigUint>], threads: usize) -> Vec<BigUint> {
        let refs: Vec<&[BigUint]> = factors.iter().map(|f| f.as_slice()).collect();
        match &self.cancel {
            Some(token) => poly::product_tree_cancel(&refs, threads, token),
            None => poly::product_tree(&refs, threads),
        }
    }

    fn leave_one_out(
        &self,
        factors: &[&Vec<BigUint>],
        seed: &Vec<BigUint>,
        threads: usize,
    ) -> Vec<Vec<BigUint>> {
        let refs: Vec<&[BigUint]> = factors.iter().map(|f| f.as_slice()).collect();
        poly::leave_one_out_products(&refs, seed, threads)
    }

    fn leave_one_out_shared(
        &self,
        factors: &[&Vec<BigUint>],
        seed: &Vec<BigUint>,
        threads: usize,
    ) -> Vec<Arc<Vec<BigUint>>> {
        let refs: Vec<&[BigUint]> = factors.iter().map(|f| f.as_slice()).collect();
        match &self.cancel {
            Some(token) => poly::leave_one_out_products_shared_cancel(&refs, seed, threads, token),
            None => poly::leave_one_out_products_shared(&refs, seed, threads),
        }
    }

    fn push_free(&self, v: &Vec<BigUint>) -> Vec<BigUint> {
        poly::pascal_up(v)
    }

    fn pop_free(&self, v: &Vec<BigUint>) -> Option<Vec<BigUint>> {
        poly::pascal_down(v)
    }

    fn canon_determines_value(&self) -> bool {
        true
    }

    fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

// ---------------------------------------------------------------------
// Probability domain
// ---------------------------------------------------------------------

/// Per-fact probabilities of a tuple-independent probabilistic
/// database: a default for every endogenous fact plus sparse per-fact
/// overrides. Exogenous facts are certain (probability `1`) by
/// construction — the evaluation consults the endogeneity flag, not
/// this map, for them.
#[derive(Debug, Clone, PartialEq)]
pub struct FactProbabilities {
    default: BigRational,
    overrides: HashMap<FactId, BigRational>,
}

impl FactProbabilities {
    /// Every endogenous fact present with probability `default`.
    ///
    /// # Panics
    /// Panics when `default ∉ [0, 1]` — validate with
    /// [`FactProbabilities::is_valid`] first at API boundaries.
    pub fn uniform(default: BigRational) -> Self {
        assert!(
            Self::is_valid(&default),
            "probability {default} outside [0, 1]"
        );
        FactProbabilities {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Is `p` a probability (`0 ≤ p ≤ 1`)?
    pub fn is_valid(p: &BigRational) -> bool {
        !p.is_negative() && *p <= BigRational::one()
    }

    /// The probability of fact `f`.
    pub fn get(&self, f: FactId) -> &BigRational {
        self.overrides.get(&f).unwrap_or(&self.default)
    }

    /// Overrides the probability of fact `f`.
    ///
    /// # Panics
    /// Panics when `p ∉ [0, 1]`.
    pub fn set(&mut self, f: FactId, p: BigRational) {
        assert!(Self::is_valid(&p), "probability {p} outside [0, 1]");
        self.overrides.insert(f, p);
    }

    /// Drops `f`'s override, reverting it to the default.
    pub fn clear(&mut self, f: FactId) {
        self.overrides.remove(&f);
    }

    /// The default probability.
    pub fn default_probability(&self) -> &BigRational {
        &self.default
    }

    /// Replaces the default probability (overrides are kept).
    ///
    /// # Panics
    /// Panics when `p ∉ [0, 1]`.
    pub fn set_default(&mut self, p: BigRational) {
        assert!(Self::is_valid(&p), "probability {p} outside [0, 1]");
        self.default = p;
    }
}

///// The tuple-independent probability domain: values are exact
/// [`BigRational`] probabilities `Pr[q]`, evaluated at the per-fact
/// probabilities it owns. Evaluating the counting engine's compiled
/// structure in this domain *is* lifted inference — same recursion,
/// scalar arithmetic.
#[derive(Debug, Clone)]
pub struct ProbabilityDomain {
    probs: FactProbabilities,
    cancel: Option<CancelToken>,
}

impl PartialEq for ProbabilityDomain {
    /// Equality of the evaluation parameters only — the cancellation
    /// token is an execution-control handle, not part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.probs == other.probs
    }
}

impl ProbabilityDomain {
    /// A domain evaluating at `probs`.
    pub fn new(probs: FactProbabilities) -> Self {
        ProbabilityDomain {
            probs,
            cancel: None,
        }
    }

    /// A domain evaluating at `probs` that polls `cancel` from the
    /// recursion.
    pub fn with_cancel(probs: FactProbabilities, cancel: CancelToken) -> Self {
        ProbabilityDomain {
            probs,
            cancel: Some(cancel),
        }
    }

    /// The per-fact probabilities.
    pub fn probabilities(&self) -> &FactProbabilities {
        &self.probs
    }
}

impl EvalDomain for ProbabilityDomain {
    type Value = BigRational;

    fn one(&self) -> BigRational {
        BigRational::one()
    }

    fn zero(&self, _endo: usize) -> BigRational {
        BigRational::zero()
    }

    fn is_zero(&self, v: &BigRational) -> bool {
        v.is_zero()
    }

    fn combine(&self, a: &BigRational, b: &BigRational) -> BigRational {
        a * b
    }

    fn free(&self, _n: usize) -> BigRational {
        // Unconstrained facts marginalize out: Σ_worlds Π p = 1.
        BigRational::one()
    }

    fn complement(&self, v: &BigRational, _endo: usize) -> BigRational {
        BigRational::one() - v
    }

    fn present(&self, f: FactId, endo: bool) -> BigRational {
        if endo {
            self.probs.get(f).clone()
        } else {
            BigRational::one()
        }
    }

    fn absent(&self, f: FactId, endo: bool) -> BigRational {
        if endo {
            BigRational::one() - self.probs.get(f)
        } else {
            BigRational::zero()
        }
    }

    fn try_divide(&self, num: &BigRational, den: &BigRational) -> Option<BigRational> {
        if den.is_zero() {
            None
        } else {
            Some(num / den)
        }
    }

    fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

// ---------------------------------------------------------------------
// The generic recursion
// ---------------------------------------------------------------------

/// The `CntSat` / lifted-inference recursion (Lemma 3.2), generic over
/// the evaluation domain. Invariant: every fact in `scopes[i]` matches
/// `atoms[i]`'s pattern, is admitted by the view's mask, and relations
/// across atoms are distinct.
pub(crate) fn eval_rec<D: EvalDomain>(
    dom: &D,
    view: MaskedDb<'_>,
    atoms: &[PAtom],
    scopes: &[Vec<FactId>],
) -> Result<D::Value, CoreError> {
    debug_assert_eq!(atoms.len(), scopes.len());
    dom.checkpoint(cqshap_obs::phase::EVALUATE)?;
    let total_endo = scope_endo_count(view, scopes);

    // Case 1: fully ground — fold the per-atom contributions.
    if atoms.iter().all(|a| !a.has_vars()) {
        let mut acc = dom.one();
        for (atom, scope) in atoms.iter().zip(scopes) {
            debug_assert!(scope.len() <= 1, "ground pattern matches at most one fact");
            let factor = match (atom.negated, scope.first()) {
                // A positive atom with no matching fact is unsatisfiable.
                (false, None) => dom.zero(0),
                (false, Some(&f)) => dom.present(f, view.is_endo(f)),
                // A negative atom with no matching fact always holds.
                (true, None) => continue,
                (true, Some(&f)) => dom.absent(f, view.is_endo(f)),
            };
            acc = dom.combine(&acc, &factor);
        }
        return Ok(acc);
    }

    // Case 2: disconnected components compose over disjoint fact sets.
    let components = connected_components(atoms);
    if components.len() > 1 {
        let mut acc = dom.one();
        for comp in components {
            let sub_atoms: Vec<PAtom> = comp.iter().map(|&i| atoms[i].clone()).collect();
            let sub_scopes: Vec<Vec<FactId>> = comp.iter().map(|&i| scopes[i].clone()).collect();
            let sub = eval_rec(dom, view, &sub_atoms, &sub_scopes)?;
            acc = dom.combine(&acc, &sub);
        }
        return Ok(acc);
    }

    // Case 3: connected with variables → decompose over the root
    // variable; the *unsatisfying* values factor over root groups.
    let root = find_root_var(atoms).ok_or_else(|| {
        CoreError::Unsupported(
            "no root variable in a connected sub-query: the query is not hierarchical".into(),
        )
    })?;
    let candidates = root_candidates(view, root, atoms, scopes)?;

    let mut unsat = dom.one();
    let mut grouped_endo = 0usize;
    for &c in &candidates {
        let sub_atoms: Vec<PAtom> = atoms.iter().map(|a| a.substitute(root, c)).collect();
        let sub_scopes: Vec<Vec<FactId>> = root_group_scopes(view, root, c, atoms, scopes);
        let group_endo = scope_endo_count(view, &sub_scopes);
        grouped_endo += group_endo;
        let sat_c = eval_rec(dom, view, &sub_atoms, &sub_scopes)?;
        let unsat_c = dom.complement(&sat_c, group_endo);
        unsat = dom.combine(&unsat, &unsat_c);
    }
    let junk = total_endo - grouped_endo;
    unsat = dom.combine(&unsat, &dom.free(junk));
    Ok(dom.complement(&unsat, total_endo))
}

/// Evaluates a full query under a mask: resolution, the recursion over
/// the scoped atoms, and the free-fact factor. The generic analogue of
/// [`crate::satcount::count_sat_hierarchical_masked`] (which is now a
/// wrapper instantiating this at [`CountingDomain`]).
pub(crate) fn eval_query_masked<D: EvalDomain>(
    dom: &D,
    db: &Database,
    q: &cqshap_query::ConjunctiveQuery,
    mask: FactMask,
) -> Result<D::Value, CoreError> {
    // Reject dangling ids up front, matching the error behavior of the
    // materializing oracles.
    if let Some(f) = mask.target() {
        if f.index() >= db.fact_count() {
            return Err(CoreError::Db(cqshap_db::DbError::UnknownFact { id: f.0 }));
        }
    }
    let view = MaskedDb::new(db, mask);
    let m = mask.endo_count(db);
    let (atoms, mut scopes) = match resolve_query(db, q)? {
        ResolvedQuery::Unsatisfiable => return Ok(dom.zero(m)),
        ResolvedQuery::Atoms { atoms, scopes, .. } => (atoms, scopes),
    };
    if atoms.is_empty() {
        // Every atom was a dropped (vacuous) negation: q is a tautology.
        return Ok(dom.free(m));
    }
    if let FactMask::Removed(f) = mask {
        for scope in &mut scopes {
            scope.retain(|&fid| fid != f);
        }
    }
    let scoped_endo = scope_endo_count(view, &scopes);
    let free_endo = m
        .checked_sub(scoped_endo)
        // cqshap-lint: allow(no-panic) -- sjf scopes partition the endogenous facts, so the insert cannot collide
        .expect("scoped endogenous facts are disjoint across sjf atoms");
    let core = eval_rec(dom, view, &atoms, &scopes)?;
    Ok(dom.combine(&core, &dom.free(free_endo)))
}

// ---------------------------------------------------------------------
// Brute-force probability (test oracle / fallback)
// ---------------------------------------------------------------------

/// `Pr[q]` by explicit enumeration of all `2^|Dn|` worlds, in exact
/// rational arithmetic. `forced` pins one endogenous fact's bit, so
/// conditional probabilities `Pr[q | f present/absent]` enumerate half
/// the worlds. The ground-truth oracle for the lifted path and the
/// fallback for queries outside the compiled fragment.
///
/// # Errors
///// [`CoreError::TooManyEndogenousFacts`] beyond `limit` world bits.
pub fn probability_by_enumeration(
    db: &Database,
    q: AnyQuery<'_>,
    probs: &FactProbabilities,
    forced: Option<(FactId, bool)>,
    limit: usize,
) -> Result<BigRational, CoreError> {
    probability_by_enumeration_cancel(db, q, probs, forced, limit, None)
}

/// [`probability_by_enumeration`] polling a [`CancelToken`] every few
/// thousand worlds; a tripped budget returns
/// [`CoreError::DeadlineExceeded`] with phase `probability`.
pub fn probability_by_enumeration_cancel(
    db: &Database,
    q: AnyQuery<'_>,
    probs: &FactProbabilities,
    forced: Option<(FactId, bool)>,
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<BigRational, CoreError> {
    let m = db.endo_count();
    let forced = match forced {
        None => None,
        Some((f, value)) => {
            let pos = db
                .endo_index(f)
                .ok_or_else(|| CoreError::FactNotEndogenous {
                    fact: db.render_fact(f),
                })?;
            Some((pos, value))
        }
    };
    let bits = m - usize::from(forced.is_some());
    if bits > limit {
        return Err(CoreError::TooManyEndogenousFacts { count: bits, limit });
    }
    let compiled = q.compile(db);
    // Per-position presence/absence weights (exogenous facts are
    // certain and never appear among the world bits).
    let endo = db.endo_facts();
    let p_in: Vec<BigRational> = endo.iter().map(|&f| probs.get(f).clone()).collect();
    let p_out: Vec<BigRational> = p_in.iter().map(|p| BigRational::one() - p).collect();
    let expand = |e: u64| -> u64 {
        match forced {
            None => e,
            Some((pos, value)) => {
                let low = e & ((1u64 << pos) - 1);
                let high = (e >> pos) << (pos + 1);
                low | high | (u64::from(value) << pos)
            }
        }
    };
    let mut total = BigRational::zero();
    let mut world = World::empty(db);
    for e in 0..(1u64 << bits) {
        if e & 0xFFF == 0 {
            if let Some(token) = cancel {
                if token.charge(1) {
                    return Err(CoreError::DeadlineExceeded {
                        phase: "probability".to_string(),
                        elapsed: token.elapsed(),
                        partial: None,
                    });
                }
            }
        }
        let w = expand(e);
        world.assign_mask(w);
        if !compiled.satisfied(db, &world) {
            continue;
        }
        let mut weight = BigRational::one();
        for (i, (pi, po)) in p_in.iter().zip(&p_out).enumerate() {
            if let Some((pos, _)) = forced {
                if i == pos {
                    continue; // conditioned on, not weighted
                }
            }
            weight = weight * if w >> i & 1 == 1 { pi } else { po };
            if weight.is_zero() {
                break;
            }
        }
        total += &weight;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    /// The probability-cycle fixture mirrors `cqshap-probdb`'s tests.
    fn cycled_probs(db: &Database) -> FactProbabilities {
        let cycle = [
            rat(1, 10),
            rat(3, 10),
            rat(1, 2),
            rat(7, 10),
            rat(9, 10),
            rat(1, 4),
            rat(3, 4),
            rat(3, 5),
        ];
        let mut probs = FactProbabilities::uniform(rat(1, 2));
        for (i, &f) in db.endo_facts().iter().enumerate() {
            probs.set(f, cycle[i % cycle.len()].clone());
        }
        probs
    }

    #[test]
    fn counting_instance_matches_hardwired_counter() {
        let db = university();
        let dom = CountingDomain::new();
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
        ] {
            let q = parse_cq(text).unwrap();
            let generic = eval_query_masked(&dom, &db, &q, FactMask::None).unwrap();
            let wired = crate::satcount::count_sat_hierarchical(&db, &q).unwrap();
            assert_eq!(generic, wired, "{text}");
        }
    }

    #[test]
    fn probability_instance_matches_enumeration() {
        let db = university();
        let probs = cycled_probs(&db);
        let dom = ProbabilityDomain::new(probs.clone());
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- TA('Adam'), !Reg('Ben', 'OS')",
            "q() :- TA(x), Course(y, 'CS')",
            "q() :- !TA('Nobody')",
            "q() :- Ghost(x)",
            "q() :- !Stud('Adam')",
        ] {
            let q = parse_cq(text).unwrap();
            let lifted = eval_query_masked(&dom, &db, &q, FactMask::None).unwrap();
            let brute =
                probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, None, 26).unwrap();
            assert_eq!(lifted, brute, "{text}");
        }
    }

    #[test]
    fn masked_probabilities_are_conditionals() {
        let db = university();
        let probs = cycled_probs(&db);
        let dom = ProbabilityDomain::new(probs.clone());
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        for &f in db.endo_facts() {
            let plus = eval_query_masked(&dom, &db, &q, FactMask::Exogenous(f)).unwrap();
            let minus = eval_query_masked(&dom, &db, &q, FactMask::Removed(f)).unwrap();
            let want_plus =
                probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, Some((f, true)), 26)
                    .unwrap();
            let want_minus =
                probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, Some((f, false)), 26)
                    .unwrap();
            assert_eq!(plus, want_plus, "{} present", db.render_fact(f));
            assert_eq!(minus, want_minus, "{} absent", db.render_fact(f));
        }
    }

    #[test]
    fn tautology_and_unsatisfiable_probabilities() {
        let db = university();
        let dom = ProbabilityDomain::new(FactProbabilities::uniform(rat(1, 3)));
        let taut = parse_cq("q() :- !Ghost('x')").unwrap();
        assert_eq!(
            eval_query_masked(&dom, &db, &taut, FactMask::None).unwrap(),
            BigRational::one()
        );
        let unsat = parse_cq("q() :- Ghost(x)").unwrap();
        assert_eq!(
            eval_query_masked(&dom, &db, &unsat, FactMask::None).unwrap(),
            BigRational::zero()
        );
    }

    #[test]
    fn probabilities_validate_range() {
        assert!(FactProbabilities::is_valid(&rat(1, 2)));
        assert!(FactProbabilities::is_valid(&BigRational::zero()));
        assert!(FactProbabilities::is_valid(&BigRational::one()));
        assert!(!FactProbabilities::is_valid(&rat(3, 2)));
        assert!(!FactProbabilities::is_valid(&rat(-1, 2)));
    }

    #[test]
    fn enumeration_respects_limit() {
        let db = university();
        let probs = FactProbabilities::uniform(rat(1, 2));
        let q = parse_cq("q() :- Reg(x, y)").unwrap();
        assert!(matches!(
            probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, None, 4),
            Err(CoreError::TooManyEndogenousFacts { .. })
        ));
    }

    #[test]
    fn domain_division_supports_factor_swaps() {
        let cdom = CountingDomain::new();
        let a = vec![BigUint::one(), BigUint::from_u64(2)];
        let b = vec![BigUint::one(), BigUint::one(), BigUint::zero()];
        let prod = cdom.combine(&a, &b);
        assert_eq!(cdom.try_divide(&prod, &a), Some(b.clone()));
        assert!(cdom.try_divide(&prod, &cdom.zero(1)).is_none());
        let pdom = ProbabilityDomain::new(FactProbabilities::uniform(rat(1, 2)));
        let x = rat(3, 7);
        let y = rat(2, 5);
        let prod = pdom.combine(&x, &y);
        assert_eq!(pdom.try_divide(&prod, &x), Some(y));
        assert!(pdom.try_divide(&prod, &BigRational::zero()).is_none());
    }

    #[test]
    fn push_pop_free_round_trips() {
        let cdom = CountingDomain::new();
        let v = vec![BigUint::from_u64(3), BigUint::from_u64(5)];
        let up = cdom.push_free(&v);
        assert_eq!(up, cdom.combine(&v, &cdom.free(1)));
        assert_eq!(cdom.pop_free(&up), Some(v));
        let pdom = ProbabilityDomain::new(FactProbabilities::uniform(rat(1, 2)));
        let p = rat(2, 3);
        assert_eq!(pdom.push_free(&p), p);
        assert_eq!(pdom.pop_free(&p), Some(p.clone()));
    }
}
